"""Autoscaling-policy interface shared by Faro and all baseline policies.

The simulator (or a real control plane) periodically builds a
:class:`JobObservation` per job from collected metrics and calls
:meth:`AutoscalePolicy.tick`.  A policy may return a
:class:`ScalingDecision` (new replica targets and, optionally, explicit
request-drop rates) or ``None`` to leave the cluster unchanged.

This mirrors the paper's integration (§5): the Faro autoscaler pod
periodically pulls metrics from each job's Ray Router and pushes replica
targets / drop directives back.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

__all__ = [
    "JobObservation",
    "ScalingDecision",
    "AutoscalePolicy",
    "TriggerTracker",
]


@dataclass(frozen=True)
class JobObservation:
    """Metrics for one job over the most recent control window.

    ``rate_history`` is the per-interval arrival-rate history (requests per
    second, most recent last) at the collector's sampling interval; it feeds
    time-series predictors.  ``latency`` is the measured latency at the job's
    SLO percentile; dropped requests count as infinite latency.
    """

    job_name: str
    arrival_rate: float
    rate_history: tuple[float, ...]
    mean_proc_time: float
    latency: float
    slo_violation_rate: float
    current_replicas: int
    target_replicas: int
    queue_length: int = 0
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.current_replicas < 0 or self.target_replicas < 0:
            raise ValueError("replica counts must be non-negative")
        # `latency >= 0` admits +inf (dropped requests) but rejects NaN,
        # which fails every comparison.
        if not self.latency >= 0:
            raise ValueError(
                f"latency must be non-negative (inf allowed), got {self.latency}"
            )
        if not 0.0 <= self.slo_violation_rate <= 1.0:
            raise ValueError(
                f"slo_violation_rate must be in [0, 1], got {self.slo_violation_rate}"
            )
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {self.drop_rate}")
        if self.queue_length < 0:
            raise ValueError(f"queue length must be >= 0, got {self.queue_length}")


@dataclass
class ScalingDecision:
    """Replica targets and drop rates to apply; jobs absent are unchanged.

    ``device_replicas`` is an optional per-job breakdown of the replica
    target across device classes (``job -> class name -> count``).  On
    heterogeneous runs the simulator honors a breakdown whose counts sum to
    the admitted target and fit the fleet inventory; homogeneous runs ignore
    it entirely.  Policies that do not place per class leave it empty.
    """

    replicas: dict[str, int] = field(default_factory=dict)
    drop_rates: dict[str, float] = field(default_factory=dict)
    device_replicas: dict[str, dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, count in self.replicas.items():
            if count < 0:
                raise ValueError(f"replica target for {name} must be >= 0, got {count}")
        for name, rate in self.drop_rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"drop rate for {name} must be in [0, 1], got {rate}")
        for name, pools in self.device_replicas.items():
            for cls, count in pools.items():
                if count < 0:
                    raise ValueError(
                        f"device replica count for {name}/{cls} must be >= 0, "
                        f"got {count}"
                    )

    def merge(self, other: "ScalingDecision") -> "ScalingDecision":
        """Overlay ``other`` on top of this decision (other wins on conflict)."""
        merged = ScalingDecision(
            dict(self.replicas),
            dict(self.drop_rates),
            {name: dict(pools) for name, pools in self.device_replicas.items()},
        )
        merged.replicas.update(other.replicas)
        merged.drop_rates.update(other.drop_rates)
        for name, pools in other.device_replicas.items():
            merged.device_replicas[name] = dict(pools)
        return merged


class AutoscalePolicy(ABC):
    """Base class for autoscaling policies.

    ``tick_interval`` is how often the control loop invokes the policy; the
    policy is free to act only on a subset of ticks (e.g. Faro's long-term
    cycle runs every 300 s while its reactive path runs every 10 s).
    """

    #: Seconds between control-loop invocations.
    tick_interval: float = 10.0

    #: Human-readable policy name used in experiment reports.
    name: str = "policy"

    @abstractmethod
    def tick(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        """Return scaling actions for the current control tick, if any."""

    def reset(self) -> None:
        """Clear internal state between experiment trials."""


class TriggerTracker:
    """Tracks how long a per-job condition has held continuously.

    Oneshot/AIAD (and Faro's short-term reactive path) only act when a job
    has been overloaded/underloaded for a sustained period -- 30 s for
    scale-up and 5 min for scale-down in the paper's configuration.
    """

    def __init__(self, hold_seconds: float) -> None:
        if hold_seconds < 0:
            raise ValueError(f"hold_seconds must be >= 0, got {hold_seconds}")
        self.hold_seconds = hold_seconds
        self._since: dict[str, float] = {}

    def update(self, job: str, condition: bool, now: float) -> bool:
        """Record the condition at time ``now``; return True when it fires.

        The trigger fires when the condition has held for at least
        ``hold_seconds`` (a zero hold fires immediately on a true condition).
        """
        if not condition:
            self._since.pop(job, None)
            return False
        started = self._since.setdefault(job, now)
        return now - started >= self.hold_seconds

    def clear(self, job: str | None = None) -> None:
        """Reset the streak for one job, or all jobs when ``job`` is None."""
        if job is None:
            self._since.clear()
        else:
            self._since.pop(job, None)
