"""Integration tests tying the §7 extension subsystems to the core loop.

Each test exercises a realistic composition rather than one module:
decentralized control inside the request-level simulator, admission
control feeding a simulated deployment that must then actually meet its
SLOs, and node placement tracking an autoscaled run's replica timeline.
"""

import numpy as np
import pytest

from repro.admission import AdmissionController, AdmissionRequest
from repro.cluster import RESNET34, InferenceJobSpec, ResourceQuota
from repro.cluster.placement import Node, PlacementEngine
from repro.core.autoscaler import FaroConfig, JobSpec
from repro.core.decentralized import DecentralizedFaro
from repro.core.utility import SLO
from repro.sim import Simulation, SimulationConfig
from repro.traces import standard_job_mix

SLO_720 = SLO(target=0.72, percentile=99.0)


def small_mix(num_jobs, minutes, rate_hi=500.0, seed=0):
    mix = standard_job_mix(num_jobs=num_jobs, days=2, rate_hi=rate_hi, seed=seed)
    jobs = [InferenceJobSpec.with_default_slo(t.name, RESNET34) for t in mix]
    traces = {t.name: t.eval[:minutes] for t in mix}
    return jobs, traces


class TestDecentralizedInRequestSimulator:
    def test_end_to_end(self):
        minutes, total = 15, 12
        jobs, traces = small_mix(4, minutes)
        policy = DecentralizedFaro(
            [JobSpec(name=j.name, slo=j.slo, proc_time=j.model.proc_time) for j in jobs],
            total_replicas=total,
            num_groups=2,
            config=FaroConfig(objective="sum", solver="greedy", num_samples=4, seed=0),
        )
        simulation = Simulation(
            jobs, traces, policy, ResourceQuota.of_replicas(total),
            config=SimulationConfig(duration_minutes=minutes, seed=0),
        )
        result = simulation.run()
        assert result.minutes == minutes
        assert sum(policy.shares) == total
        # The quota is shared: per-minute replica totals never exceed it.
        totals = np.sum([series.replicas for series in result.jobs.values()], axis=0)
        assert int(totals.max()) <= total


class TestAdmissionThenDeployment:
    def test_admitted_set_meets_slos_in_simulation(self):
        # Admit jobs by the guarantee-style capacity policy, then actually
        # run the admitted set: violations must stay low.
        # Per-job requirements over this window are 3+2+2+3+2+2 replicas in
        # admission order; capacity 10 admits the first four and rejects two.
        minutes, capacity = 20, 10
        jobs, traces = small_mix(6, minutes, rate_hi=600.0, seed=2)
        controller = AdmissionController(capacity_replicas=capacity)
        admitted = []
        for job in jobs:
            peak_rate = float(np.max(traces[job.name])) / 60.0
            decision = controller.admit(
                AdmissionRequest(
                    name=job.name,
                    slo=job.slo,
                    proc_time=job.model.proc_time,
                    planning_rate=peak_rate,
                )
            )
            if decision.admitted:
                admitted.append(job)
        assert 1 <= len(admitted) < len(jobs)  # the capacity gate must bite
        # Deploy the admitted set at the planner's requirement per job.
        initial = {
            job.name: controller._required(controller.jobs[job.name])
            for job in admitted
        }
        from repro.baselines.fairshare import FairSharePolicy

        class FrozenPolicy(FairSharePolicy):
            """Hold the admission-planned allocation for the whole run."""

            def __init__(self, targets):
                super().__init__(total_replicas=sum(targets.values()))
                self._targets = dict(targets)

            def tick(self, now, observations):
                from repro.policy import ScalingDecision

                return ScalingDecision(replicas=dict(self._targets))

        simulation = Simulation(
            admitted,
            {job.name: traces[job.name] for job in admitted},
            FrozenPolicy(initial),
            ResourceQuota.of_replicas(capacity),
            config=SimulationConfig(duration_minutes=minutes, seed=0,
                                    cold_start_range=(0.0, 0.0)),
            initial_replicas=initial,
        )
        result = simulation.run()
        assert result.cluster_slo_violation_rate < 0.05

    def test_rejected_job_would_have_overloaded(self):
        controller = AdmissionController(capacity_replicas=8)
        controller.admit(AdmissionRequest("a", SLO_720, 0.18, planning_rate=25.0))
        decision = controller.evaluate(
            AdmissionRequest("b", SLO_720, 0.18, planning_rate=25.0)
        )
        assert not decision.admitted
        assert decision.cluster_required > 8


class TestPlacementTracksAutoscaledRun:
    def test_replica_timeline_always_placeable(self):
        # Drive the placement engine with a real autoscaled run's replica
        # timeline: on a right-sized node pool every target must place.
        minutes, total = 15, 12
        jobs, traces = small_mix(3, minutes)
        from repro.baselines.aiad import AIADPolicy

        simulation = Simulation(
            jobs, traces,
            AIADPolicy(slos={j.name: j.slo.target for j in jobs}),
            ResourceQuota.of_replicas(total),
            config=SimulationConfig(duration_minutes=minutes, seed=0),
        )
        result = simulation.run()
        engine = PlacementEngine(
            [Node("vm-0", cpus=total / 2, mem=total), Node("vm-1", cpus=total / 2, mem=total)]
        )
        for minute in range(minutes):
            for name, series in result.jobs.items():
                target = int(series.replicas[minute])
                placed, _ = engine.scale_job(name, target)
                assert len(engine.pods_of(name)) == target
        used = sum(node.cpus_used for node in engine.nodes.values())
        final_targets = sum(int(s.replicas[-1]) for s in result.jobs.values())
        assert used == pytest.approx(final_targets)
