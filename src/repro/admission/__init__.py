"""Admission control for job arrivals (paper §7).

The paper leaves open "whether admission control decisions can be designed
to guarantee SLO satisfaction, perhaps with some workload assumptions".
This subpackage supplies that layer under the workload assumptions the rest
of Faro already makes (Poisson arrivals, stable per-model processing time):

- :class:`~repro.admission.controller.AdmissionController` tracks the
  registered job set with per-job planning rates (predicted peaks) and
  evaluates whether a newly arriving job fits, by either a fast M/D/c
  capacity check or a full utility-impact re-solve of Faro's cluster
  allocation problem.
"""

from repro.admission.controller import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRequest,
)

__all__ = ["AdmissionRequest", "AdmissionDecision", "AdmissionController"]
