"""repro.serve -- continuous online serving atop the simulation engine.

Batch experiments (`repro.api.run`) consume a whole trace and return one
report.  This package runs the *same* control loop continuously: a
:class:`~repro.serve.cursor.TraceCursor` reveals arrival-trace minutes
incrementally (replayed, chunked, or tailed from a live CSV), a
:class:`~repro.serve.loop.ServeLoop` ticks the policy against them with a
solve deadline and graceful degradation, and sealed
:class:`~repro.serve.windows.WindowReport` blocks stream to subscribers
while a running merge reassembles the batch report.

The load-bearing property: serving a finite replayed trace -- any window
size, any checkpoint/resume schedule -- merges to a report **byte-identical**
to batch ``api.run`` on the same spec (pinned by
``tests/test_serve_loop.py``).

Wall-clock access lives only in :mod:`repro.serve.clock`; the determinism
lint enforces that boundary for the rest of the package.
"""

from repro.serve.clock import Clock, FakeClock, VirtualClock, WallClock
from repro.serve.cursor import (
    ChunkedReplayCursor,
    ReplayCursor,
    TailingFileCursor,
    TraceCursor,
    cursor_from_source,
)
from repro.serve.loop import (
    ServeAborted,
    ServeJournal,
    ServeLoop,
    ServeResult,
    TrialOutcome,
    serve,
)
from repro.serve.sinks import CallbackSink, JsonlSink, TableSink, WindowSink
from repro.serve.spec import ServeOptions, ServeSpec, serve_digest
from repro.serve.windows import (
    WindowAccumulator,
    WindowReport,
    WindowStats,
    window_index,
)

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "FakeClock",
    "TraceCursor",
    "ReplayCursor",
    "ChunkedReplayCursor",
    "TailingFileCursor",
    "cursor_from_source",
    "ServeAborted",
    "ServeJournal",
    "ServeLoop",
    "ServeResult",
    "TrialOutcome",
    "serve",
    "WindowSink",
    "CallbackSink",
    "JsonlSink",
    "TableSink",
    "ServeOptions",
    "ServeSpec",
    "serve_digest",
    "WindowStats",
    "WindowReport",
    "WindowAccumulator",
    "window_index",
]
