"""A small reverse-mode autodiff tensor.

Supports broadcasting binary ops, matrix multiplication, element-wise
nonlinearities, reductions, reshaping/slicing and concatenation -- enough to
express MLPs, N-HiTS blocks and LSTM cells.  Gradients accumulate in
``Tensor.grad`` after calling :meth:`Tensor.backward` on a scalar output.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "concat", "stack"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reversing numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the computation graph wrapping a float64 numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = requires_grad
        self.grad: np.ndarray | None = None
        self._parents = parents
        self._backward = backward

    # ------------------------------------------------------------- basics

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, parents=parents, backward=backward if requires else None)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=float), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ---------------------------------------------------------- arithmetic

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # -------------------------------------------------------- element-wise

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def softplus(self) -> "Tensor":
        # Numerically stable log(1 + exp(x)).
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    # ---------------------------------------------------------- reductions

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=float)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -------------------------------------------------------------- shape

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).T)

        return self._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def avg_pool1d(self, kernel: int) -> "Tensor":
        """Non-overlapping 1-D average pooling along the last axis.

        The input length must be divisible by ``kernel`` (pad upstream if
        needed).  Used for N-HiTS multi-rate input sampling.
        """
        if kernel < 1:
            raise ValueError(f"kernel must be >= 1, got {kernel}")
        length = self.data.shape[-1]
        if length % kernel != 0:
            raise ValueError(f"length {length} not divisible by kernel {kernel}")
        new_shape = self.data.shape[:-1] + (length // kernel, kernel)
        return self.reshape(*new_shape).mean(axis=-1)

    def clip_min(self, minimum: float) -> "Tensor":
        """Differentiable lower clamp (gradient passes where data > minimum)."""
        mask = self.data > minimum

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(np.maximum(self.data, minimum), (self,), backward)

    # ------------------------------------------------------------ backward

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (must be scalar unless ``grad`` given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack_: list[tuple[Tensor, bool]] = [(self, False)]
        while stack_:
            node, processed = stack_.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack_.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack_.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=float))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(int(start), int(stop))
            tensor._accumulate(grad[tuple(index)])

    requires = any(t.requires_grad for t in tensors)
    return Tensor(
        out_data,
        requires_grad=requires,
        parents=tuple(tensors),
        backward=backward if requires else None,
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad, i, axis=axis))

    requires = any(t.requires_grad for t in tensors)
    return Tensor(
        out_data,
        requires_grad=requires,
        parents=tuple(tensors),
        backward=backward if requires else None,
    )
