"""Allocation hot path: solve time vs job count, cold vs warm table cache.

The planner's own latency is what keeps the control loop viable at scale
(paper §3.4 solves "in well under a second"; Fig. 7 hierarchical speedups).
This micro-benchmark pins the perf trajectory of the optimizer hot path:

- **cold**: every solve rebuilds utility tables (``UtilityTableCache``
  disabled) -- the pre-cache behaviour of one autoscaler cycle.
- **warm**: tables come from a primed shared cache, as in steady-state
  repeated cycles.  Cache hits are bit-for-bit identical to rebuilds, so
  solver results must not change.
- **warm+x0** (COBYLA row): additionally warm-starts from the previous
  allocation, the steady-state autoscaler configuration.

Results are appended to ``results/optimizer_hotpath.txt`` and emitted as
machine-readable ``results/BENCH_optimizer.json`` so future PRs can regress
against them.
"""

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.core.hierarchical import solve_hierarchical
from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    UtilityTableCache,
    solve_allocation,
)
from repro.core.utility import SLO
from repro.experiments.report import format_table


def make_jobs(n, scenarios=140, seed=0):
    """Autoscaler-shaped jobs: ~(samples x horizon) predicted-rate scenarios."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        base = rng.uniform(5.0, 40.0)
        rates = tuple(np.maximum(rng.normal(base, base * 0.2, size=scenarios), 0.0))
        jobs.append(
            OptimizationJob(name=f"j{i}", proc_time=0.18, slo=SLO(0.72), rates=rates)
        )
    return jobs


def _timed(fn, reps):
    started = time.perf_counter()
    result = None
    for _ in range(reps):
        result = fn()
    return (time.perf_counter() - started) / reps, result


def bench_flat(n, scenarios, method, maxiter, reps=3):
    jobs = make_jobs(n, scenarios=scenarios)
    capacity = ClusterCapacity.of_replicas(3 * n)
    objective = make_objective("fairsum")

    def solve(cache, x0=None):
        problem = AllocationProblem(jobs, capacity, objective, table_cache=cache)
        return solve_allocation(problem, method=method, x0=x0, maxiter=maxiter)

    cold_s, cold = _timed(lambda: solve(UtilityTableCache(maxsize=0)), reps)
    shared = UtilityTableCache()
    solve(shared)  # prime
    warm_s, warm = _timed(lambda: solve(shared), reps)
    ws_s, ws = _timed(lambda: solve(shared, x0=warm), reps)
    assert np.array_equal(cold.replicas, warm.replicas)
    assert abs(cold.objective_value - warm.objective_value) <= 1e-9
    return {
        "solver": method,
        "jobs": n,
        "scenarios": scenarios,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "warmstart_ms": ws_s * 1e3,
        "speedup": cold_s / warm_s,
        "cold_nfev": cold.nfev,
        "warmstart_nfev": ws.nfev,
    }


def bench_hierarchical(n, scenarios, maxiter=100, reps=2, seed=7):
    jobs = make_jobs(n, scenarios=scenarios)
    capacity = ClusterCapacity.of_replicas(int(3.2 * n))
    objective = make_objective("fairsum")

    def solve(cache):
        return solve_hierarchical(
            jobs, capacity, objective, groups=10, maxiter=maxiter, seed=seed,
            table_cache=cache,
        )

    cold_s, cold = _timed(lambda: solve(UtilityTableCache(maxsize=0)), reps)
    shared = UtilityTableCache()
    solve(shared)  # prime
    warm_s, warm = _timed(lambda: solve(shared), reps)
    assert np.array_equal(cold.allocation.replicas, warm.allocation.replicas)
    assert abs(cold.allocation.objective_value - warm.allocation.objective_value) <= 1e-9
    return {
        "solver": "hier-cobyla-G10",
        "jobs": n,
        "scenarios": scenarios,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "speedup": cold_s / warm_s,
    }


def run_hotpath():
    points = [
        bench_flat(10, 140, "cobyla", maxiter=1000),
        bench_flat(50, 140, "cobyla", maxiter=100),
        bench_flat(20, 560, "greedy", maxiter=0),
        bench_flat(50, 280, "greedy", maxiter=0),
        bench_hierarchical(100, 140),
        bench_hierarchical(200, 140),
    ]
    return points


def test_optimizer_hotpath(benchmark):
    points = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)

    rows = []
    for p in points:
        extra = (
            f" warm+x0={p['warmstart_ms']:.0f}ms nfev {p['cold_nfev']}->{p['warmstart_nfev']}"
            if "warmstart_ms" in p
            else ""
        )
        rows.append(
            (
                f"{p['solver']}/{p['jobs']} jobs",
                "cache hit == rebuild, bit-for-bit",
                f"cold={p['cold_ms']:.0f}ms warm={p['warm_ms']:.0f}ms "
                f"({p['speedup']:.1f}x){extra}",
            )
        )
    text = format_table(
        ["solver/scale", "invariant", "measured"],
        rows,
        title="== Optimizer hot path: cold vs warm utility-table cache ==",
    )
    write_result("optimizer_hotpath", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_optimizer.json").write_text(
        json.dumps({"points": points}, indent=2) + "\n"
    )

    # Where table construction is the dominant cycle cost (batched-eval
    # greedy; hierarchical solves at >= 100 jobs), the warm cache must be
    # at least 5x faster -- with solver results unchanged (asserted
    # bit-for-bit inside the bench helpers above).
    greedy = [p for p in points if p["solver"] == "greedy"]
    hier = [p for p in points if p["solver"].startswith("hier")]
    assert max(p["speedup"] for p in greedy) >= 5.0
    assert max(p["speedup"] for p in hier) >= 5.0
    # Warm starts never cost extra COBYLA iterations.
    for p in points:
        if "warmstart_nfev" in p and p["solver"] == "cobyla":
            assert p["warmstart_nfev"] <= p["cold_nfev"]
