"""Hybrid-fidelity simulation backend: request-level where it matters.

The request-level simulator is the accuracy reference; the analytic flow
simulator is two to three orders of magnitude faster.  The ``hybrid``
backend splits the difference *per job*: jobs flagged in
:class:`HybridBackendOptions` (explicitly by name, or automatically as the
``auto_request_jobs`` busiest by offered load) run through the full
request-level machinery -- Poisson arrivals, virtual-time routers, metrics
bins -- while every other job advances analytically.  All jobs still share
one resource quota, one autoscaling policy, and one control loop
(:class:`~repro.sim.harness.SimHarness`), so the policy sees a single
cluster and its allocation trade-offs span both fidelity classes.

This is the configuration the paper's large-scale studies want: keep
per-request fidelity on the handful of jobs under inspection (tail
latencies, drop behaviour) without paying request-level cost for the other
ninety.  Replica lifecycle transitions on the analytic side -- cold
starts, drains, fault recovery -- run on the event-driven
:class:`~repro.sim.lifecycle.ReplicaLifecycle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.rayserve import RayServeCluster
from repro.policy import JobObservation, ScalingDecision
from repro.sim.analytic import (
    _FlowJob,
    accumulate_flow_tick,
    collect_flow_series,
    flow_observation,
    new_flow_buckets,
)
from repro.sim.faults import make_fault_injector
from repro.sim.harness import SimHarness, admit_decision
from repro.sim.recorder import SimulationResult
from repro.sim.simulation import collect_request_series, replicas_per_minute
from repro.sim.workload import PoissonArrivals

__all__ = ["HybridBackendOptions", "HybridSimulation"]


@dataclass(frozen=True)
class HybridBackendOptions:
    """Typed options of the ``hybrid`` backend.

    ``request_jobs`` names the jobs to simulate at request level (unknown
    names fail loudly at construction).  ``auto_request_jobs`` additionally
    flags the N busiest remaining jobs by mean offered trace rate (ties
    broken by job order, so the selection is deterministic).  Jobs not
    flagged either way advance analytically.
    """

    request_jobs: tuple[str, ...] = field(default_factory=tuple)
    auto_request_jobs: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "request_jobs", tuple(self.request_jobs))
        if self.auto_request_jobs < 0:
            raise ValueError(
                f"auto_request_jobs must be >= 0, got {self.auto_request_jobs}"
            )


class HybridSimulation(SimHarness):
    """Request-level fidelity for flagged jobs, analytic for the rest."""

    fidelity_label = "hybrid"
    options_type = HybridBackendOptions

    # ------------------------------------------------------------- hooks

    def _select_request_jobs(self) -> set[str]:
        names = [job.name for job in self.jobs]
        flagged = set(self.options.request_jobs)
        unknown = flagged - set(names)
        if unknown:
            raise ValueError(
                f"hybrid request_jobs name unknown job(s) {sorted(unknown)}; "
                f"jobs in this run: {names}"
            )
        extra = self.options.auto_request_jobs
        if extra > 0:
            candidates = [name for name in names if name not in flagged]
            means = {name: float(self.traces[name].mean()) for name in candidates}
            candidates.sort(key=lambda name: -means[name])  # stable: ties keep job order
            flagged.update(candidates[:extra])
        return flagged

    def _setup(self) -> None:
        flagged = self._select_request_jobs()
        self.request_jobs = [job for job in self.jobs if job.name in flagged]
        self.flow_jobs = [job for job in self.jobs if job.name not in flagged]
        self._is_request = {job.name: job.name in flagged for job in self.jobs}

        # --- request-level half (full cluster substrate) ---
        self.cluster = None
        self.arrivals: dict[str, PoissonArrivals] = {}
        self._replica_log: dict[str, list[tuple[float, int]]] = {}
        if self.request_jobs:
            prefix_rps = {
                name: values * (self.config.rate_scale / 60.0)
                for name, values in self.history_prefix.items()
                if name in flagged
            }
            self.cluster = RayServeCluster(
                self.request_jobs,
                self.quota,
                initial_replicas=self.initial_replicas,
                queue_threshold=self.config.queue_threshold,
                cold_start_range=self.config.cold_start_range,
                metrics_bin_seconds=self.config.metrics_bin_seconds,
                history_minutes=self.config.history_minutes,
                history_prefix=prefix_rps or None,
                seed=self.config.seed,
            )
            # Arrival-stream seeds use the *global* job index, so flagging a
            # job request-level never shifts another job's random stream.
            for index, job in enumerate(self.jobs):
                if job.name in flagged:
                    self.arrivals[job.name] = PoissonArrivals(
                        self.traces[job.name],
                        rate_scale=self.config.rate_scale,
                        seed=self.config.seed + 17 * index + 3,
                    )
            self._replica_log = {
                job.name: [(0.0, self.cluster.targets[job.name])]
                for job in self.request_jobs
            }

        # --- analytic half ---
        # One child RNG is drawn per job in global order (and simply unused
        # for request-level jobs), so a job's analytic stream is stable no
        # matter which other jobs are flagged.
        rng = np.random.default_rng(self.config.seed)
        self._history_rpm = {
            name: values * self.config.rate_scale
            for name, values in self.history_prefix.items()
        }
        self.state: dict[str, _FlowJob] = {}
        for job in self.jobs:
            child = np.random.default_rng(rng.integers(2**31))
            if job.name in flagged:
                continue
            flow = _FlowJob(
                spec=job,
                trace=self.traces[job.name] * self.config.rate_scale,
                queue_threshold=self.config.queue_threshold,
                cold_start_range=self.config.cold_start_range,
                rng=child,
            )
            count = int(self.initial_replicas.get(job.name, job.min_replicas))
            flow.running = count
            flow.target = count
            self.state[job.name] = flow

        self._push_device_assignment()
        self._fault_injector = (
            make_fault_injector(self.config.faults) if self.config.faults else None
        )

    def _push_device_assignment(
        self, hints: dict[str, dict[str, int]] | None = None
    ) -> None:
        """Re-place replica targets onto device classes; push each job's
        effective processing time into whichever half simulates it.  No-op
        on homogeneous runs."""
        if self.device_pool is None:
            return
        targets: dict[str, int] = {}
        for job in self.jobs:
            name = job.name
            if self._is_request[name]:
                targets[name] = self.cluster.targets[name]
            else:
                targets[name] = self.state[name].target
        self.device_pool.assign(targets, hints)
        for job in self.jobs:
            name = job.name
            proc_eff = self.device_pool.effective_proc_time(name)
            if self._is_request[name]:
                self.cluster.routers[name].proc_time_override = proc_eff
            else:
                self.state[name].proc_time = proc_eff

    def _reset(self) -> None:
        if self._fault_injector is not None:
            self._fault_injector.reset()
        self._acc = new_flow_buckets(self.state, self.duration_minutes)
        self._last_tick: dict[str, dict] = {}

    # ------------------------------------------------------------ advance

    def advance(self, now: float, tick: float, end_time: float) -> float:
        chunk_end = min(now + tick, end_time)
        dt = min(tick, end_time - now)
        minutes = self.duration_minutes
        minute = min(int(now // 60.0), minutes - 1)
        for name, stream in self.arrivals.items():
            chunk = stream.take_until_array(chunk_end)
            if chunk.size:
                self.cluster.offer_chunk(name, chunk)
        for name, flow in self.state.items():
            lam = flow.trace[minute] / 60.0
            stats = flow.step(now, dt, lam)
            self._last_tick[name] = stats
            accumulate_flow_tick(self._acc[name], minute, stats)
        if self._fault_injector is not None:
            # Sampled per job in global job order so the fault stream is
            # independent of the fidelity split.
            for job in self.jobs:
                name = job.name
                if self._is_request[name]:
                    # `tick`, not `dt`: the pure request backend samples the
                    # full tick even on the final partial chunk, and an
                    # all-flagged hybrid must realize the same process.
                    router = self.cluster.routers[name]
                    kills = self._fault_injector.sample(
                        name, router.replica_count, tick
                    )
                    for _ in range(kills):
                        router.fail_replica(chunk_end)
                else:
                    flow = self.state[name]
                    kills = self._fault_injector.sample(name, flow.existing, dt)
                    if kills:
                        flow.fail(kills, chunk_end)
            if self.cluster is not None:
                self.cluster.reconcile(chunk_end)
        return chunk_end

    # ------------------------------------------------------------ control

    def observations(self, now: float) -> dict[str, JobObservation]:
        request_obs: dict[str, JobObservation] = {}
        if self.cluster is not None:
            request_obs = self.cluster.observations(
                now, window=self.config.observation_window
            )
        minute = min(int(now // 60.0), self.duration_minutes - 1)
        observations: dict[str, JobObservation] = {}
        for job in self.jobs:
            name = job.name
            if self._is_request[name]:
                observations[name] = request_obs[name]
            else:
                observations[name] = flow_observation(
                    name, self.state[name], minute, self._history_rpm,
                    self._last_tick,
                )
        return observations

    def apply(self, decision: ScalingDecision, now: float) -> None:
        # Joint quota admission across both fidelity halves: the quota sees
        # one cluster, exactly like the pure backends.
        current = {}
        for job in self.jobs:
            name = job.name
            if self._is_request[name]:
                current[name] = self.cluster.targets[name]
            else:
                current[name] = self.state[name].target
        admitted = admit_decision(self.quota, self.jobs, current, decision)
        for name, target in admitted.items():
            if self._is_request[name]:
                router = self.cluster.routers[name]
                target = max(target, self.cluster.jobs[name].min_replicas)
                if target != router.replica_count:
                    router.scale_to(target, now)
                self.cluster.targets[name] = target
                log = self._replica_log[name]
                if log[-1][1] != target:
                    log.append((now, target))
            else:
                flow = self.state[name]
                target = max(target, flow.spec.min_replicas)
                if target != flow.existing:
                    flow.scale_to(target, now)
                flow.target = target
        self._push_device_assignment(decision.device_replicas)
        for name, rate in decision.drop_rates.items():
            if self._is_request.get(name):
                self.cluster.routers[name].drop_rate = float(rate)
            elif name in self.state:
                self.state[name].drop_rate = float(rate)

    def end_of_chunk(self, now: float) -> None:
        minute_after = min(int(now // 60.0), self.duration_minutes - 1)
        for name, flow in self.state.items():
            self._acc[name]["replicas"][minute_after] = flow.target

    # ------------------------------------------------------------ collect

    def collect(self) -> SimulationResult:
        minutes = self.duration_minutes
        series = {}
        for job in self.jobs:
            name = job.name
            if self._is_request[name]:
                series[name] = collect_request_series(
                    name,
                    self.cluster.metrics[name],
                    minutes,
                    replicas_per_minute(self._replica_log[name], minutes),
                )
            else:
                series[name] = collect_flow_series(
                    name, self.state[name], self._acc[name], minutes
                )
        metadata = self.base_metadata()
        metadata["request_jobs"] = [job.name for job in self.request_jobs]
        metadata["flow_jobs"] = [job.name for job in self.flow_jobs]
        if self._fault_injector is not None:
            metadata["failures_injected"] = dict(self._fault_injector.failures_injected)
            metadata["total_failures"] = self._fault_injector.total_failures
        return SimulationResult(
            jobs=series,
            policy_name=getattr(self.policy, "name", "policy"),
            metadata=metadata,
        )
