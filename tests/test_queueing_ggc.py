"""G/G/c / M/G/c approximation tests: corner cases and structural properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.ggc import (
    ggc_latency_percentile,
    ggc_mean_wait,
    ggc_wait_percentile,
    kingman_wait,
    mgc_mean_wait,
    mgc_wait_percentile,
    variability_factor,
)
from repro.queueing.mdc import mdc_mean_wait, mdc_wait_percentile
from repro.queueing.mmc import mmc_mean_wait, mmc_wait_percentile


class TestVariabilityFactor:
    def test_mm_inputs_give_one(self):
        assert variability_factor(1.0, 1.0) == pytest.approx(1.0)

    def test_md_inputs_give_half(self):
        assert variability_factor(1.0, 0.0) == pytest.approx(0.5)

    def test_symmetric(self):
        assert variability_factor(0.3, 1.7) == variability_factor(1.7, 0.3)

    @pytest.mark.parametrize("ca2,cs2", [(-0.1, 1.0), (1.0, -0.1)])
    def test_negative_rejected(self, ca2, cs2):
        with pytest.raises(ValueError):
            variability_factor(ca2, cs2)


class TestKingman:
    def test_mm1_exact(self):
        # ca2 = cs2 = 1 recovers M/M/1 mean wait exactly.
        lam, mu = 0.7, 1.0
        assert kingman_wait(lam, mu, 1.0, 1.0) == pytest.approx(mmc_mean_wait(lam, mu, 1))

    def test_md1_exact(self):
        # ca2 = 1, cs2 = 0 recovers the Pollaczek-Khinchine M/D/1 mean wait.
        lam, proc = 0.6, 1.0
        expected = (0.6 / (1 - 0.6)) * 0.5 * proc
        assert kingman_wait(lam, 1.0 / proc, 1.0, 0.0) == pytest.approx(expected)

    def test_unstable_inf(self):
        assert math.isinf(kingman_wait(2.0, 1.0, 1.0, 1.0))

    def test_zero_arrivals(self):
        assert kingman_wait(0.0, 1.0, 1.0, 1.0) == 0.0

    def test_increasing_in_variability(self):
        waits = [kingman_wait(0.5, 1.0, 1.0, cs2) for cs2 in (0.0, 0.5, 1.0, 2.0)]
        assert all(a < b for a, b in zip(waits, waits[1:]))


class TestGGCMeanWait:
    def test_reduces_to_mmc(self):
        lam, mu, c = 3.0, 1.0, 4
        assert ggc_mean_wait(lam, mu, c, 1.0, 1.0) == pytest.approx(mmc_mean_wait(lam, mu, c))

    def test_reduces_to_mdc(self):
        # ca2 = 1, cs2 = 0 is the half-wait rule = Faro's M/D/c estimator.
        lam, proc, c = 3.0, 1.0, 4
        assert ggc_mean_wait(lam, 1.0 / proc, c, 1.0, 0.0) == pytest.approx(
            mdc_mean_wait(lam, proc, c)
        )

    def test_unstable_inf(self):
        assert math.isinf(ggc_mean_wait(5.0, 1.0, 4, 1.0, 1.0))

    def test_zero_arrivals(self):
        assert ggc_mean_wait(0.0, 1.0, 4, 1.0, 1.0) == 0.0

    def test_single_server_matches_kingman(self):
        lam, mu = 0.8, 1.0
        # Allen-Cunneen on one server scales M/M/1, same as Kingman.
        assert ggc_mean_wait(lam, mu, 1, 0.7, 0.4) == pytest.approx(
            kingman_wait(lam, mu, 0.7, 0.4)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        rho=st.floats(min_value=0.05, max_value=0.9),
        servers=st.integers(min_value=1, max_value=16),
        ca2=st.floats(min_value=0.0, max_value=3.0),
        cs2=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_scales_linearly_with_variability(self, rho, servers, ca2, cs2):
        mu = 1.0
        lam = rho * servers * mu
        base = mmc_mean_wait(lam, mu, servers)
        assert ggc_mean_wait(lam, mu, servers, ca2, cs2) == pytest.approx(
            base * (ca2 + cs2) / 2.0
        )


class TestGGCPercentiles:
    def test_monotone_in_quantile(self):
        values = [ggc_wait_percentile(q, 3.5, 1.0, 4, 1.2, 0.8) for q in (0.5, 0.9, 0.99)]
        assert values[0] <= values[1] <= values[2]

    def test_reduces_to_mdc_percentile(self):
        lam, proc, c, q = 3.0, 1.0, 4, 0.99
        assert ggc_wait_percentile(q, lam, 1.0 / proc, c, 1.0, 0.0) == pytest.approx(
            mdc_wait_percentile(q, lam, proc, c)
        )

    def test_reduces_to_mmc_percentile(self):
        lam, mu, c, q = 3.0, 1.0, 4, 0.95
        assert ggc_wait_percentile(q, lam, mu, c, 1.0, 1.0) == pytest.approx(
            mmc_wait_percentile(q, lam, mu, c)
        )

    def test_unstable_inf(self):
        assert math.isinf(ggc_wait_percentile(0.99, 10.0, 1.0, 4, 1.0, 1.0))

    def test_latency_adds_service_time(self):
        lam, proc, c, q = 2.0, 0.5, 3, 0.9
        wait = ggc_wait_percentile(q, lam, 1.0 / proc, c, 1.0, 0.5)
        assert ggc_latency_percentile(q, lam, proc, c, 1.0, 0.5) == pytest.approx(wait + proc)

    def test_latency_zero_load_is_service_time(self):
        assert ggc_latency_percentile(0.99, 0.0, 0.25, 2, 1.0, 1.0) == pytest.approx(0.25)

    def test_latency_invalid_proc_time(self):
        with pytest.raises(ValueError):
            ggc_latency_percentile(0.9, 1.0, 0.0, 2, 1.0, 1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        rho=st.floats(min_value=0.1, max_value=0.9),
        servers=st.integers(min_value=1, max_value=12),
        q=st.floats(min_value=0.5, max_value=0.999),
    )
    def test_more_variability_never_faster(self, rho, servers, q):
        mu = 2.0
        lam = rho * servers * mu
        low = ggc_wait_percentile(q, lam, mu, servers, 1.0, 0.0)
        high = ggc_wait_percentile(q, lam, mu, servers, 1.0, 2.0)
        assert high >= low


class TestMGC:
    def test_is_ggc_with_poisson_arrivals(self):
        lam, mu, c = 3.0, 1.0, 4
        assert mgc_mean_wait(lam, mu, c, 0.25) == pytest.approx(
            ggc_mean_wait(lam, mu, c, 1.0, 0.25)
        )

    def test_percentile_matches_ggc(self):
        assert mgc_wait_percentile(0.9, 3.0, 1.0, 4, 0.25) == pytest.approx(
            ggc_wait_percentile(0.9, 3.0, 1.0, 4, 1.0, 0.25)
        )

    def test_deterministic_service_halves_mm_wait(self):
        lam, mu, c = 3.0, 1.0, 4
        assert mgc_mean_wait(lam, mu, c, 0.0) == pytest.approx(
            0.5 * mmc_mean_wait(lam, mu, c)
        )
