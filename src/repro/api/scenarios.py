"""Scenario registry: named, parameterized cluster/workload setups.

A :class:`~repro.api.spec.ScenarioSpec` names a registered scenario *kind*
plus keyword parameters; :func:`build_scenario` resolves the kind here and
calls the factory.  The built-in kinds wrap the paper's setups
(:mod:`repro.experiments.scenarios`); plugins may register new kinds with
:func:`register_scenario` -- any callable returning a
:class:`~repro.experiments.scenarios.Scenario` qualifies.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.experiments.scenarios import (
    large_scale_scenario,
    mixed_model_scenario,
    paper_scenario,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import ScenarioSpec
    from repro.experiments.scenarios import Scenario

__all__ = [
    "ScenarioInfo",
    "ScenarioRegistry",
    "register_scenario",
    "get_scenario_registry",
    "build_scenario",
]

ScenarioFactory = Callable[..., "Scenario"]


@dataclass(frozen=True)
class ScenarioInfo:
    """One registered scenario kind."""

    name: str
    description: str
    factory: ScenarioFactory

    def param_names(self) -> tuple[str, ...]:
        """Keyword parameters the factory accepts (for validation/CLI)."""
        sig = inspect.signature(self.factory)
        return tuple(
            p.name
            for p in sig.parameters.values()
            if p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        )

    def param_defaults(self) -> dict[str, Any]:
        sig = inspect.signature(self.factory)
        return {
            p.name: p.default
            for p in sig.parameters.values()
            if p.default is not inspect.Parameter.empty
        }


class ScenarioRegistry:
    """Name -> :class:`ScenarioInfo`, case-insensitive, registration order."""

    def __init__(self) -> None:
        self._entries: dict[str, ScenarioInfo] = {}

    def register(
        self, name: str, *, description: str = ""
    ) -> Callable[[ScenarioFactory], ScenarioFactory]:
        def decorator(factory: ScenarioFactory) -> ScenarioFactory:
            key = name.lower()
            if key in self._entries:
                raise ValueError(f"scenario kind {name!r} is already registered")
            self._entries[key] = ScenarioInfo(
                name=name, description=description, factory=factory
            )
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        self.get(name)
        del self._entries[name.lower()]

    def get(self, name: str) -> ScenarioInfo:
        info = self._entries.get(str(name).lower())
        if info is None:
            known = ", ".join(sorted(self._entries))
            raise ValueError(f"unknown scenario kind {name!r}; registered: {known}")
        return info

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._entries

    def __iter__(self) -> Iterator[ScenarioInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> tuple[str, ...]:
        return tuple(info.name for info in self)

    def build(self, kind: str, params: Mapping[str, Any] | None = None) -> "Scenario":
        """Build a scenario of ``kind``; unknown parameters raise ValueError."""
        info = self.get(kind)
        params = dict(params or {})
        accepted = set(info.param_names())
        unknown = set(params) - accepted
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for scenario kind "
                f"{info.name!r}; accepted: {sorted(accepted)}"
            )
        return info.factory(**params)


_DEFAULT_SCENARIOS = ScenarioRegistry()


def get_scenario_registry() -> ScenarioRegistry:
    """The process-wide default :class:`ScenarioRegistry`."""
    return _DEFAULT_SCENARIOS


def register_scenario(
    name: str, *, description: str = ""
) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Register a scenario factory on the default registry (decorator)."""
    return _DEFAULT_SCENARIOS.register(name, description=description)


def build_scenario(spec: "ScenarioSpec") -> "Scenario":
    """Materialize a :class:`ScenarioSpec` into a concrete scenario."""
    scenario = _DEFAULT_SCENARIOS.build(spec.kind, spec.params)
    if spec.name:
        scenario.name = spec.name
    return scenario


# ------------------------------------------------------- built-in kinds

register_scenario(
    "paper",
    description=(
        "The paper's main setup (§6): N ResNet34 jobs on Azure+Twitter "
        "traces; size RS(36)/SO(32)/HO(16) or an explicit replica count."
    ),
)(paper_scenario)

register_scenario(
    "mixed",
    description="Mixed workload (§6.3): alternating ResNet18/ResNet34 jobs.",
)(mixed_model_scenario)

register_scenario(
    "large-scale",
    description="Large-scale workloads (§6.5): duplicated job mixes.",
)(large_scale_scenario)
