"""Trace post-processing: rescaling, window compression, train/eval split.

Mirrors the paper's preparation (§6): traces are rescaled to inject between
1 and 1600 requests per minute; for cluster deployments they are compressed
by averaging 4-minute windows (reducing experiment time while keeping the
temporal patterns); days 1-10 train the predictor and day 11 evaluates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rescale_trace", "compress_windows", "train_eval_split"]

MINUTES_PER_DAY = 1440


def rescale_trace(
    trace: np.ndarray,
    lo: float = 1.0,
    hi: float = 1600.0,
    percentile: float = 99.5,
) -> np.ndarray:
    """Rescale a trace into the [lo, hi] requests/minute band.

    The trace minimum maps to ``lo`` and its ``percentile`` value to ``hi``;
    rarer burst peaks clip at ``hi`` (the paper injects *between* 1 and 1600
    requests/minute, so the band is a hard envelope).  Using a high
    percentile instead of the maximum keeps one freak burst from compressing
    the diurnal structure into the bottom of the band.  A constant trace
    maps to the midpoint.
    """
    if lo < 0 or hi <= lo:
        raise ValueError(f"need 0 <= lo < hi, got lo={lo}, hi={hi}")
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise ValueError("trace must be non-empty")
    t_min = float(trace.min())
    t_ref = float(np.percentile(trace, percentile))
    if t_ref - t_min < 1e-12:
        return np.full_like(trace, (lo + hi) / 2.0)
    scaled = lo + (trace - t_min) * (hi - lo) / (t_ref - t_min)
    return np.clip(scaled, lo, hi)


def compress_windows(trace: np.ndarray, window: int = 4) -> np.ndarray:
    """Average consecutive ``window``-minute windows (paper's 4-min windows).

    Truncates the trailing partial window.  The result has one value per
    window and is interpreted at the compressed timescale (the paper plays
    each averaged window back as one "minute" to shorten experiments while
    retaining temporal patterns).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    trace = np.asarray(trace, dtype=float)
    usable = (trace.shape[0] // window) * window
    if usable == 0:
        raise ValueError(f"trace of length {trace.shape[0]} shorter than window {window}")
    return trace[:usable].reshape(-1, window).mean(axis=1)


def train_eval_split(
    trace: np.ndarray, train_days: int = 10, minutes_per_day: int = MINUTES_PER_DAY
) -> tuple[np.ndarray, np.ndarray]:
    """Split a per-minute trace into (train, eval) by day boundary."""
    if train_days < 1:
        raise ValueError(f"train_days must be >= 1, got {train_days}")
    trace = np.asarray(trace, dtype=float)
    cut = train_days * minutes_per_day
    if trace.shape[0] <= cut:
        raise ValueError(
            f"trace of {trace.shape[0]} minutes has no data after "
            f"{train_days} training days"
        )
    return trace[:cut], trace[cut:]
