"""Oneshot: reactive linearly-proportional scaling (K8s HPA style).

When a job has been violating its SLO for the scale-up hold (30 s), the
target jumps in one shot to ``ceil(current * latency / SLO)`` -- the K8s
HPA / Ray Serve proportional rule.  When the job has been comfortably under
its SLO for the scale-down hold (5 min), the target shrinks by the same
proportional rule.  The paper's diagnosis (§6.1): aggressive one-shot
up-scaling plus delayed down-scaling hoards resources and starves other
jobs in a constrained cluster.
"""

from __future__ import annotations

import math

from repro.policy import (
    AutoscalePolicy,
    JobObservation,
    ScalingDecision,
    TriggerTracker,
)

__all__ = ["OneshotPolicy"]


class OneshotPolicy(AutoscalePolicy):
    """Proportional reactive autoscaler (per job, no coordination)."""

    name = "Oneshot"
    tick_interval = 10.0

    def __init__(
        self,
        slos: dict[str, float],
        up_hold: float = 30.0,
        down_hold: float = 300.0,
        min_replicas: int = 1,
        max_factor: float = 8.0,
    ) -> None:
        if not slos:
            raise ValueError("slos must be non-empty")
        self.slos = dict(slos)
        self.min_replicas = min_replicas
        self.max_factor = max_factor
        self._up = TriggerTracker(up_hold)
        self._down = TriggerTracker(down_hold)

    def reset(self) -> None:
        self._up.clear()
        self._down.clear()

    def _proportional_target(self, obs: JobObservation, slo: float) -> int:
        if math.isinf(obs.latency):
            factor = self.max_factor
        else:
            factor = min(max(obs.latency / slo, 1.0 / self.max_factor), self.max_factor)
        return max(int(math.ceil(obs.target_replicas * factor)), self.min_replicas)

    def tick(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        decision = ScalingDecision()
        for name, obs in observations.items():
            slo = self.slos.get(name)
            if slo is None:
                continue
            overloaded = obs.latency > slo
            underloaded = not overloaded and obs.arrival_rate >= 0.0
            if self._up.update(name, overloaded, now):
                target = self._proportional_target(obs, slo)
                if target > obs.target_replicas:
                    decision.replicas[name] = target
                self._up.clear(name)
                self._down.clear(name)
            elif self._down.update(name, underloaded, now):
                target = self._proportional_target(obs, slo)
                if target < obs.target_replicas:
                    decision.replicas[name] = target
                self._down.clear(name)
        return decision if decision.replicas else None
