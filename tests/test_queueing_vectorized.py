"""Vectorized queueing kernels must agree with the scalar formulas."""

import math

import numpy as np
import pytest

from repro.queueing.mdc import mdc_latency_percentile
from repro.queueing.mmc import erlang_c
from repro.queueing.vectorized import (
    erlang_c_at_rho,
    erlang_c_table,
    mdc_latency_table,
)


class TestErlangCTable:
    def test_matches_scalar(self):
        loads = np.array([0.5, 1.7, 3.2, 6.9])
        table = erlang_c_table(loads, 10)
        for k in range(1, 11):
            for j, a in enumerate(loads):
                expected = erlang_c(k, float(a)) if a < k else 1.0
                assert table[k - 1, j] == pytest.approx(expected, abs=1e-12)

    def test_unstable_entries_are_one(self):
        table = erlang_c_table(np.array([5.0]), 4)
        assert np.all(table[:4] == 1.0)

    def test_shape(self):
        assert erlang_c_table(np.zeros(3), 7).shape == (7, 3)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            erlang_c_table(np.array([-1.0]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            erlang_c_table(np.zeros((2, 2)), 3)


class TestErlangCAtRho:
    def test_matches_scalar_diagonal(self):
        values = erlang_c_at_rho(0.95, 12)
        for k in range(1, 13):
            assert values[k - 1] == pytest.approx(erlang_c(k, 0.95 * k), abs=1e-12)

    def test_cached_identical(self):
        a = erlang_c_at_rho(0.9, 8)
        b = erlang_c_at_rho(0.9, 8)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("rho", [0.0, 1.0])
    def test_invalid_rho(self, rho):
        with pytest.raises(ValueError):
            erlang_c_at_rho(rho, 4)


class TestLatencyTable:
    def test_matches_scalar_mdc(self):
        rates = np.array([1.0, 5.0, 12.0, 20.0])
        p = 0.18
        table = mdc_latency_table(0.99, rates, p, 8, relaxed=False)
        for k in range(1, 9):
            for j, lam in enumerate(rates):
                expected = mdc_latency_percentile(0.99, float(lam), p, k)
                if math.isinf(expected):
                    assert math.isinf(table[k - 1, j])
                else:
                    assert table[k - 1, j] == pytest.approx(expected, abs=1e-9)

    def test_zero_rate_gives_service_time(self):
        table = mdc_latency_table(0.99, np.array([0.0]), 0.2, 4)
        assert np.allclose(table[:, 0], 0.2)

    def test_precise_has_inf_plateau(self):
        table = mdc_latency_table(0.99, np.array([100.0]), 0.2, 5, relaxed=False)
        assert np.all(np.isinf(table[:, 0]))

    def test_relaxed_removes_inf(self):
        table = mdc_latency_table(0.99, np.array([100.0]), 0.2, 5, relaxed=True)
        assert np.all(np.isfinite(table[:, 0]))

    def test_relaxed_monotone_in_overload(self):
        # With one server, latencies should grow with the arrival rate in
        # the overloaded (relaxed) regime -- no plateau.
        rates = np.array([10.0, 20.0, 40.0, 80.0])
        table = mdc_latency_table(0.99, rates, 0.2, 1, relaxed=True)
        row = table[0]
        assert np.all(np.diff(row) > 0)

    def test_relaxed_agrees_with_precise_when_stable(self):
        rates = np.array([2.0, 6.0])
        precise = mdc_latency_table(0.99, rates, 0.2, 6, relaxed=False)
        relaxed = mdc_latency_table(0.99, rates, 0.2, 6, relaxed=True)
        stable = np.isfinite(precise) & (rates[None, :] * 0.2 <= 0.95 * np.arange(1, 7)[:, None])
        assert np.allclose(precise[stable], relaxed[stable])

    @pytest.mark.parametrize("q", [0.0, 1.0])
    def test_invalid_quantile(self, q):
        with pytest.raises(ValueError):
            mdc_latency_table(q, np.array([1.0]), 0.2, 3)
