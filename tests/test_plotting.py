"""ASCII chart layout tests (repro.experiments.plotting)."""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_bars, ascii_boxplot, ascii_timeline


class TestTimeline:
    def _series(self, n=100):
        t = np.linspace(0, 4 * np.pi, n)
        return {"sin": 5 + 3 * np.sin(t), "cos": 5 + 3 * np.cos(t)}

    def test_dimensions(self):
        chart = ascii_timeline(self._series(), width=40, height=10, title="T")
        lines = chart.splitlines()
        # title + top axis + 10 rows + bottom axis + legend
        assert len(lines) == 14
        assert lines[0] == "T"
        body = lines[2:12]
        assert all(len(line) <= 12 + 40 for line in body)

    def test_markers_distinct(self):
        chart = ascii_timeline(self._series(), width=40, height=10)
        assert "*" in chart and "o" in chart
        assert "* sin" in chart and "o cos" in chart

    def test_handles_non_finite(self):
        series = {"a": np.array([1.0, np.inf, 2.0, np.nan, 3.0])}
        chart = ascii_timeline(series, width=10, height=4)
        assert "a" in chart

    def test_constant_series(self):
        chart = ascii_timeline({"flat": np.full(50, 2.0)}, width=20, height=5)
        assert "*" in chart

    def test_downsamples_long_series(self):
        chart = ascii_timeline({"long": np.arange(10_000.0)}, width=30, height=6)
        body = [line for line in chart.splitlines() if "|" in line]
        assert all(len(line) <= 12 + 30 for line in body)

    @pytest.mark.parametrize("kwargs", [
        {"series": {}},
        {"series": {"a": np.array([])}},
        {"series": {"a": np.ones(5)}, "width": 4},
        {"series": {"a": np.ones(5)}, "height": 1},
        {"series": {"a": np.array([np.inf, np.nan])}},
    ])
    def test_invalid(self, kwargs):
        series = kwargs.pop("series")
        with pytest.raises(ValueError):
            ascii_timeline(series, **kwargs)


class TestBars:
    def test_proportional_lengths(self):
        chart = ascii_bars(["a", "b"], [1.0, 2.0], width=20)
        rows = chart.splitlines()
        len_a = rows[0].count("#")
        len_b = rows[1].count("#")
        assert len_b == 20
        assert len_a == 10

    def test_zero_bar_has_no_hashes(self):
        chart = ascii_bars(["zero", "one"], [0.0, 1.0], width=10)
        zero_row = chart.splitlines()[0]
        assert "#" not in zero_row

    def test_title_and_unit(self):
        chart = ascii_bars(["x"], [3.0], title="Lost utility", unit=" u")
        assert chart.splitlines()[0] == "Lost utility"
        assert "3 u" in chart

    def test_label_alignment(self):
        chart = ascii_bars(["short", "a-much-longer-label"], [1.0, 1.0])
        rows = chart.splitlines()
        assert rows[0].index("|") == rows[1].index("|")

    @pytest.mark.parametrize("labels,values", [
        ([], []),
        (["a"], [1.0, 2.0]),
        (["a"], [-1.0]),
        (["a"], [float("inf")]),
    ])
    def test_invalid(self, labels, values):
        with pytest.raises(ValueError):
            ascii_bars(labels, values)


class TestBoxplot:
    def test_basic_shape(self):
        rng = np.random.default_rng(0)
        groups = {"faro": rng.normal(0.2, 0.05, 100), "oneshot": rng.normal(0.8, 0.2, 100)}
        chart = ascii_boxplot(groups, width=40)
        lines = chart.splitlines()
        assert len(lines) == 3  # scale header + 2 groups
        for line in lines[1:]:
            assert line.count("[") == 1
            assert line.count("]") == 1
            assert line.count("=") == 1
            assert line.count("|") == 2

    def test_ordering_on_shared_scale(self):
        groups = {"low": np.array([0.0, 0.1, 0.2]), "high": np.array([0.8, 0.9, 1.0])}
        chart = ascii_boxplot(groups, width=40)
        low_line, high_line = chart.splitlines()[1:]
        assert low_line.index("=") < high_line.index("=")

    def test_single_value_group(self):
        chart = ascii_boxplot({"point": np.array([5.0]), "range": np.array([0.0, 10.0])})
        assert "point" in chart

    def test_drops_non_finite(self):
        chart = ascii_boxplot({"a": np.array([1.0, np.inf, 2.0])}, width=20)
        assert "a" in chart

    @pytest.mark.parametrize("groups", [
        {},
        {"a": np.array([np.nan])},
    ])
    def test_invalid_groups(self, groups):
        with pytest.raises(ValueError):
            ascii_boxplot(groups)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ascii_boxplot({"a": np.ones(3)}, width=5)
