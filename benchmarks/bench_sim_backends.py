"""Simulation backends: wall-clock per fidelity + batch-offer identity.

The backend refactor's performance contract, pinned for the perf gate
(``tools/check_perf.py`` vs ``results/BENCH_sim.json``):

- the **request** path's numpy batch offers must actually pay: on a
  steady multi-replica workload (the closed-form recurrence's home turf)
  the vectorized run must beat the per-request loop by a real factor, and
  on an adaptive-autoscaler workload it must at minimum never be slower;
- batch offers are **bit-identical** to per-request offers (asserted on
  full per-minute series, not summaries);
- the **flow** and **hybrid** paths must hold their wall-clock, and the
  hybrid backend must land between its two parents (that is its reason to
  exist: request-level fidelity for flagged jobs at near-flow cost).

Absolute numbers are machine-dependent; the gate compares against the
checked-in baseline with a generous tolerance.
"""

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.baselines.aiad import AIADPolicy
from repro.cluster.job import InferenceJobSpec
from repro.cluster.kubernetes import ResourceQuota
from repro.cluster.models import RESNET34, ModelProfile
from repro.experiments.report import format_table
from repro.policy import AutoscalePolicy, ScalingDecision
from repro.sim import get_backend_registry
from repro.sim.simulation import SimulationConfig

#: Evaluation window of the measured workloads (minutes).
BENCH_MINUTES = 30

#: Jobs in the adaptive workload.
BENCH_JOBS = 6

#: Speedup the perf gate demands from batch offers on the steady workload.
GATED_VECTOR_SPEEDUP = 1.5

#: Speedup the perf gate demands from the fused run-splitting kernel on
#: the paper's jittered-service regime (and from the drop-thinned
#: recurrence on explicit-drop workloads).
GATED_JITTER_SPEEDUP = 2.0

#: A deterministic-service ResNet34 profile: the regime where the batch
#: fast path can prove exactness and run whole chunks in closed form.
DETERMINISTIC_MODEL = ModelProfile(
    name="resnet34-det", proc_time=0.180, proc_jitter=0.0
)


class _PinnedPolicy(AutoscalePolicy):
    """Pins every job at a fixed replica count (steady-state workload)."""

    name = "Pinned"
    tick_interval = 10.0

    def __init__(self, replicas: dict[str, int], drop_rates: dict[str, float] | None = None):
        self._replicas = replicas
        self._drop_rates = drop_rates or {}
        self._applied = False

    def reset(self):
        self._applied = False

    def tick(self, now, observations):
        if self._applied:
            return None
        self._applied = True
        return ScalingDecision(
            replicas=dict(self._replicas), drop_rates=dict(self._drop_rates)
        )


def _adaptive_workload(model, minutes=BENCH_MINUTES):
    """A diurnal-ish 6-job workload under an adaptive autoscaler."""
    jobs = [
        InferenceJobSpec.with_default_slo(f"job{i}", model)
        for i in range(BENCH_JOBS)
    ]
    minutes = np.arange(minutes, dtype=float)
    traces = {
        job.name: 260.0 + 160.0 * np.sin(minutes / (4.0 + index) + index)
        for index, job in enumerate(jobs)
    }
    policy = AIADPolicy(slos={job.name: job.slo.target for job in jobs})
    return jobs, traces, policy, {job.name: 4 for job in jobs}


def _steady_workload(model, minutes=BENCH_MINUTES):
    """Four hot jobs (100 req/s each) on pinned 30-replica pools."""
    jobs = [
        InferenceJobSpec.with_default_slo(f"hot{i}", model) for i in range(4)
    ]
    traces = {job.name: np.full(minutes, 6000.0) for job in jobs}
    replicas = {job.name: 30 for job in jobs}
    return jobs, traces, _PinnedPolicy(replicas), replicas


def _paper_steady_workload(model, minutes=BENCH_MINUTES):
    """Four jittered-service jobs (10 req/s) on pinned 3-replica pools.

    The paper's default randomness regime on the small pools real on-prem
    jobs run at -- the home turf of the fused run-splitting kernel, which
    must beat the per-request loop by ``GATED_JITTER_SPEEDUP``.
    """
    jobs = [
        InferenceJobSpec.with_default_slo(f"jit{i}", model) for i in range(4)
    ]
    traces = {job.name: np.full(minutes, 600.0) for job in jobs}
    replicas = {job.name: 3 for job in jobs}
    return jobs, traces, _PinnedPolicy(replicas), replicas


def _drops_workload(model, minutes=BENCH_MINUTES):
    """The steady hot pools under a pinned 10% explicit-drop directive.

    Deterministic service keeps the only randomness in the drop lottery,
    so the drop-thinned closed-form recurrence carries whole chunks.
    """
    jobs = [
        InferenceJobSpec.with_default_slo(f"drop{i}", model) for i in range(4)
    ]
    traces = {job.name: np.full(minutes, 6000.0) for job in jobs}
    replicas = {job.name: 30 for job in jobs}
    policy = _PinnedPolicy(replicas, drop_rates={job.name: 0.1 for job in jobs})
    return jobs, traces, policy, replicas


def _build(backend: str, workload, model, *, options=None, seed=0,
           minutes=BENCH_MINUTES):
    jobs, traces, policy, initial = workload(model, minutes)
    config = SimulationConfig(
        duration_minutes=minutes, seed=seed, cold_start_range=(30.0, 40.0)
    )
    total = sum(initial.values())
    return get_backend_registry().create(
        backend,
        jobs,
        traces,
        policy,
        ResourceQuota.of_replicas(max(total, 4 * len(jobs))),
        config=config,
        initial_replicas=initial,
        options=options,
    )


def _series_identical(a, b) -> bool:
    for name in a.jobs:
        for field in ("arrivals", "drops", "violations", "latency_p",
                      "utility", "effective_utility", "replicas"):
            if not np.array_equal(getattr(a.jobs[name], field),
                                  getattr(b.jobs[name], field)):
                return False
    return True


def _time_run(build, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of a freshly built simulation.

    The analytic/hybrid runs finish in tens of milliseconds, far inside
    this machine class's scheduler noise; gating them on a single sample
    would fail on a busy box, so the cheap points take the best of
    several runs (the request-level points are long enough to stand on
    one).
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        sim = build()
        started = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_sim_bench(minutes: int = BENCH_MINUTES) -> dict:
    """Measure every point over a ``minutes``-long window.

    The default window is what the checked-in baseline describes; the
    pre-PR smoke gate (``run_checks.py --bench-smoke``) passes a short
    one to surface structural drift in seconds.
    """

    def build(backend, workload, model, *, options=None):
        return _build(backend, workload, model, options=options,
                      minutes=minutes)

    points = []

    # Steady workload: the batch fast path must win outright.
    hot_vector_s, hot_vector = _time_run(
        lambda: build("request", _steady_workload, DETERMINISTIC_MODEL,
                       options={"vectorize": True})
    )
    hot_scalar_s, hot_scalar = _time_run(
        lambda: build("request", _steady_workload, DETERMINISTIC_MODEL,
                       options={"vectorize": False})
    )
    identical = _series_identical(hot_vector, hot_scalar)
    points.append({"name": "request-steady-vector", "wall_s": hot_vector_s})
    points.append({"name": "request-steady-scalar", "wall_s": hot_scalar_s})

    # Adaptive workload: small pools, scale-downs, bursts -- batching must
    # at minimum never pessimize (and the series must still be identical).
    adaptive_vector_s, adaptive_vector = _time_run(
        lambda: build("request", _adaptive_workload, DETERMINISTIC_MODEL,
                       options={"vectorize": True}),
        repeats=3,
    )
    adaptive_scalar_s, adaptive_scalar = _time_run(
        lambda: build("request", _adaptive_workload, DETERMINISTIC_MODEL,
                       options={"vectorize": False}),
        repeats=3,
    )
    identical = identical and _series_identical(adaptive_vector, adaptive_scalar)
    points.append({"name": "request-adaptive", "wall_s": adaptive_vector_s})
    points.append({"name": "request-adaptive-scalar", "wall_s": adaptive_scalar_s})

    # The paper's default jittered service under the adaptive autoscaler
    # (small shifting pools; the run-splitting kernel carries the chunks).
    paper_s, _ = _time_run(
        lambda: build("request", _adaptive_workload, RESNET34), repeats=3
    )
    points.append({"name": "request-paper", "wall_s": paper_s})

    # Jittered steady pools: the fused kernel's gated regime.  Randomness
    # makes "identical" a three-way claim here: latencies, series, and the
    # RNG stream itself must match the scalar loop draw for draw.
    jitter_vector_s, jitter_vector = _time_run(
        lambda: build("request", _paper_steady_workload, RESNET34,
                       options={"vectorize": True}),
        repeats=3,
    )
    jitter_scalar_s, jitter_scalar = _time_run(
        lambda: build("request", _paper_steady_workload, RESNET34,
                       options={"vectorize": False}),
        repeats=3,
    )
    identical = identical and _series_identical(jitter_vector, jitter_scalar)
    points.append({"name": "request-paper-vector", "wall_s": jitter_vector_s})
    points.append({"name": "request-paper-scalar", "wall_s": jitter_scalar_s})

    # Explicit-drop directives on hot pools: the drop-thinned recurrence.
    drops_vector_s, drops_vector = _time_run(
        lambda: build("request", _drops_workload, DETERMINISTIC_MODEL,
                       options={"vectorize": True})
    )
    drops_scalar_s, drops_scalar = _time_run(
        lambda: build("request", _drops_workload, DETERMINISTIC_MODEL,
                       options={"vectorize": False})
    )
    identical = identical and _series_identical(drops_vector, drops_scalar)
    points.append({"name": "request-drops-vector", "wall_s": drops_vector_s})
    points.append({"name": "request-drops-scalar", "wall_s": drops_scalar_s})

    # Analytic flow and the hybrid split on the adaptive workload.
    flow_s, _ = _time_run(
        lambda: build("flow", _adaptive_workload, DETERMINISTIC_MODEL),
        repeats=5,
    )
    points.append({"name": "flow", "wall_s": flow_s})
    hybrid_s, hybrid_result = _time_run(
        lambda: build("hybrid", _adaptive_workload, DETERMINISTIC_MODEL,
                       options={"auto_request_jobs": 1}),
        repeats=5,
    )
    points.append({"name": "hybrid", "wall_s": hybrid_s})

    return {
        "minutes": minutes,
        "vector_identical": identical,
        "steady_vector_speedup": hot_scalar_s / hot_vector_s,
        "adaptive_vector_speedup": adaptive_scalar_s / adaptive_vector_s,
        "jittered_vector_speedup": jitter_scalar_s / jitter_vector_s,
        "drops_vector_speedup": drops_scalar_s / drops_vector_s,
        "gated_vector_speedup": GATED_VECTOR_SPEEDUP,
        "gated_jitter_speedup": GATED_JITTER_SPEEDUP,
        "hybrid_request_jobs": hybrid_result.metadata["request_jobs"],
        "points": points,
    }


def test_sim_backend_bench(benchmark):
    data = benchmark.pedantic(run_sim_bench, rounds=1, iterations=1)

    by_name = {point["name"]: point["wall_s"] for point in data["points"]}
    rows = [
        ["request steady (batch)", f"{by_name['request-steady-vector']*1000:.0f}ms",
         "byte-identical" if data["vector_identical"] else "DIVERGED"],
        ["request steady (per-request)", f"{by_name['request-steady-scalar']*1000:.0f}ms",
         f"batch is {data['steady_vector_speedup']:.2f}x faster"],
        ["request adaptive (batch)", f"{by_name['request-adaptive']*1000:.0f}ms",
         f"batch is {data['adaptive_vector_speedup']:.2f}x faster"],
        ["request adaptive (per-request)",
         f"{by_name['request-adaptive-scalar']*1000:.0f}ms", "-"],
        ["request (paper jitter, adaptive)", f"{by_name['request-paper']*1000:.0f}ms", "-"],
        ["request jittered steady (batch)",
         f"{by_name['request-paper-vector']*1000:.0f}ms",
         f"batch is {data['jittered_vector_speedup']:.2f}x faster"],
        ["request jittered steady (per-request)",
         f"{by_name['request-paper-scalar']*1000:.0f}ms", "-"],
        ["request drops (batch)", f"{by_name['request-drops-vector']*1000:.0f}ms",
         f"batch is {data['drops_vector_speedup']:.2f}x faster"],
        ["request drops (per-request)",
         f"{by_name['request-drops-scalar']*1000:.0f}ms", "-"],
        ["flow (analytic)", f"{by_name['flow']*1000:.0f}ms", "-"],
        ["hybrid (1 flagged job)", f"{by_name['hybrid']*1000:.0f}ms",
         f"request jobs: {data['hybrid_request_jobs']}"],
    ]
    text = format_table(
        ["configuration", "wall-clock", "notes"],
        rows,
        title=f"== Simulation backends ({BENCH_MINUTES}-minute workloads) ==",
    )
    write_result("sim_backends", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sim.json").write_text(json.dumps(data, indent=2) + "\n")

    # The batch path may never change a bit of output...
    assert data["vector_identical"]
    # ...must pay for itself where it engages fully...
    assert data["steady_vector_speedup"] >= GATED_VECTOR_SPEEDUP
    # ...including under the paper's jittered service and drop directives...
    assert data["jittered_vector_speedup"] >= GATED_JITTER_SPEEDUP
    assert data["drops_vector_speedup"] >= GATED_JITTER_SPEEDUP
    # ...and may never pessimize the adaptive path (noise margin).
    assert by_name["request-adaptive"] <= by_name["request-adaptive-scalar"] * 1.15
    # The hybrid backend must sit strictly between its parents.
    assert by_name["flow"] < by_name["hybrid"] < by_name["request-adaptive"]


# ------------------------------------------------------------ smoke gate

#: Window of the pre-PR smoke run: long enough for the kernels to engage,
#: short enough to finish in a few seconds.
SMOKE_MINUTES = 4

#: Fraction of each gated speedup the smoke run must reach.  The smoke
#: window is short, so per-run setup overhead eats into the measured
#: ratios; the point of the smoke gate is structural drift (a kernel that
#: stopped engaging, a diverged series), not calibrated wall-clock.
SMOKE_SPEEDUP_MARGIN = 0.75


def run_smoke(minutes: int = SMOKE_MINUTES) -> int:
    """Tiny-window structural gate for ``run_checks.py --bench-smoke``.

    Runs every bench point over a short window and checks the identity
    invariant plus softened speedup floors.  Writes no baseline and no
    results file -- this is a pre-PR tripwire, not a measurement.
    """
    data = run_sim_bench(minutes=minutes)
    checks = [
        ("batch-identity", "== scalar",
         "== scalar" if data["vector_identical"] else "DIVERGED",
         data["vector_identical"]),
    ]
    for key, gate_key in (
        ("steady_vector_speedup", "gated_vector_speedup"),
        ("jittered_vector_speedup", "gated_jitter_speedup"),
        ("drops_vector_speedup", "gated_jitter_speedup"),
    ):
        floor = data[gate_key] * SMOKE_SPEEDUP_MARGIN
        checks.append(
            (key.replace("_vector_speedup", "-speedup"), f">= {floor:.2f}x",
             f"{data[key]:.2f}x", data[key] >= floor)
        )
    ok = all(passed for *_, passed in checks)
    print(
        format_table(
            ["check", "floor", "measured", "verdict"],
            [[name, floor, measured, "ok" if passed else "FAILED"]
             for name, floor, measured, passed in checks],
            title=f"== Sim-backend smoke ({minutes}-minute window) ==",
        )
    )
    print("OK: sim-backend smoke passed" if ok else "FAIL: sim-backend smoke")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=run_smoke.__doc__.splitlines()[0])
    parser.add_argument("--minutes", type=int, default=SMOKE_MINUTES)
    args = parser.parse_args()
    sys.exit(run_smoke(minutes=args.minutes))
