"""M/M/c formula tests against textbook values and structural properties."""

import math

import pytest

from repro.queueing.mmc import (
    erlang_b,
    erlang_c,
    mmc_mean_wait,
    mmc_wait_ccdf,
    mmc_wait_percentile,
    utilization,
)


class TestUtilization:
    def test_basic(self):
        assert utilization(5.0, 1.0, 10) == pytest.approx(0.5)

    def test_unstable_exceeds_one(self):
        assert utilization(20.0, 1.0, 10) == pytest.approx(2.0)

    def test_zero_arrivals(self):
        assert utilization(0.0, 1.0, 4) == 0.0

    @pytest.mark.parametrize("lam,mu,c", [(-1, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_invalid_inputs(self, lam, mu, c):
        with pytest.raises(ValueError):
            utilization(lam, mu, c)


class TestErlangB:
    def test_zero_servers(self):
        assert erlang_b(0, 3.0) == 1.0

    def test_single_server(self):
        # B(1, a) = a / (1 + a)
        assert erlang_b(1, 2.0) == pytest.approx(2.0 / 3.0)

    def test_textbook_value(self):
        # Known: B(5, 3) ~= 0.11005 (Erlang tables).
        assert erlang_b(5, 3.0) == pytest.approx(0.11005, abs=1e-4)

    def test_decreasing_in_servers(self):
        values = [erlang_b(c, 4.0) for c in range(1, 12)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_zero_load(self):
        assert erlang_b(4, 0.0) == 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            erlang_b(2, -1.0)


class TestErlangC:
    def test_textbook_value(self):
        # Known: C(2, 1) = 1/3 for M/M/2 at rho = 0.5.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_unstable_returns_one(self):
        assert erlang_c(3, 3.0) == 1.0
        assert erlang_c(3, 5.0) == 1.0

    def test_bounded(self):
        for c in range(1, 10):
            for a_tenths in range(0, c * 10, 3):
                value = erlang_c(c, a_tenths / 10.0)
                assert 0.0 <= value <= 1.0

    def test_c_larger_than_b(self):
        # Erlang C >= Erlang B for the same (c, a) in stable region.
        assert erlang_c(4, 2.0) >= erlang_b(4, 2.0)

    def test_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0


class TestMeanWait:
    def test_mm1_closed_form(self):
        # M/M/1: Wq = rho / (mu - lam).
        lam, mu = 0.5, 1.0
        expected = 0.5 / (1.0 - 0.5)
        assert mmc_mean_wait(lam, mu, 1) == pytest.approx(expected)

    def test_unstable_inf(self):
        assert math.isinf(mmc_mean_wait(2.0, 1.0, 1))

    def test_zero_arrivals(self):
        assert mmc_mean_wait(0.0, 1.0, 2) == 0.0

    def test_decreasing_in_servers(self):
        waits = [mmc_mean_wait(3.0, 1.0, c) for c in range(4, 10)]
        assert all(a > b for a, b in zip(waits, waits[1:]))


class TestWaitDistribution:
    def test_ccdf_at_zero_is_erlang_c(self):
        assert mmc_wait_ccdf(0.0, 2.0, 1.0, 4) == pytest.approx(erlang_c(4, 2.0))

    def test_ccdf_decreasing_in_time(self):
        values = [mmc_wait_ccdf(t / 4.0, 2.0, 1.0, 3) for t in range(8)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_percentile_roundtrip(self):
        # CCDF at the q-quantile equals 1 - q (when the quantile is > 0).
        lam, mu, c, q = 3.5, 1.0, 4, 0.99
        t = mmc_wait_percentile(q, lam, mu, c)
        assert t > 0
        assert mmc_wait_ccdf(t, lam, mu, c) == pytest.approx(1 - q, rel=1e-9)

    def test_percentile_zero_when_below_wait_mass(self):
        # With tiny load almost nobody waits: low quantiles are exactly 0.
        assert mmc_wait_percentile(0.5, 0.1, 1.0, 8) == 0.0

    def test_percentile_unstable(self):
        assert math.isinf(mmc_wait_percentile(0.99, 10.0, 1.0, 2))

    def test_percentile_monotone_in_q(self):
        values = [mmc_wait_percentile(q / 100, 3.6, 1.0, 4) for q in (50, 90, 99)]
        assert values[0] <= values[1] <= values[2]

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_quantile(self, q):
        with pytest.raises(ValueError):
            mmc_wait_percentile(q, 1.0, 1.0, 2)
