"""Drop-penalty tests (paper Table 5, Eq. 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.penalty import (
    effective_utility,
    penalty_multiplier,
    penalty_multiplier_relaxed,
    service_credit,
)


class TestServiceCredit:
    @pytest.mark.parametrize(
        "availability,credit",
        [
            (1.0, 0.0),
            (0.995, 0.0),
            (0.99, 0.0),
            (0.97, 0.25),
            (0.95, 0.25),
            (0.93, 0.5),
            (0.90, 0.5),
            (0.5, 1.0),
            (0.0, 1.0),
        ],
    )
    def test_table5_brackets(self, availability, credit):
        assert service_credit(availability) == credit

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            service_credit(1.5)


class TestPenaltyMultiplier:
    def test_no_drops_full_utility(self):
        assert penalty_multiplier(0.0) == 1.0

    def test_small_drop_within_first_bracket(self):
        assert penalty_multiplier(0.005) == 1.0

    def test_quarter_credit(self):
        assert penalty_multiplier(0.03) == 0.75

    def test_full_credit(self):
        assert penalty_multiplier(0.5) == 0.0

    @given(d=st.floats(min_value=0.0, max_value=1.0))
    def test_bounded(self, d):
        assert 0.0 <= penalty_multiplier(d) <= 1.0


class TestRelaxedMultiplier:
    def test_matches_step_at_bracket_boundaries(self):
        for availability, credit in [(0.99, 0.0), (0.95, 0.25), (0.90, 0.5), (0.0, 1.0)]:
            drop = 1.0 - availability
            assert penalty_multiplier_relaxed(drop) == pytest.approx(1.0 - credit)

    def test_interpolates_between_brackets(self):
        # availability 0.97 sits halfway between 0.95 and 0.99 brackets.
        value = penalty_multiplier_relaxed(0.03)
        assert 0.75 < value < 1.0

    @given(d=st.floats(min_value=0.0, max_value=1.0))
    def test_bounded(self, d):
        assert 0.0 <= penalty_multiplier_relaxed(d) <= 1.0

    @given(d=st.floats(min_value=0.0, max_value=0.98))
    def test_monotone_nonincreasing(self, d):
        assert penalty_multiplier_relaxed(d) >= penalty_multiplier_relaxed(d + 0.02) - 1e-12

    @given(d=st.floats(min_value=0.0, max_value=1.0))
    def test_relaxed_upper_bounds_step(self, d):
        # Relaxation is optimistic: it never penalizes more than the table.
        assert penalty_multiplier_relaxed(d) >= penalty_multiplier(d) - 1e-12


class TestEffectiveUtility:
    def test_eq2(self):
        assert effective_utility(0.8, 0.03) == pytest.approx(0.8 * 0.75)

    def test_relaxed_flag(self):
        assert effective_utility(1.0, 0.05) == pytest.approx(0.75)
        assert effective_utility(1.0, 0.05, relaxed=True) == pytest.approx(0.75)

    def test_invalid_utility(self):
        with pytest.raises(ValueError):
            effective_utility(1.2, 0.0)
