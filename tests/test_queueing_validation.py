"""Empirical validation of the analytic queueing approximations.

Each analytic formula used by Faro's latency estimation is checked against
an exact discrete-event simulation of the same queue.  Tolerances are
deliberately generous where the formula is an engineering approximation
(half-wait rule, Allen-Cunneen tail scaling) and tight where it is exact
(M/M/c).  These tests are the reproduction's answer to "why should the
optimizer trust latency_{M/D/c}?".
"""

import numpy as np
import pytest

from repro.queueing.ggc import ggc_mean_wait
from repro.queueing.mdc import mdc_mean_wait, mdc_wait_percentile
from repro.queueing.mmc import mmc_mean_wait, mmc_wait_percentile
from repro.queueing.simulate import (
    QueueSample,
    sample_ggc_queue,
    sample_mdc_queue,
    sample_mmc_queue,
    simulate_queue_waits,
)

N = 150_000


class TestSimulator:
    def test_single_customer_no_wait(self):
        waits = simulate_queue_waits(np.array([1.0]), np.array([5.0]), servers=1)
        assert waits[0] == 0.0

    def test_back_to_back_on_one_server(self):
        # Arrivals at t=0,0,0 with unit service on one server: waits 0,1,2.
        waits = simulate_queue_waits(np.zeros(3), np.ones(3), servers=1)
        np.testing.assert_allclose(waits, [0.0, 1.0, 2.0])

    def test_enough_servers_no_wait(self):
        waits = simulate_queue_waits(np.zeros(3), np.ones(3), servers=3)
        np.testing.assert_allclose(waits, 0.0)

    def test_fcfs_order(self):
        # Second arrival waits for the earliest-free server, not a specific one.
        inter = np.array([0.0, 0.0, 0.5])
        serv = np.array([1.0, 2.0, 1.0])
        waits = simulate_queue_waits(inter, serv, servers=2)
        assert waits[2] == pytest.approx(0.5)  # server 1 frees at t=1

    @pytest.mark.parametrize("inter,serv,servers", [
        (np.array([-1.0]), np.array([1.0]), 1),
        (np.array([1.0]), np.array([-1.0]), 1),
        (np.array([1.0]), np.array([1.0]), 0),
        (np.ones(2), np.ones(3), 1),
    ])
    def test_invalid(self, inter, serv, servers):
        with pytest.raises(ValueError):
            simulate_queue_waits(inter, serv, servers)

    def test_empty(self):
        assert simulate_queue_waits(np.array([]), np.array([]), 1).size == 0


class TestQueueSample:
    def test_percentile_bounds(self):
        sample = QueueSample(np.arange(100.0))
        assert sample.wait_percentile(0.5) == pytest.approx(49.5)
        with pytest.raises(ValueError):
            sample.wait_percentile(1.0)

    def test_warmup_drop(self):
        sample = QueueSample(np.arange(10.0))
        assert sample.drop_warmup(0.5).waits.size == 5
        with pytest.raises(ValueError):
            sample.drop_warmup(1.0)


class TestMMCExact:
    """M/M/c formulas are exact: empirical values must match closely."""

    @pytest.mark.parametrize("lam,mu,c", [(0.7, 1.0, 1), (3.0, 1.0, 4), (7.2, 1.0, 8)])
    def test_mean_wait(self, lam, mu, c):
        sample = sample_mmc_queue(lam, mu, c, n=N, seed=11)
        assert sample.mean_wait == pytest.approx(mmc_mean_wait(lam, mu, c), rel=0.08)

    def test_p99_wait(self):
        lam, mu, c = 3.4, 1.0, 4
        sample = sample_mmc_queue(lam, mu, c, n=N, seed=12)
        assert sample.wait_percentile(0.99) == pytest.approx(
            mmc_wait_percentile(0.99, lam, mu, c), rel=0.10
        )


class TestMDCHalfWaitRule:
    """The paper's M/D/c ~= 0.5 x M/M/c rule: good at mid/high load."""

    @pytest.mark.parametrize("rho,c", [(0.6, 2), (0.7, 4), (0.85, 8)])
    def test_mean_wait_within_20pct(self, rho, c):
        proc = 0.18
        lam = rho * c / proc
        sample = sample_mdc_queue(lam, proc, c, n=N, seed=21)
        approx = mdc_mean_wait(lam, proc, c)
        assert sample.mean_wait == pytest.approx(approx, rel=0.20)

    def test_refined_beats_plain_on_many_servers(self):
        # The Cosmetatos correction should reduce error at moderate rho
        # with several servers (where the plain rule underestimates).
        proc, c, rho = 0.18, 8, 0.7
        lam = rho * c / proc
        truth = sample_mdc_queue(lam, proc, c, n=N, seed=22).mean_wait
        plain = mdc_mean_wait(lam, proc, c, refined=False)
        refined = mdc_mean_wait(lam, proc, c, refined=True)
        assert abs(refined - truth) <= abs(plain - truth) + 1e-4

    def test_p99_conservative_or_close(self):
        # Tail scaling keeps the exponential shape; accept 25% relative
        # error at p99 -- the estimator feeds a *relative* optimizer.
        proc, c, rho = 0.18, 4, 0.8
        lam = rho * c / proc
        sample = sample_mdc_queue(lam, proc, c, n=N, seed=23)
        approx = mdc_wait_percentile(0.99, lam, proc, c)
        assert approx == pytest.approx(sample.wait_percentile(0.99), rel=0.25)

    def test_paper_worked_example_replicas(self):
        # §3.3: p=150 ms, lam=40/s, SLO 600 ms -> 8 replicas suffice at
        # p99.99 per the M/D/c model; the exact simulation must agree that
        # 8 replicas keep (virtually) all requests under 600 ms.
        proc, lam, replicas, slo = 0.150, 40.0, 8, 0.600
        sample = sample_mdc_queue(lam, proc, replicas, n=N, seed=24)
        latency_p9999 = sample.wait_percentile(0.9999) + proc
        assert latency_p9999 < slo


class TestAllenCunneen:
    """G/G/c mean-wait scaling across service variability."""

    @pytest.mark.parametrize("cs2", [0.25, 0.5, 2.0])
    def test_mgc_mean_wait_within_20pct(self, cs2):
        mean_service, c, rho = 0.2, 4, 0.75
        lam = rho * c / mean_service
        sample = sample_ggc_queue(lam, mean_service, cs2, c, n=N, seed=31)
        approx = ggc_mean_wait(lam, 1.0 / mean_service, c, ca2=1.0, cs2=cs2)
        assert sample.mean_wait == pytest.approx(approx, rel=0.20)

    def test_monotone_in_cs2_empirically(self):
        mean_service, c, rho = 0.2, 4, 0.75
        lam = rho * c / mean_service
        waits = [
            sample_ggc_queue(lam, mean_service, cs2, c, n=N, seed=32).mean_wait
            for cs2 in (0.25, 1.0, 2.0)
        ]
        assert waits[0] < waits[1] < waits[2]
