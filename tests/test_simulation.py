"""End-to-end request-level simulation tests."""

import numpy as np
import pytest

from repro.cluster.job import InferenceJobSpec
from repro.cluster.kubernetes import ResourceQuota
from repro.cluster.models import RESNET34, ModelProfile
from repro.core.utility import SLO
from repro.policy import AutoscalePolicy, ScalingDecision
from repro.sim.simulation import Simulation, SimulationConfig


class StaticPolicy(AutoscalePolicy):
    """Pins every job at a fixed replica count."""

    name = "Static"
    tick_interval = 10.0

    def __init__(self, replicas: dict[str, int]):
        self._replicas = replicas
        self._applied = False

    def reset(self):
        self._applied = False

    def tick(self, now, observations):
        if self._applied:
            return None
        self._applied = True
        return ScalingDecision(replicas=dict(self._replicas))


def run_static(trace_rpm, replicas, minutes=10, proc=0.18, seed=0, **config_kwargs):
    model = ModelProfile(name="m", proc_time=proc, proc_jitter=0.0)
    job = InferenceJobSpec.with_default_slo("svc", model)
    traces = {"svc": np.full(minutes, float(trace_rpm))}
    config = SimulationConfig(
        duration_minutes=minutes,
        seed=seed,
        cold_start_range=(0.0, 0.0),
        **config_kwargs,
    )
    sim = Simulation(
        [job],
        traces,
        StaticPolicy({"svc": replicas}),
        ResourceQuota.of_replicas(max(replicas, 1)),
        config=config,
        initial_replicas={"svc": replicas},
    )
    return sim.run()


class TestStaticRuns:
    def test_overprovisioned_no_violations(self):
        result = run_static(trace_rpm=120, replicas=4)
        svc = result.jobs["svc"]
        assert svc.slo_violation_rate < 0.01
        assert result.avg_lost_cluster_utility < 0.05

    def test_underprovisioned_violates(self):
        # 600 rpm = 10 req/s needs ~2.5 replicas at 180 ms: one replica drowns.
        result = run_static(trace_rpm=600, replicas=1)
        svc = result.jobs["svc"]
        assert svc.slo_violation_rate > 0.5
        assert svc.drops.sum() > 0  # tail drops at the queue threshold

    def test_arrival_counts_match_trace(self):
        result = run_static(trace_rpm=300, replicas=4, minutes=20)
        total = result.jobs["svc"].total_arrivals
        assert total == pytest.approx(300 * 20, rel=0.1)

    def test_rate_scale(self):
        full = run_static(trace_rpm=300, replicas=4, minutes=10)
        half = run_static(trace_rpm=300, replicas=4, minutes=10, rate_scale=0.5)
        assert half.jobs["svc"].total_arrivals < full.jobs["svc"].total_arrivals

    def test_deterministic_given_seed(self):
        a = run_static(trace_rpm=200, replicas=2, seed=5)
        b = run_static(trace_rpm=200, replicas=2, seed=5)
        assert np.array_equal(a.jobs["svc"].arrivals, b.jobs["svc"].arrivals)
        assert np.array_equal(a.jobs["svc"].violations, b.jobs["svc"].violations)

    def test_conservation_served_plus_dropped(self):
        result = run_static(trace_rpm=600, replicas=1)
        svc = result.jobs["svc"]
        # Every arrival is either served (finite latency) or dropped.
        assert svc.drops.sum() <= svc.arrivals.sum()
        assert svc.violations.sum() <= svc.arrivals.sum()


class TestSimulationConstruction:
    def test_missing_trace_rejected(self):
        job = InferenceJobSpec.with_default_slo("svc", RESNET34)
        with pytest.raises(ValueError):
            Simulation([job], {}, StaticPolicy({}), ResourceQuota.of_replicas(2))

    def test_duration_clipped_to_trace(self):
        job = InferenceJobSpec.with_default_slo("svc", RESNET34)
        sim = Simulation(
            [job],
            {"svc": np.full(5, 60.0)},
            StaticPolicy({"svc": 1}),
            ResourceQuota.of_replicas(2),
            config=SimulationConfig(duration_minutes=100),
        )
        assert sim.duration_minutes == 5

    def test_replica_log_in_result(self):
        result = run_static(trace_rpm=100, replicas=3, minutes=5)
        assert np.all(result.jobs["svc"].replicas == 3)


class ScaleUpOncePolicy(AutoscalePolicy):
    """Scales from 1 to 4 replicas at t=120s (tests cold-start dynamics)."""

    name = "ScaleUpOnce"
    tick_interval = 10.0

    def __init__(self):
        self.scaled = False

    def reset(self):
        self.scaled = False

    def tick(self, now, observations):
        if not self.scaled and now >= 120.0:
            self.scaled = True
            return ScalingDecision(replicas={"svc": 4})
        return None


class TestColdStart:
    def test_cold_start_delays_relief(self):
        model = ModelProfile(name="m", proc_time=0.18, proc_jitter=0.0)
        job = InferenceJobSpec.with_default_slo("svc", model)
        traces = {"svc": np.full(8, 900.0)}  # 15 req/s needs ~4 replicas

        def violations_with_cold_start(cold):
            sim = Simulation(
                [job],
                traces,
                ScaleUpOncePolicy(),
                ResourceQuota.of_replicas(4),
                config=SimulationConfig(
                    duration_minutes=8, seed=3, cold_start_range=(cold, cold)
                ),
            )
            result = sim.run()
            return result.jobs["svc"].violations.sum()

        assert violations_with_cold_start(120.0) > violations_with_cold_start(0.0)
