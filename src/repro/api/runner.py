"""The unified run engine: one code path from spec to results.

:func:`run` drives the whole pipeline -- scenario construction (trace
generation), policy construction through the registry (including predictor
training), and multi-trial simulation -- and returns a :class:`RunReport`.
The legacy ``repro.experiments.runner.run_trials``/``compare_policies``
entry points are thin shims over the same :func:`execute_trials` core, so
spec-driven runs and legacy calls with equal settings produce bit-identical
results (same seeds -> same summary statistics).

Telemetry: pass ``progress=callback`` to receive :class:`RunEvent` values
at scenario/policy/trial boundaries (the CLI uses this for live output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.registry import get_registry
from repro.api.spec import ExperimentSpec, PolicySpec
from repro.cluster.kubernetes import ResourceQuota
from repro.experiments.scenarios import Scenario
from repro.sim.analytic import FlowSimulation
from repro.sim.recorder import SimulationResult
from repro.sim.simulation import Simulation, SimulationConfig

__all__ = [
    "RunEvent",
    "ProgressCallback",
    "TrialStats",
    "RunReport",
    "execute_trials",
    "run_policy",
    "run",
]


@dataclass(frozen=True)
class RunEvent:
    """One progress/telemetry event emitted by the run engine.

    ``stage`` is one of ``scenario-start``, ``policy-start``,
    ``trial-start``, ``trial-end``, ``policy-end``, ``scenario-end``,
    ``run-end``.
    """

    stage: str
    scenario: str | None = None
    policy: str | None = None
    trial: int | None = None
    trials: int | None = None
    detail: str = ""


ProgressCallback = Callable[[RunEvent], None]


def _emit(progress: ProgressCallback | None, event: RunEvent) -> None:
    if progress is not None:
        progress(event)


@dataclass
class TrialStats:
    """Mean/SD of the headline metrics over trials for one policy."""

    policy: str
    lost_utility_mean: float
    lost_utility_sd: float
    lost_effective_mean: float
    lost_effective_sd: float
    violation_rate_mean: float
    violation_rate_sd: float
    results: list[SimulationResult] = field(default_factory=list)

    @classmethod
    def from_results(cls, policy: str, results: list[SimulationResult]) -> "TrialStats":
        lost = np.array([r.avg_lost_cluster_utility for r in results])
        lost_eff = np.array([r.avg_lost_effective_utility for r in results])
        viol = np.array([r.cluster_slo_violation_rate for r in results])
        return cls(
            policy=policy,
            lost_utility_mean=float(lost.mean()),
            lost_utility_sd=float(lost.std()),
            lost_effective_mean=float(lost_eff.mean()),
            lost_effective_sd=float(lost_eff.std()),
            violation_rate_mean=float(viol.mean()),
            violation_rate_sd=float(viol.std()),
            results=results,
        )

    def to_summary_dict(self) -> dict[str, float]:
        """Headline metrics only (JSON-safe; drops the raw results)."""
        return {
            "policy": self.policy,
            "lost_utility_mean": self.lost_utility_mean,
            "lost_utility_sd": self.lost_utility_sd,
            "lost_effective_mean": self.lost_effective_mean,
            "lost_effective_sd": self.lost_effective_sd,
            "violation_rate_mean": self.violation_rate_mean,
            "violation_rate_sd": self.violation_rate_sd,
        }


def execute_trials(
    scenario: Scenario,
    policy_label: str,
    policy_factory: Callable[[Scenario, int], Any],
    *,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    sim_overrides: Mapping[str, Any] | None = None,
    progress: ProgressCallback | None = None,
) -> TrialStats:
    """Run one policy for several trials and aggregate its metrics.

    This is the single trial loop every entry point shares.  Trial ``t``
    uses seed ``seed + 1000 * t`` for both policy construction and the
    simulator, so any two routes into this function with equal arguments
    produce identical results.
    """
    if simulator not in ("request", "flow"):
        raise ValueError(f"unknown simulator {simulator!r}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    results = []
    for trial in range(trials):
        trial_seed = seed + 1000 * trial
        _emit(
            progress,
            RunEvent(
                stage="trial-start",
                scenario=scenario.name,
                policy=policy_label,
                trial=trial,
                trials=trials,
            ),
        )
        policy = policy_factory(scenario, trial_seed)
        config = SimulationConfig(
            duration_minutes=scenario.duration_minutes,
            rate_scale=scenario.rate_scale,
            seed=trial_seed,
            **dict(sim_overrides or {}),
        )
        quota = ResourceQuota.of_replicas(scenario.total_replicas)
        sim_cls = Simulation if simulator == "request" else FlowSimulation
        simulation = sim_cls(
            scenario.jobs,
            scenario.eval_traces,
            policy,
            quota,
            config=config,
            history_prefix=scenario.history_prefix or None,
        )
        result = simulation.run()
        result.policy_name = getattr(policy, "name", policy_label)
        results.append(result)
        _emit(
            progress,
            RunEvent(
                stage="trial-end",
                scenario=scenario.name,
                policy=policy_label,
                trial=trial,
                trials=trials,
                detail=f"lost_utility={result.avg_lost_cluster_utility:.3f}",
            ),
        )
    return TrialStats.from_results(policy_label, results)


def run_policy(
    scenario: Scenario,
    policy: PolicySpec | str,
    *,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: Any = None,
    sim_overrides: Mapping[str, Any] | None = None,
    progress: ProgressCallback | None = None,
) -> TrialStats:
    """Run one registered policy (by spec or name) on a built scenario.

    ``predictor_profile`` is an experiment-level default: it is injected
    into the policy's options only when the policy's config type has a
    ``predictor_profile`` field and the spec does not already set one.
    """
    if isinstance(policy, str):
        policy = PolicySpec(name=policy)
    registry = get_registry()
    info = registry.get(policy.name)
    options = dict(policy.options)
    if (
        predictor_profile is not None
        and info.config_type is not None
        and "predictor_profile" in {f_name for f_name, _ in info.option_fields()}
        and options.get("predictor_profile") is None
    ):
        options["predictor_profile"] = predictor_profile
    config = registry.parse_options(policy.name, options)

    def factory(sc: Scenario, trial_seed: int):
        return info.builder(sc, trial_seed, config)

    return execute_trials(
        scenario,
        policy.display_label,
        factory,
        trials=trials,
        simulator=simulator,
        seed=seed,
        sim_overrides=sim_overrides,
        progress=progress,
    )


def _validate_spec(spec: ExperimentSpec) -> None:
    """Resolve every name/option in ``spec`` before any simulation runs.

    A typo'd policy name or option must fail in milliseconds, not after
    earlier scenarios have burned hours of simulation.  (Duplicate built
    scenario *names* can only be detected at build time and stay checked
    in the run loop.)
    """
    from repro.api.scenarios import get_scenario_registry

    registry = get_registry()
    for policy in spec.policies:
        registry.parse_options(policy.name, policy.options)
    scenario_registry = get_scenario_registry()
    for scenario_spec in spec.scenarios:
        info = scenario_registry.get(scenario_spec.kind)
        unknown = set(scenario_spec.params) - set(info.param_names())
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for scenario kind "
                f"{info.name!r}; accepted: {sorted(info.param_names())}"
            )


@dataclass
class RunReport:
    """All results of one :func:`run`: per-scenario, per-policy stats.

    ``stats`` maps scenario name -> policy label -> :class:`TrialStats`,
    in spec order.
    """

    spec: ExperimentSpec
    stats: dict[str, dict[str, TrialStats]] = field(default_factory=dict)

    def get(self, scenario: str, policy: str) -> TrialStats:
        try:
            return self.stats[scenario][policy]
        except KeyError:
            raise KeyError(
                f"no stats for scenario {scenario!r} / policy {policy!r}; "
                f"have scenarios {list(self.stats)}"
            ) from None

    def scenario_names(self) -> tuple[str, ...]:
        return tuple(self.stats)

    def policy_labels(self) -> tuple[str, ...]:
        return tuple(p.display_label for p in self.spec.policies)

    def best_policy(self, scenario: str) -> str:
        """Policy label with the lowest mean lost cluster utility."""
        per_policy = self.stats[scenario]
        return min(per_policy, key=lambda p: per_policy[p].lost_utility_mean)

    def single_result(self) -> SimulationResult:
        """The lone SimulationResult of a 1-scenario/1-policy/1-trial run."""
        if (
            len(self.stats) != 1
            or len(next(iter(self.stats.values()))) != 1
            or self.spec.trials != 1
        ):
            raise ValueError(
                "single_result() needs exactly one scenario, policy, and trial"
            )
        return next(iter(next(iter(self.stats.values())).values())).results[0]

    def summary_rows(self) -> list[list]:
        """Table rows: scenario, policy, lost utility (mean/sd), violations."""
        rows = []
        for scenario, per_policy in self.stats.items():
            for label, st in per_policy.items():
                rows.append(
                    [
                        scenario,
                        label,
                        f"{st.lost_utility_mean:.3f}",
                        f"{st.lost_utility_sd:.3f}",
                        f"{st.violation_rate_mean:.4f}",
                    ]
                )
        return rows

    def describe(self) -> str:
        """Human-readable summary table of the whole run."""
        from repro.experiments.report import format_table

        return format_table(
            ["scenario", "policy", "lost utility", "sd", "violation rate"],
            self.summary_rows(),
            title=f"Experiment {self.spec.name!r} "
            f"({self.spec.trials} trial(s), {self.spec.simulator} simulator)",
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe report: the spec plus summary statistics per cell."""
        return {
            "spec": self.spec.to_dict(),
            "stats": {
                scenario: {
                    label: st.to_summary_dict() for label, st in per_policy.items()
                }
                for scenario, per_policy in self.stats.items()
            },
        }


def run(
    spec: ExperimentSpec | str | Path,
    progress: ProgressCallback | None = None,
) -> RunReport:
    """Run a whole experiment spec and return its :class:`RunReport`.

    ``spec`` may be an :class:`ExperimentSpec` or a path to a JSON/YAML
    spec file.  Scenarios run in spec order; within a scenario, policies
    run in spec order, each for ``spec.trials`` trials.
    """
    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.from_file(spec)
    _validate_spec(spec)
    report = RunReport(spec=spec)
    for scenario_spec in spec.scenarios:
        scenario = scenario_spec.build()
        _emit(
            progress,
            RunEvent(
                stage="scenario-start",
                scenario=scenario.name,
                detail=f"{len(scenario.jobs)} jobs, "
                f"{scenario.total_replicas} replicas, "
                f"{scenario.duration_minutes} minutes",
            ),
        )
        if scenario.name in report.stats:
            raise ValueError(
                f"duplicate scenario name {scenario.name!r}; set ScenarioSpec.name "
                "to disambiguate repeated kinds"
            )
        per_policy: dict[str, TrialStats] = {}
        for policy_spec in spec.policies:
            label = policy_spec.display_label
            _emit(
                progress,
                RunEvent(stage="policy-start", scenario=scenario.name, policy=label),
            )
            stats = run_policy(
                scenario,
                policy_spec,
                trials=spec.trials,
                simulator=spec.simulator,
                seed=spec.seed,
                predictor_profile=spec.predictor_profile,
                sim_overrides=spec.sim_overrides,
                progress=progress,
            )
            per_policy[label] = stats
            _emit(
                progress,
                RunEvent(
                    stage="policy-end",
                    scenario=scenario.name,
                    policy=label,
                    detail=f"lost_utility={stats.lost_utility_mean:.3f} "
                    f"violations={stats.violation_rate_mean:.4f}",
                ),
            )
        report.stats[scenario.name] = per_policy
        _emit(progress, RunEvent(stage="scenario-end", scenario=scenario.name))
    _emit(progress, RunEvent(stage="run-end", detail=f"{len(report.stats)} scenario(s)"))
    return report
