"""Per-job utility function tests (paper §3.1, Fig. 4a)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.utility import SLO, inverse_utility, step_utility, utility_from_slo


class TestStepUtility:
    def test_met(self):
        assert step_utility(0.5, 0.72) == 1.0

    def test_met_exactly(self):
        assert step_utility(0.72, 0.72) == 1.0

    def test_violated(self):
        assert step_utility(0.73, 0.72) == 0.0

    def test_infinite_latency(self):
        assert step_utility(math.inf, 0.72) == 0.0

    def test_invalid_slo(self):
        with pytest.raises(ValueError):
            step_utility(0.1, 0.0)

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            step_utility(-0.1, 1.0)


class TestInverseUtility:
    def test_met_is_one(self):
        assert inverse_utility(0.3, 0.72) == 1.0

    def test_zero_latency(self):
        assert inverse_utility(0.0, 0.72) == 1.0

    def test_violated_is_ratio(self):
        assert inverse_utility(1.44, 0.72) == pytest.approx(0.5)

    def test_alpha_sharpens(self):
        # Larger alpha pushes the relaxed utility toward the step function.
        soft = inverse_utility(1.0, 0.72, alpha=1.0)
        sharp = inverse_utility(1.0, 0.72, alpha=100.0)
        assert sharp < soft
        assert sharp == pytest.approx(step_utility(1.0, 0.72), abs=1e-10)

    def test_infinite_latency_zero(self):
        assert inverse_utility(math.inf, 0.72) == 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            inverse_utility(0.5, 0.72, alpha=0.0)

    @given(
        latency=st.floats(min_value=0.0, max_value=1e6),
        slo=st.floats(min_value=1e-6, max_value=1e3),
        alpha=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_bounded_in_unit_interval(self, latency, slo, alpha):
        value = inverse_utility(latency, slo, alpha=alpha)
        assert 0.0 <= value <= 1.0

    @given(
        slo=st.floats(min_value=0.01, max_value=10.0),
        alpha=st.floats(min_value=0.5, max_value=10.0),
    )
    def test_monotone_nonincreasing_in_latency(self, slo, alpha):
        latencies = [slo * f for f in (0.5, 1.0, 1.5, 2.0, 4.0)]
        values = [inverse_utility(l, slo, alpha=alpha) for l in latencies]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @given(
        latency=st.floats(min_value=0.0, max_value=100.0),
        slo=st.floats(min_value=0.01, max_value=10.0),
    )
    def test_relaxed_upper_bounds_step(self, latency, slo):
        # The relaxation never reports lower utility than the step function.
        assert inverse_utility(latency, slo) >= step_utility(latency, slo)


class TestSLO:
    def test_quantile(self):
        assert SLO(0.72, 99).quantile == pytest.approx(0.99)

    def test_default_percentile(self):
        assert SLO(0.5).percentile == 99.0

    @pytest.mark.parametrize("target,percentile", [(0, 99), (-1, 99), (1, 0), (1, 101)])
    def test_validation(self, target, percentile):
        with pytest.raises(ValueError):
            SLO(target, percentile)


class TestUtilityFromSLO:
    def test_step_mode(self):
        assert utility_from_slo(1.0, SLO(0.72), alpha=None) == 0.0

    def test_inverse_mode(self):
        assert utility_from_slo(1.44, SLO(0.72), alpha=1.0) == pytest.approx(0.5)
