"""Pass ``rng-batching``: per-request scalar RNG draws inside hot loops.

The vectorized request path exists because drawing one random number per
request is the dominant cost of the scalar simulator: a loop body calling
``Generator.random()`` or ``Generator.normal()`` once per iteration pays
numpy's per-call overhead thousands of times where a single pre-drawn
batch (``rng.random(n)`` / ``rng.normal(mu, sigma, n)``) would pay it
once -- and, on PCG64, consume the *identical* stream, so batching is a
pure win whenever the number of draws is known up front.

This pass flags scalar draws (no ``size`` argument) through a
``Generator``-named receiver inside ``for``/``while`` bodies of the
simulation hot-path packages (``modules`` option).  It is advisory by
design: draws whose *count* depends on earlier outcomes (accept/reject
chains, event-driven thinning) cannot be batched without changing the
pinned stream -- grandfather those in ``tools/lint_baseline.json`` with a
justification, or suppress inline with
``# repro: allow(rng-batching) -- reason``.

Receiver matching is by name (``rng``, ``_rng``, ``self._rng``, ...): the
linter has no type information, and the repo's convention of threading
explicit generators under these names (enforced socially, checked by the
``determinism`` pass) makes the name a reliable proxy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding, ModuleContext
from repro.analysis.registry import register_pass

__all__ = ["RngBatchingOptions", "check_rng_batching"]

PASS_ID = "rng-batching"

#: Generator method -> positional index of its ``size`` argument.  A call
#: with fewer positional arguments and no ``size=`` keyword draws a single
#: scalar sample.
_SIZE_POSITION = {
    "random": 0,
    "normal": 2,
    "standard_normal": 0,
}


@dataclass(frozen=True)
class RngBatchingOptions:
    """Where and what the batching hint applies to."""

    #: Dotted module prefixes forming the request hot path: per-draw numpy
    #: overhead here multiplies by the request count.
    modules: tuple[str, ...] = ("repro.sim", "repro.cluster")

    #: Receiver names treated as ``numpy.random.Generator`` instances
    #: (matched against the last name before the method: ``rng.normal``,
    #: ``self._rng.random``, ...).
    receivers: tuple[str, ...] = ("rng", "_rng")


def _receiver_name(node: ast.AST) -> str | None:
    """``self._rng`` -> "_rng"; ``rng`` -> "rng"; None for other shapes."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_scalar_draw(call: ast.Call, method: str) -> bool:
    size_position = _SIZE_POSITION[method]
    if len(call.args) > size_position:
        return False
    return all(kw.arg != "size" for kw in call.keywords)


def check_rng_batching(
    context: ModuleContext, options: RngBatchingOptions | None
) -> list[Finding]:
    options = options or RngBatchingOptions()
    if not context.in_modules(options.modules):
        return []

    findings: list[Finding] = []
    flagged: set[int] = set()
    for loop in ast.walk(context.tree):
        if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
            continue
        # Only the repeated body draws per iteration; the iterable and the
        # while-condition are evaluated per iteration too, so take the
        # whole loop node and exclude nothing -- a draw in the condition
        # is just as scalar.
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call) or id(node) in flagged:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            method = func.attr
            if method not in _SIZE_POSITION:
                continue
            if _receiver_name(func.value) not in options.receivers:
                continue
            if not _is_scalar_draw(node, method):
                continue
            flagged.add(id(node))
            findings.append(
                context.finding(
                    PASS_ID,
                    node,
                    f"{_receiver_name(func.value)}.{method}() draws one "
                    "sample per loop iteration in a hot path; pre-draw a "
                    f"batch ({_receiver_name(func.value)}.{method}(..., n)) "
                    "outside the loop -- on PCG64 a batch consumes the "
                    "identical stream -- or justify why the draw count is "
                    "outcome-dependent",
                )
            )
    return findings


register_pass(
    PASS_ID,
    description=(
        "Scalar Generator.random()/normal() draws inside loops in the "
        "simulation hot-path packages; batch draws are stream-identical "
        "and amortize numpy call overhead."
    ),
    config_type=RngBatchingOptions,
)(check_rng_batching)
