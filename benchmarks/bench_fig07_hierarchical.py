"""Fig. 7: hierarchical optimization -- solve time and objective quality.

Paper shape: grouping (G = 3/5/10) speeds solving by large factors at high
job counts (up to ~64x at 200 jobs) while keeping the normalized objective
within a few percent of the flat (G = 1-per-job) solution; at small job
counts aggregation can slightly degrade the objective.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.hierarchical import solve_hierarchical
from repro.core.objectives import make_objective
from repro.core.optimizer import ClusterCapacity, OptimizationJob
from repro.core.utility import SLO
from repro.experiments.report import format_table

JOB_COUNTS = (50, 100, 200)
GROUPS = (1, 5, 10)


def make_jobs(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        OptimizationJob(
            name=f"j{i}",
            proc_time=0.18,
            slo=SLO(0.72),
            rates=(float(rng.uniform(2.0, 12.0)),),
        )
        for i in range(count)
    ]


def run_grid():
    outcomes = {}
    for count in JOB_COUNTS:
        jobs = make_jobs(count)
        capacity = ClusterCapacity.of_replicas(3 * count)
        for groups in GROUPS:
            effective = count if groups == 1 else groups  # G=1 = flat solve
            result = solve_hierarchical(
                jobs,
                capacity,
                make_objective("sum"),
                groups=effective,
                maxiter=300,
                refine_moves=0,  # time the pure grouped solve (paper Fig. 7a)
                seed=0,
            )
            outcomes[(count, groups)] = (
                result.allocation.solve_time,
                result.allocation.objective_value / count,
            )
    return outcomes


def test_fig07_hierarchical(benchmark):
    outcomes = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for (count, groups), (seconds, normalized) in sorted(outcomes.items()):
        rows.append(
            (f"{count} jobs, G={groups}", "", f"t={seconds:.2f}s obj={normalized:.3f}")
        )
    speedup_200 = outcomes[(200, 1)][0] / max(outcomes[(200, 10)][0], 1e-9)
    rows.append(("speedup G=10 vs G=1 at 200 jobs", "~64x", f"{speedup_200:.0f}x"))
    text = format_table(
        ["configuration", "paper", "measured"],
        rows,
        title="== Fig. 7: hierarchical optimization ==",
    )
    write_result("fig07_hierarchical", text)

    # Grouping speeds up solving substantially at scale...
    assert speedup_200 > 5.0
    # ...while the normalized objective stays within a few percent.
    for count in JOB_COUNTS:
        flat = outcomes[(count, 1)][1]
        grouped = outcomes[(count, 10)][1]
        assert grouped >= flat - 0.1
