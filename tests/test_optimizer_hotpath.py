"""Hot-path invariants: batched evaluation, table cache, warm starts.

The contract under test (see the :mod:`repro.core.optimizer` docstring):

- ``evaluate_many(X, D)[i]`` is **bit-for-bit** equal to
  ``evaluate(X[i], D[i])`` across relaxed/precise formulations and drop
  objectives -- the scalar path is the one-row batched path, and batching
  or chunking candidates can never change a row's score.
- Utility tables are pure functions of their cache key, so a warm
  :class:`UtilityTableCache` yields bit-identical problems (and therefore
  identical allocations) to a cold one.
- Warm-started solves start from a *feasible* projection of the previous
  allocation and land on the same integer allocation as a cold start on a
  stable problem.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    UtilityTableCache,
    solve_allocation,
    warm_start_vector,
)
from repro.core.optimizer import _default_start, _round_allocation
from repro.core.utility import SLO
from repro.queueing.vectorized import erlang_c_at_rho, erlang_c_table

SLO_720 = SLO(target=0.72, percentile=99.0)


def job(name, rates, **kwargs):
    kwargs.setdefault("proc_time", 0.18)
    kwargs.setdefault("slo", SLO_720)
    return OptimizationJob(name=name, rates=tuple(rates), **kwargs)


def build_problem(objective_name, relaxed=True, alpha=1.0, coldstart=False, **kwargs):
    jobs = [
        job("a", (12.0, 20.0)),
        job("b", (35.0,), priority=2.0),
        job(
            "c",
            (8.0, 9.0, 30.0),
            current_replicas=2 if coldstart else None,
            coldstart_weight=0.4 if coldstart else 0.0,
        ),
        job("d", (0.0,)),
    ]
    return AllocationProblem(
        jobs,
        ClusterCapacity.of_replicas(24),
        make_objective(objective_name),
        relaxed=relaxed,
        alpha=alpha,
        table_cache=UtilityTableCache(),
        **kwargs,
    )


replica_matrices = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=4, max_size=4),
    min_size=1,
    max_size=6,
)
drop_matrices = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=0.6), min_size=4, max_size=4),
    min_size=6,
    max_size=6,
)


class TestEvaluateManyParity:
    @pytest.mark.parametrize("objective_name", ["sum", "fair", "fairsum"])
    @pytest.mark.parametrize(
        "relaxed,alpha", [(True, 1.0), (False, None), (True, None)]
    )
    @settings(max_examples=15, deadline=None)
    @given(matrix=replica_matrices)
    def test_bitwise_parity_no_drops(self, objective_name, relaxed, alpha, matrix):
        problem = build_problem(objective_name, relaxed=relaxed, alpha=alpha)
        X = np.asarray(matrix)
        batched = problem.evaluate_many(X)
        for i in range(X.shape[0]):
            assert batched[i] == problem.evaluate(X[i])

    @pytest.mark.parametrize("objective_name", ["penaltysum", "penaltyfairsum"])
    @pytest.mark.parametrize("relaxed", [True, False])
    @settings(max_examples=10, deadline=None)
    @given(matrix=replica_matrices, drops=drop_matrices)
    def test_bitwise_parity_with_drops(self, objective_name, relaxed, matrix, drops):
        problem = build_problem(objective_name, relaxed=relaxed, alpha=1.0 if relaxed else None)
        X = np.asarray(matrix)
        D = np.asarray(drops)[: X.shape[0]]
        batched = problem.evaluate_many(X, D)
        for i in range(X.shape[0]):
            assert batched[i] == problem.evaluate(X[i], D[i])

    def test_parity_with_coldstart_blending(self):
        problem = build_problem("sum", coldstart=True)
        X = np.array([[1.0, 2.5, 7.0, 1.0], [4.0, 4.0, 4.0, 4.0], [10.0, 1.0, 2.0, 3.0]])
        batched = problem.evaluate_many(X)
        for i in range(X.shape[0]):
            assert batched[i] == problem.evaluate(X[i])

    def test_scalar_path_matches_per_job_formulation(self):
        # The delegated scalar path must still equal the definition: the
        # objective applied to per-job (effective) utilities.
        for name in ("sum", "fairsum", "penaltysum"):
            problem = build_problem(name)
            replicas = np.array([3.0, 5.0, 2.0, 1.0])
            drops = np.array([0.0, 0.1, 0.3, 0.0])
            utilities = [
                problem.job_utility(i, replicas[i], drops[i])
                for i in range(problem.num_jobs)
            ]
            if problem.objective.uses_drops:
                from repro.core.penalty import penalty_multiplier_relaxed

                utilities = [
                    u * penalty_multiplier_relaxed(d)
                    for u, d in zip(utilities, drops)
                ]
            expected = problem.objective.evaluate(utilities, problem._priorities)
            assert problem.evaluate(replicas, drops) == pytest.approx(expected, abs=1e-12)

    def test_chunking_does_not_change_rows(self):
        problem = build_problem("fairsum")
        rng = np.random.default_rng(7)
        X = rng.uniform(0.0, 20.0, size=(5000, 4))  # crosses the chunk boundary
        batched = problem.evaluate_many(X)
        spot = [0, 2047, 2048, 4999]
        for i in spot:
            assert batched[i] == problem.evaluate(X[i])


class TestUtilityTableCache:
    def test_warm_cache_is_bit_identical(self):
        jobs = [job("a", (12.0, 20.0)), job("b", (35.0,))]
        capacity = ClusterCapacity.of_replicas(16)
        cache = UtilityTableCache()
        cold = AllocationProblem(jobs, capacity, make_objective("sum"), table_cache=cache)
        assert cache.stats()["misses"] == 2 and cache.stats()["hits"] == 0
        warm = AllocationProblem(jobs, capacity, make_objective("sum"), table_cache=cache)
        assert cache.stats()["hits"] == 2
        for t_cold, t_warm in zip(cold._tables, warm._tables):
            assert t_cold is t_warm  # shared, not just equal
        X = np.array([[3.0, 5.0], [1.5, 9.0]])
        np.testing.assert_array_equal(cold.evaluate_many(X), warm.evaluate_many(X))

    def test_warm_vs_cold_allocation_identical(self):
        jobs = [job("a", (12.0, 20.0)), job("b", (35.0,)), job("c", (5.0,))]
        capacity = ClusterCapacity.of_replicas(18)
        shared = UtilityTableCache()
        results = []
        for _ in range(2):  # second build hits the cache
            problem = AllocationProblem(
                jobs, capacity, make_objective("fairsum"), table_cache=shared
            )
            results.append(solve_allocation(problem, method="cobyla"))
        fresh = AllocationProblem(
            jobs, capacity, make_objective("fairsum"), table_cache=UtilityTableCache()
        )
        results.append(solve_allocation(fresh, method="cobyla"))
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].replicas, other.replicas)
            assert results[0].objective_value == other.objective_value

    def test_key_ignores_name_priority_and_minimums(self):
        cache = UtilityTableCache()
        a = job("a", (12.0,), priority=1.0)
        b = job("b", (12.0,), priority=5.0, min_replicas=1)
        AllocationProblem([a], ClusterCapacity.of_replicas(8), make_objective("sum"), table_cache=cache)
        AllocationProblem([b], ClusterCapacity.of_replicas(8), make_objective("sum"), table_cache=cache)
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)

    def test_key_distinguishes_formulations(self):
        cache = UtilityTableCache()
        j = job("a", (12.0,))
        cap = ClusterCapacity.of_replicas(8)
        AllocationProblem([j], cap, make_objective("sum"), table_cache=cache)
        AllocationProblem([j], cap, make_objective("sum"), relaxed=False, alpha=None, table_cache=cache)
        AllocationProblem([j], cap, make_objective("penaltysum"), table_cache=cache)
        assert cache.stats()["misses"] == 3

    def test_maxsize_zero_disables_storage(self):
        cache = UtilityTableCache(maxsize=0)
        j = job("a", (12.0,))
        cap = ClusterCapacity.of_replicas(8)
        AllocationProblem([j], cap, make_objective("sum"), table_cache=cache)
        AllocationProblem([j], cap, make_objective("sum"), table_cache=cache)
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (0, 2, 0)

    def test_lru_eviction(self):
        cache = UtilityTableCache(maxsize=1)
        cap = ClusterCapacity.of_replicas(8)
        AllocationProblem([job("a", (12.0,))], cap, make_objective("sum"), table_cache=cache)
        AllocationProblem([job("b", (13.0,))], cap, make_objective("sum"), table_cache=cache)
        AllocationProblem([job("a", (12.0,))], cap, make_objective("sum"), table_cache=cache)
        assert len(cache) == 1
        assert cache.stats()["hits"] == 0  # each insert evicted the other

    def test_admit_overwrite_releases_displaced_bytes(self):
        # Historical bug: overwriting a key left the displaced table's bytes
        # in _bytes, so the accounting drifted upward by one table per
        # overwrite and eventually triggered premature LRU eviction.
        cache = UtilityTableCache()
        key = ("k",)
        big = np.zeros((64, 4))
        small = np.zeros((8, 4))
        cache._admit(key, big)
        cache._admit(key, small)
        assert len(cache) == 1
        assert cache.stats()["bytes"] == small.nbytes

    def test_load_with_duplicate_keys_keeps_bytes_exact(self, tmp_path):
        # load() re-admits entries in file order; a file with duplicate keys
        # (absorb/load races can produce one) exercises the overwrite path
        # end-to-end: last entry wins and _bytes equals the live entries.
        import pickle

        t1 = np.arange(32, dtype=float).reshape(8, 4)
        t2 = np.arange(8, dtype=float).reshape(2, 4)
        key = ("dup",)
        payload = {
            "version": UtilityTableCache._PICKLE_VERSION,
            "entries": [(key, t1), (key, t2)],
        }
        path = tmp_path / "dup.pkl"
        path.write_bytes(pickle.dumps(payload))
        cache = UtilityTableCache.load(path)
        assert len(cache) == 1
        assert cache.stats()["bytes"] == sum(
            t.nbytes for t in cache._entries.values()
        )
        np.testing.assert_array_equal(cache._entries[key], t2)


class TestCachePersistence:
    def _primed_cache(self):
        cache = UtilityTableCache()
        cap = ClusterCapacity.of_replicas(16)
        AllocationProblem(
            [job("a", (12.0, 20.0)), job("b", (35.0,))],
            cap,
            make_objective("sum"),
            table_cache=cache,
        )
        AllocationProblem(
            [job("c", (5.0,))], cap, make_objective("fairsum"), table_cache=cache
        )
        return cache

    def test_save_load_roundtrip_hits(self, tmp_path):
        cache = self._primed_cache()
        path = tmp_path / "tables.pkl"
        cache.save(path)
        loaded = UtilityTableCache.load(path)
        assert len(loaded) == len(cache)
        assert loaded.stats()["bytes"] == cache.stats()["bytes"]
        # Re-building the same problems against the loaded cache is pure
        # hits, and the tables are bit-for-bit the saved ones.
        cap = ClusterCapacity.of_replicas(16)
        jobs = [job("a", (12.0, 20.0)), job("b", (35.0,))]
        cold = AllocationProblem(
            jobs, cap, make_objective("sum"), table_cache=UtilityTableCache()
        )
        warm = AllocationProblem(jobs, cap, make_objective("sum"), table_cache=loaded)
        assert loaded.stats()["hits"] == 2 and loaded.stats()["misses"] == 0
        for t_cold, t_warm in zip(cold._tables, warm._tables):
            np.testing.assert_array_equal(t_cold, t_warm)

    def test_cross_process_warmup(self, tmp_path):
        # Same contract a fresh process sees: save in one cache, solve from
        # the loaded one, allocations identical to a cold solve.
        cache = self._primed_cache()
        path = tmp_path / "tables.pkl"
        cache.save(path)
        loaded = UtilityTableCache.load(path)
        jobs = [job("a", (12.0, 20.0)), job("b", (35.0,))]
        cap = ClusterCapacity.of_replicas(16)
        cold = solve_allocation(
            AllocationProblem(
                jobs, cap, make_objective("sum"), table_cache=UtilityTableCache(maxsize=0)
            ),
            method="cobyla",
        )
        warm = solve_allocation(
            AllocationProblem(jobs, cap, make_objective("sum"), table_cache=loaded),
            method="cobyla",
        )
        np.testing.assert_array_equal(cold.replicas, warm.replicas)
        assert cold.objective_value == warm.objective_value

    def test_load_respects_budget(self, tmp_path):
        cache = self._primed_cache()
        path = tmp_path / "tables.pkl"
        cache.save(path)
        assert len(UtilityTableCache.load(path, maxsize=1)) == 1
        assert len(UtilityTableCache.load(path, max_bytes=0)) == 0

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.pkl"
        import pickle

        path.write_bytes(pickle.dumps({"not": "a cache"}))
        with pytest.raises(ValueError):
            UtilityTableCache.load(path)

    def test_loaded_tables_are_readonly(self, tmp_path):
        cache = self._primed_cache()
        path = tmp_path / "tables.pkl"
        cache.save(path)
        loaded = UtilityTableCache.load(path)
        table = next(iter(loaded._entries.values()))
        with pytest.raises(ValueError):
            table[0] = 123.0


class TestMergeSave:
    """Write-back persistence: many writers, one shared cache file."""

    def _cache_with(self, *keys):
        cache = UtilityTableCache()
        for i, key in enumerate(keys):
            table = np.arange(8, dtype=float).reshape(2, 4) + i
            table.setflags(write=False)
            cache._admit((key,), table)
        return cache

    def test_merge_save_creates_missing_file(self, tmp_path):
        path = tmp_path / "tables.pkl"
        assert self._cache_with("a", "b").merge_save(path) == 2
        assert len(UtilityTableCache.load(path)) == 2

    def test_merge_save_merges_instead_of_clobbering(self, tmp_path):
        # The concurrent-save regression: plain save() from two workers
        # loses the first writer's tables; merge_save must keep the union.
        path = tmp_path / "tables.pkl"
        self._cache_with("a", "b").merge_save(path)
        self._cache_with("b", "c").merge_save(path)
        merged = UtilityTableCache.load(path)
        assert sorted(key[0] for key in merged._entries) == ["a", "b", "c"]

    def test_concurrent_merge_saves_lose_nothing(self, tmp_path):
        # Eight threads race merge_save on one file with disjoint entries;
        # the flock + read-merge-replace protocol must preserve all of
        # them, whatever the interleaving.
        import threading

        path = tmp_path / "tables.pkl"
        errors = []

        def writer(index):
            try:
                self._cache_with(f"w{index}-a", f"w{index}-b").merge_save(path)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = UtilityTableCache.load(path)
        assert len(merged) == 16
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_existing_file_is_replaced(self, tmp_path):
        path = tmp_path / "tables.pkl"
        path.write_bytes(b"\x80\x05 truncated garbage")
        assert self._cache_with("a").merge_save(path) == 1
        assert len(UtilityTableCache.load(path)) == 1

    def test_sweep_write_back_persists_worker_tables(self, tmp_path):
        # End-to-end through the sharded executor: a sweep with
        # cache_write_back leaves a loadable cache file whose tables warm
        # the next run, without perturbing the report.
        from repro import api

        spec = api.ExperimentSpec.compare(
            "wb",
            [
                api.ScenarioSpec(
                    kind="paper",
                    params={
                        "size": 8,
                        "num_jobs": 2,
                        "duration_minutes": 8,
                        "days": 2,
                        "rate_hi": 300.0,
                    },
                    name="tiny-wb",
                )
            ],
            # The faro policy builds utility tables (baselines never touch
            # the cache, so write-back would be empty).
            ["fairshare", "faro-fairsum"],
            trials=2,
            simulator="flow",
            predictor_profile={"epochs": 1, "max_windows": 64},
        )
        cache_path = tmp_path / "tables.pkl"
        report = api.run_parallel(
            spec, workers=2, cache_path=cache_path, cache_write_back=True
        )
        assert not report.failures
        assert cache_path.exists()
        warmed = UtilityTableCache.load(cache_path)
        assert len(warmed) > 0
        import json

        again = api.run_parallel(
            spec, workers=2, cache_path=cache_path, cache_write_back=True
        )
        assert json.dumps(again.to_dict()) == json.dumps(report.to_dict())

    def test_write_back_requires_cache_path(self):
        from repro import api

        spec = api.ExperimentSpec.compare(
            "wb-bad",
            [api.ScenarioSpec(kind="paper", params={"size": 8, "num_jobs": 2})],
            ["fairshare"],
        )
        with pytest.raises(ValueError, match="cache_path"):
            api.run_parallel(spec, workers=1, cache_write_back=True)


class TestWarmStart:
    def test_warm_start_vector_is_feasible(self):
        problem = build_problem("sum")
        cold = solve_allocation(problem, method="cobyla")
        x0 = warm_start_vector(problem, cold)
        assert problem.is_feasible(x0)

    def test_warm_start_projects_oversized_previous_allocation(self):
        # Previous cycle ran on a bigger cluster; its allocation must be
        # projected into the new, tighter capacity.
        jobs = [job("a", (20.0,)), job("b", (20.0,))]
        big = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(40), make_objective("sum"),
            table_cache=UtilityTableCache(),
        )
        prev = solve_allocation(big, method="greedy")
        small = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(10), make_objective("sum"),
            table_cache=UtilityTableCache(),
        )
        x0 = warm_start_vector(small, prev)
        assert small.is_feasible(x0)
        assert small.cpu_usage(x0) <= small.capacity.cpus + 1e-9

    def test_warm_start_job_count_mismatch_raises(self):
        problem = build_problem("sum")
        other = AllocationProblem(
            [job("x", (5.0,))], ClusterCapacity.of_replicas(4), make_objective("sum"),
            table_cache=UtilityTableCache(),
        )
        prev = solve_allocation(other, method="greedy")
        with pytest.raises(ValueError):
            warm_start_vector(problem, prev)

    def test_warm_start_drop_count_mismatch_raises(self):
        # Historical bug: a drop-length mismatch silently produced a
        # malformed solver vector while the replica path raised.  Both
        # mismatches now fail loudly with the same contract.
        from dataclasses import replace

        problem = build_problem("penaltysum")
        good = solve_allocation(problem, method="greedy")
        bad_drops = replace(good, drops=np.zeros(problem.num_jobs + 1))
        with pytest.raises(ValueError, match="drop rates"):
            warm_start_vector(problem, bad_drops)
        bad_replicas = replace(
            good, replicas=np.ones(problem.num_jobs + 1, dtype=int)
        )
        with pytest.raises(ValueError, match="jobs"):
            warm_start_vector(problem, bad_replicas)

    def test_warm_start_parity_with_cold_start(self):
        # On a stable problem (fixed seed), solving again from the previous
        # allocation must land on the same integer allocation.
        problem = build_problem("sum")
        cold = solve_allocation(problem, method="cobyla", seed=0)
        warm = solve_allocation(problem, method="cobyla", x0=cold, seed=0)
        np.testing.assert_array_equal(cold.replicas, warm.replicas)
        np.testing.assert_array_equal(cold.drops, warm.drops)
        assert warm.objective_value == pytest.approx(cold.objective_value, abs=1e-9)

    def test_warm_start_parity_with_drops(self):
        problem = build_problem("penaltysum")
        cold = solve_allocation(problem, method="cobyla", seed=0)
        warm = solve_allocation(problem, method="cobyla", x0=cold, seed=0)
        assert warm.objective_value == pytest.approx(cold.objective_value, abs=1e-9)
        assert problem.is_feasible(warm.replicas)


class TestDefaultStartRegression:
    def test_tight_capacity_heterogeneous_cpu(self):
        # Historical bug: scaling into capacity then re-flooring at
        # min_replicas pushed CPU usage back above capacity.  Five jobs with
        # min_replicas=1 and cpu_per_replica=3 under 16 CPUs: the fair share
        # is > 1, scaling pulls everyone below 1.07, and flooring at the
        # minimum used to land at 5 * 3 = 15 < 16 only by luck of these
        # numbers -- with 4 CPUs per replica it overshot (5 * 4 = 20 > 16).
        jobs = [
            job(f"j{i}", (10.0,), cpu_per_replica=4.0, min_replicas=1)
            for i in range(4)
        ] + [job("light", (1.0,), cpu_per_replica=0.5)]
        problem = AllocationProblem(
            jobs, ClusterCapacity(cpus=17.0, mem=100.0), make_objective("sum"),
            table_cache=UtilityTableCache(),
        )
        x0 = _default_start(problem)
        assert problem.cpu_usage(x0) <= problem.capacity.cpus + 1e-9
        for j, x in zip(problem.jobs, x0):
            assert x >= j.min_replicas - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        cpus=st.lists(st.floats(min_value=0.25, max_value=6.0), min_size=2, max_size=6),
        slack=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_default_start_always_feasible(self, cpus, slack):
        jobs = [
            job(f"j{i}", (10.0,), cpu_per_replica=c, min_replicas=1)
            for i, c in enumerate(cpus)
        ]
        capacity = ClusterCapacity(cpus=sum(cpus) + slack, mem=1000.0)
        problem = AllocationProblem(
            jobs, capacity, make_objective("sum"), table_cache=UtilityTableCache()
        )
        x0 = _default_start(problem)
        assert problem.is_feasible(x0)

    def test_solvers_get_feasible_start_with_drops(self):
        jobs = [job(f"j{i}", (30.0,), cpu_per_replica=2.5) for i in range(3)]
        problem = AllocationProblem(
            jobs, ClusterCapacity(cpus=9.0, mem=100.0), make_objective("penaltysum"),
            table_cache=UtilityTableCache(),
        )
        z0 = _default_start(problem)
        assert z0.shape[0] == 2 * problem.num_jobs
        assert problem.is_feasible(z0[: problem.num_jobs])


class TestRoundingRegression:
    def test_trim_prefers_expensive_replicas(self):
        # One 8-CPU job at 2 replicas and four 1-CPU jobs at 5 replicas
        # each: the floor uses 36 of 28 CPUs.  Footprint-aware trimming
        # drops the single expensive replica (frees the whole 8-CPU excess);
        # the old count-keyed trim would have evicted eight cheap replicas.
        jobs = [job("big", (30.0,), cpu_per_replica=8.0)] + [
            job(f"small{i}", (10.0,), cpu_per_replica=1.0) for i in range(4)
        ]
        problem = AllocationProblem(
            jobs, ClusterCapacity(cpus=28.0, mem=100.0), make_objective("sum"),
            table_cache=UtilityTableCache(),
        )
        rounded = _round_allocation(problem, np.array([2.0, 5.0, 5.0, 5.0, 5.0]))
        assert problem.is_feasible(rounded)
        assert rounded[0] == 1  # the one expensive replica was evicted
        assert all(r == 5 for r in rounded[1:])  # cheap replicas untouched

    def test_mem_infeasible_minimums_raise_at_construction(self):
        jobs = [job(f"j{i}", (5.0,), mem_per_replica=4.0, min_replicas=2) for i in range(3)]
        with pytest.raises(ValueError, match="memory"):
            AllocationProblem(
                jobs, ClusterCapacity(cpus=100.0, mem=10.0), make_objective("sum"),
                table_cache=UtilityTableCache(),
            )

    def test_rounded_solution_feasible_under_mem_pressure(self):
        jobs = [
            job("a", (25.0,), mem_per_replica=3.0),
            job("b", (25.0,), mem_per_replica=1.0),
        ]
        problem = AllocationProblem(
            jobs, ClusterCapacity(cpus=50.0, mem=12.0), make_objective("sum"),
            table_cache=UtilityTableCache(),
        )
        allocation = solve_allocation(problem, method="cobyla")
        assert problem.is_feasible(allocation.replicas)
        assert problem.mem_usage(allocation.replicas) <= 12.0 + 1e-9


class TestErlangPrefixCache:
    def test_prefix_slice_matches_direct_computation(self):
        rho = 0.93
        large = erlang_c_at_rho(rho, 64)
        small = erlang_c_at_rho(rho, 12)  # served by slicing the cached 64
        np.testing.assert_array_equal(small, large[:12])
        # And both match an uncached direct diagonal at the small size.
        table = erlang_c_table(rho * np.arange(1, 13, dtype=float), 12)
        direct = np.array([table[k - 1, k - 1] for k in range(1, 13)])
        np.testing.assert_array_equal(small, direct)

    def test_growth_preserves_prefix(self):
        rho = 0.87
        small = erlang_c_at_rho(rho, 6)
        large = erlang_c_at_rho(rho, 40)  # forces regrowth
        np.testing.assert_array_equal(small, large[:6])

    def test_returned_arrays_are_independent(self):
        a = erlang_c_at_rho(0.91, 8)
        a_copy = a.copy()
        a[:] = -1.0  # mutating the returned array must not poison the cache
        b = erlang_c_at_rho(0.91, 8)
        np.testing.assert_array_equal(b, a_copy)


class TestNfevAccounting:
    """``nfev`` vs ``post_nfev``: solver rows split from post-processing rows.

    Historical bug: rounding and drop refinement spent evaluation rows that
    were never reported anywhere, so ``nfev`` under-stated where planner
    time went (at 1000 jobs COBYLA's post-processing alone spends ~650k
    rows against 1200 solver rows).
    """

    def test_post_rows_split_out_of_solver_rows(self):
        problem = build_problem("penaltysum")
        a = solve_allocation(problem, method="cobyla", seed=0)
        assert a.nfev > 0
        # penaltysum always refines drops on the grid, so post rows are
        # guaranteed non-zero here.
        assert a.post_nfev > 0

    def test_greedy_phase1_rows_reported_as_nfev(self):
        problem = build_problem("sum")
        a = solve_allocation(problem, method="greedy")
        assert a.nfev > 0
        assert a.post_nfev >= 0


class TestMaxReplicasPerJob:
    def test_cap_bounds_tables_and_allocation(self):
        problem = build_problem("sum", max_replicas_per_job=3)
        assert int(problem.max_replicas.max()) <= 3
        for table in problem._tables:
            assert table.shape[0] <= 4  # rows 0..cap
        a = solve_allocation(problem, method="greedy")
        assert int(a.replicas.max()) <= 3

    def test_cap_respects_min_replicas(self):
        jobs = [job("a", (12.0,), min_replicas=5), job("b", (12.0,))]
        problem = AllocationProblem(
            jobs,
            ClusterCapacity.of_replicas(24),
            make_objective("sum"),
            table_cache=UtilityTableCache(),
            max_replicas_per_job=3,
        )
        # min_replicas wins over the cap, as it does over tight capacity.
        assert problem.max_replicas[0] == 5
        assert problem.max_replicas[1] == 3

    def test_cap_default_is_identity(self):
        capped = build_problem("sum", max_replicas_per_job=None)
        plain = build_problem("sum")
        np.testing.assert_array_equal(capped.max_replicas, plain.max_replicas)
        a = solve_allocation(plain, method="cobyla", seed=0)
        b = solve_allocation(capped, method="cobyla", seed=0)
        np.testing.assert_array_equal(a.replicas, b.replicas)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            build_problem("sum", max_replicas_per_job=0)
