"""Fig. 6: the two relaxation stages remove plateaus from per-job utility.

Left: step utility of the SLO -- a plateau everywhere except the jump.
Middle: inverse utility + hard M/D/c -- still flat in the unstable region.
Right: inverse utility + relaxed M/D/c -- strictly increasing in replicas
up to the optimum for every rho_max < 1.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.latency import MDCLatency, RelaxedMDCLatency
from repro.core.utility import inverse_utility, step_utility
from repro.experiments.report import format_table

LAM, PROC, SLO_T = 40.0, 0.15, 0.6  # the paper's worked example
REPLICAS = list(range(1, 11))


def curve(latency_model, utility):
    values = []
    for x in REPLICAS:
        latency = latency_model.estimate(0.99, LAM, PROC, x)
        values.append(utility(latency))
    return values


def count_plateau_steps(values) -> int:
    """Adjacent replica counts with identical utility below the maximum."""
    top = max(values)
    return sum(
        1
        for a, b in zip(values, values[1:])
        if abs(a - b) < 1e-12 and a < top - 1e-12
    )


def run_stages():
    step = curve(MDCLatency(), lambda l: step_utility(min(l, 1e18), SLO_T))
    middle = curve(MDCLatency(), lambda l: inverse_utility(l, SLO_T))
    right = curve(RelaxedMDCLatency(rho_max=0.95), lambda l: inverse_utility(l, SLO_T))
    return step, middle, right


def test_fig06_relaxation_stages(benchmark):
    step, middle, right = benchmark.pedantic(run_stages, rounds=1, iterations=1)
    rows = [
        ("plateau steps, step utility (left)", "many", count_plateau_steps(step)),
        ("plateau steps, inverse + hard M/D/c (middle)", "some", count_plateau_steps(middle)),
        ("plateau steps, inverse + relaxed M/D/c (right)", "0", count_plateau_steps(right)),
        ("relaxed curve strictly increasing to optimum", "yes",
         str(all(a < b + 1e-12 for a, b in zip(right, right[1:])))),
    ]
    text = format_table(
        ["metric", "paper", "measured"],
        rows,
        title="== Fig. 6: relaxation stages (1 job, x in [1,10]) ==",
    )
    write_result("fig06_relaxation", text)
    assert count_plateau_steps(step) > count_plateau_steps(right)
    assert count_plateau_steps(middle) > count_plateau_steps(right)
    assert count_plateau_steps(right) == 0
