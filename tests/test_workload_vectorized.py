"""Differential suite for the batched ``PoissonArrivals`` generator.

The batched implementation (numpy buffer, one searchsorted cut per take)
must consume the RNG bit stream *exactly* like the historical lazy
per-minute generator: every byte-identity digest in the repo rests on the
per-minute ``poisson`` / ``uniform`` draw order.  ``_ReferenceArrivals``
below is a faithful copy of the pre-vectorization implementation; the
tests pin stream identity against it across rate patterns, scales, and
consumption schedules, including the buffer-compaction path.
"""

from bisect import bisect_right

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.workload import PoissonArrivals


class _ReferenceArrivals:
    """The pre-vectorization lazy generator, verbatim (the RNG contract)."""

    def __init__(self, rates_per_min, rate_scale=1.0, seed=0, minute_seconds=60.0):
        self.rates = np.asarray(rates_per_min, dtype=float)
        self.rate_scale = rate_scale
        self.minute_seconds = minute_seconds
        self._rng = np.random.default_rng(seed)
        self._buffer: list[float] = []
        self._cursor = 0
        self._next_minute = 0
        self.generated = 0

    def _generate_minute(self) -> None:
        minute = self._next_minute
        rate = self.rates[minute] * self.rate_scale
        count = int(self._rng.poisson(rate)) if rate > 0 else 0
        start = minute * self.minute_seconds
        if count:
            times = np.sort(self._rng.uniform(start, start + self.minute_seconds, count))
            self._buffer.extend(times.tolist())
            self.generated += count
        self._next_minute += 1

    def take_until(self, end_time: float) -> list[float]:
        while (
            self._next_minute < self.rates.shape[0]
            and self._next_minute * self.minute_seconds < end_time
        ):
            self._generate_minute()
        buffer = self._buffer
        cursor = bisect_right(buffer, end_time, self._cursor)
        taken = buffer[self._cursor : cursor]
        self._cursor = cursor
        if cursor > 4096:
            del buffer[:cursor]
            self._cursor = 0
        return taken


RATE_PATTERNS = {
    "steady": np.full(30, 120.0),
    "zeros": np.zeros(20),
    "sparse": np.array([0.0, 300.0, 0.0, 0.0, 50.0, 0.0, 800.0, 0.0] * 4),
    "ramp": np.linspace(0.0, 900.0, 25),
    "bursty": np.array([5.0, 5.0, 2000.0, 5.0, 5.0, 1500.0] * 5),
}


def _consume(stream, schedule):
    out = []
    for end_time in schedule:
        out.append(np.asarray(stream.take_until(end_time), dtype=float))
    return out


class TestStreamIdentity:
    @pytest.mark.parametrize("pattern", sorted(RATE_PATTERNS))
    @pytest.mark.parametrize("rate_scale", [1.0, 0.5, 0.0])
    def test_identical_to_reference_per_minute_takes(self, pattern, rate_scale):
        rates = RATE_PATTERNS[pattern]
        schedule = [60.0 * (m + 1) for m in range(rates.shape[0])]
        new = PoissonArrivals(rates, rate_scale=rate_scale, seed=7)
        ref = _ReferenceArrivals(rates, rate_scale=rate_scale, seed=7)
        for got, want in zip(_consume(new, schedule), _consume(ref, schedule)):
            np.testing.assert_array_equal(got, want)
        assert new.generated == ref.generated

    @pytest.mark.parametrize("pattern", sorted(RATE_PATTERNS))
    def test_identical_under_uneven_chunk_schedules(self, pattern):
        rates = RATE_PATTERNS[pattern]
        horizon = rates.shape[0] * 60.0
        # Deliberately awkward boundaries: sub-minute, multi-minute, exact
        # minute edges, and a final take past the end of the trace.
        schedule = [7.5, 60.0, 61.0, 200.0, 200.0, 433.3, horizon / 2, horizon + 90.0]
        new = PoissonArrivals(rates, seed=11)
        ref = _ReferenceArrivals(rates, seed=11)
        for got, want in zip(_consume(new, schedule), _consume(ref, schedule)):
            np.testing.assert_array_equal(got, want)

    def test_identical_rng_state_after_consumption(self):
        """Not just the same values: the same bit-stream position."""
        rates = RATE_PATTERNS["bursty"]
        new = PoissonArrivals(rates, seed=3)
        ref = _ReferenceArrivals(rates, seed=3)
        for end in (90.0, 300.0, 1800.0):
            new.take_until(end)
            ref.take_until(end)
        assert (
            new._rng.bit_generator.state == ref._rng.bit_generator.state
        )

    def test_compaction_path_is_transparent(self):
        """Crossing the 4096-arrival compaction threshold loses nothing."""
        rates = np.full(40, 9000.0)  # ~9k arrivals/minute
        new = PoissonArrivals(rates, seed=5)
        ref = _ReferenceArrivals(rates, seed=5)
        schedule = [60.0 * (m + 1) - 0.25 for m in range(40)] + [40 * 60.0]
        for got, want in zip(_consume(new, schedule), _consume(ref, schedule)):
            np.testing.assert_array_equal(got, want)
        assert new.generated == ref.generated > 4096

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        cuts=st.lists(
            st.floats(min_value=0.0, max_value=1300.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_for_arbitrary_monotone_schedules(self, seed, cuts):
        rates = np.array([0.0, 40.0, 500.0, 0.0, 120.0, 60.0, 0.0, 900.0, 30.0, 10.0] * 2)
        schedule = sorted(cuts)
        new = PoissonArrivals(rates, seed=seed)
        ref = _ReferenceArrivals(rates, seed=seed)
        for got, want in zip(_consume(new, schedule), _consume(ref, schedule)):
            np.testing.assert_array_equal(got, want)


class TestArrayTake:
    def test_take_until_array_matches_take_until(self):
        a = PoissonArrivals(np.full(5, 300.0), seed=9)
        b = PoissonArrivals(np.full(5, 300.0), seed=9)
        for end in (45.0, 120.0, 300.0):
            np.testing.assert_array_equal(
                a.take_until_array(end), np.asarray(b.take_until(end), dtype=float)
            )

    def test_take_until_array_returns_owned_data(self):
        """The returned array must survive later takes/compactions intact."""
        stream = PoissonArrivals(np.full(10, 6000.0), seed=2)
        first = stream.take_until_array(120.0)
        snapshot = first.copy()
        stream.take_until_array(600.0)  # forces generation + compaction
        np.testing.assert_array_equal(first, snapshot)

    def test_take_until_returns_python_list(self):
        taken = PoissonArrivals(np.full(2, 100.0), seed=1).take_until(120.0)
        assert isinstance(taken, list)
        assert all(isinstance(value, float) for value in taken)
