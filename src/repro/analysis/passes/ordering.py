"""Pass ``ordered-iteration``: no hash-ordered iteration on merge/output paths.

``RunReport.merge`` is associative and order-invariant, and the sharded
sweep executor is pinned byte-identical to serial execution -- invariants
that survive only if nothing on those paths iterates a collection whose
order is hash- or arrival-dependent.  Python ``set`` iteration is the
canonical offender: the order varies with insertion history and (for
str keys under hash randomization) across interpreter runs.

Within the configured module prefixes -- an over-approximation of "every
function reachable from ``SimHarness.run`` or ``RunReport.merge``", kept
honest by scoping to the packages those call graphs live in -- this pass
flags iteration over *syntactically set-valued* expressions:

- ``for x in some_set:`` / comprehension generators,
- materialization (``list(s)``, ``tuple(s)``, ``iter(s)``,
  ``enumerate(s)``, ``"".join(s)``, ``zip(s, ...)``, ``map(f, s)``),
- unpacking (``a, b = s``, ``f(*s)``),

where "set-valued" means a set literal/comprehension, a ``set(...)`` /
``frozenset(...)`` call, a set-algebra expression over one, a
``.union/.intersection/...`` method call on one, or a local name bound to
one of those.  Order-insensitive consumers (``sorted``, ``min``, ``max``,
``sum``, ``len``, ``any``, ``all``, membership tests) are the sanctioned
fixes and are not flagged.

``dict`` iteration is deliberately *not* flagged by default: dicts
iterate in insertion order, so nondeterminism can only sneak in through
how they were built -- which the set rules (and the determinism pass)
catch upstream.  ``flag_dict_views=True`` turns on strict mode for
audits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding, ModuleContext
from repro.analysis.registry import register_pass

__all__ = ["OrderedIterationOptions", "check_ordered_iteration"]

PASS_ID = "ordered-iteration"

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Consumers whose result order mirrors the iterable's order.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "zip", "map", "filter", "reversed"}
)
_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


@dataclass(frozen=True)
class OrderedIterationOptions:
    """Scope and strictness of the ordered-iteration rules."""

    #: Module prefixes over-approximating the SimHarness.run /
    #: RunReport.merge call graphs (shard merge + simulation output paths).
    modules: tuple[str, ...] = (
        "repro.sim",
        "repro.queueing",
        "repro.hetero",
        "repro.api",
        "repro.experiments",
    )
    #: Also flag iteration over dict views (strict audit mode).
    flag_dict_views: bool = False


class _SetValueTracker:
    """Per-scope map of names syntactically bound to set-valued expressions."""

    def __init__(self, flag_dict_views: bool) -> None:
        self.flag_dict_views = flag_dict_views
        self.set_names: set[str] = set()

    def is_set_valued(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _SET_CONSTRUCTORS
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self.is_set_valued(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra: either operand being a set makes the result one.
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_valued(node.body) or self.is_set_valued(node.orelse)
        return False

    def is_dict_view(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEW_METHODS
            and not node.args
            and not node.keywords
        )

    def observe_binding(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if self.is_set_valued(value):
            self.set_names.add(target.id)
        else:
            # Rebinding to a non-set expression clears the mark (lexical
            # order approximates flow order well enough for lint purposes).
            self.set_names.discard(target.id)


def _iter_scopes(tree: ast.Module):
    """Yield (scope node, statement list) for the module and each function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def check_ordered_iteration(
    context: ModuleContext, options: OrderedIterationOptions | None
) -> list[Finding]:
    options = options or OrderedIterationOptions()
    if not context.in_modules(options.modules):
        return []

    findings: list[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            context.finding(
                PASS_ID,
                node,
                f"{what} iterates in hash/arrival order on a merge/output "
                "path; wrap it in sorted(...) or keep an ordered structure",
            )
        )

    def check_iterable(tracker: _SetValueTracker, node: ast.AST, what: str) -> None:
        if tracker.is_set_valued(node):
            flag(node, what)
        elif tracker.flag_dict_views and tracker.is_dict_view(node):
            flag(node, what + " (dict view, strict mode)")

    for scope, body in _iter_scopes(context.tree):
        tracker = _SetValueTracker(options.flag_dict_views)
        # One linear walk in source order so name bindings are observed
        # before later uses; nested function bodies are handled by their
        # own scope entry (closures over outer set names are rare enough
        # that missing them beats double-reporting).
        nested: set[int] = set()
        for child in ast.walk(scope):
            if child is scope:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                nested.update(id(n) for n in ast.walk(child) if n is not child)
                continue
            if id(child) in nested:
                continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    tracker.observe_binding(target, child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                tracker.observe_binding(child.target, child.value)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                check_iterable(tracker, child.iter, "for-loop")
            elif isinstance(child, ast.comprehension):
                check_iterable(tracker, child.iter, "comprehension")
            elif isinstance(child, ast.Call):
                if (
                    isinstance(child.func, ast.Name)
                    and child.func.id in _ORDER_SENSITIVE_CALLS
                ):
                    for arg in child.args:
                        check_iterable(tracker, arg, f"{child.func.id}(...)")
                elif (
                    isinstance(child.func, ast.Attribute)
                    and child.func.attr == "join"
                    and child.args
                ):
                    check_iterable(tracker, child.args[0], "str.join(...)")
                for arg in child.args:
                    if isinstance(arg, ast.Starred):
                        check_iterable(tracker, arg.value, "*-unpacking")
            elif isinstance(child, ast.Assign) is False and isinstance(
                child, (ast.Tuple, ast.List)
            ):
                for element in child.elts:
                    if isinstance(element, ast.Starred):
                        check_iterable(tracker, element.value, "*-unpacking")
    return findings


register_pass(
    PASS_ID,
    description=(
        "Iteration over hash-ordered sets (and, in strict mode, dict "
        "views) in modules on the merge/output path."
    ),
    config_type=OrderedIterationOptions,
)(check_ordered_iteration)
