"""Design-knob sweep tests (repro.experiments.sweeps)."""

import pytest

from repro.experiments import paper_scenario
from repro.experiments.runner import TrialStats
from repro.experiments.sweeps import (
    SweepResult,
    sweep_cold_start,
    sweep_faro_config,
    sweep_predictor,
)


@pytest.fixture(scope="module")
def tiny_scenario():
    # 4 jobs on 14 replicas, 12 evaluation minutes: enough to exercise the
    # machinery without making the suite slow.
    return paper_scenario(size=14, num_jobs=4, duration_minutes=12, seed=0)


def fake_stats(lost: float) -> TrialStats:
    return TrialStats(
        policy="p",
        lost_utility_mean=lost,
        lost_utility_sd=0.0,
        lost_effective_mean=lost,
        lost_effective_sd=0.0,
        violation_rate_mean=lost / 10,
        violation_rate_sd=0.0,
    )


class TestSweepResult:
    def test_best_value(self):
        result = SweepResult(parameter="x")
        result.add(0.9, fake_stats(1.0))
        result.add(0.95, fake_stats(0.4))
        result.add(0.99, fake_stats(0.7))
        assert result.best_value() == 0.95

    def test_rows_shape(self):
        result = SweepResult(parameter="x")
        result.add("a", fake_stats(1.0))
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0][0] == "a"
        assert len(rows[0]) == 4

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            SweepResult(parameter="x").best_value()


class TestSweepFaroConfig:
    def test_rho_max_sweep_runs(self, tiny_scenario):
        result = sweep_faro_config(
            tiny_scenario, "rho_max", [0.9, 0.95], simulator="flow"
        )
        assert result.parameter == "rho_max"
        assert result.values == [0.9, 0.95]
        assert all(s.lost_utility_mean >= 0 for s in result.stats)

    def test_unknown_parameter_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            sweep_faro_config(tiny_scenario, "vibes", [1, 2])

    def test_empty_values_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            sweep_faro_config(tiny_scenario, "rho_max", [])

    def test_period_sweep_distinct_results(self, tiny_scenario):
        # A 1-minute period re-solves 12 times; a 12-minute period once.
        result = sweep_faro_config(
            tiny_scenario, "period", [60.0, 720.0], simulator="flow"
        )
        assert len(result.stats) == 2


class TestSweepColdStart:
    def test_runs_on_request_simulator(self, tiny_scenario):
        result = sweep_cold_start(tiny_scenario, [0.0, 60.0])
        assert result.parameter == "cold_start_seconds"
        assert len(result.stats) == 2

    def test_rejects_negative(self, tiny_scenario):
        with pytest.raises(ValueError):
            sweep_cold_start(tiny_scenario, [-1.0])

    def test_rejects_empty(self, tiny_scenario):
        with pytest.raises(ValueError):
            sweep_cold_start(tiny_scenario, [])


class TestSweepPredictor:
    def test_persistence_only(self, tiny_scenario):
        result = sweep_predictor(tiny_scenario, kinds=("persistence",))
        assert result.values == ["persistence"]

    def test_unknown_kind_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            sweep_predictor(tiny_scenario, kinds=("oracle",))

    def test_empty_kinds_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            sweep_predictor(tiny_scenario, kinds=())
