"""Experiment runner tests."""

import numpy as np
import pytest

from repro.experiments import paper_scenario
from repro.experiments.runner import TrialStats, run_trials
from repro.policy import AutoscalePolicy, ScalingDecision
from repro.sim.recorder import JobSeries, SimulationResult


def dummy_result(lost: float, policy: str = "p") -> SimulationResult:
    minutes = 4
    utility = np.full(minutes, 1.0 - lost)
    series = JobSeries(
        name="j",
        arrivals=np.full(minutes, 10, dtype=int),
        drops=np.zeros(minutes, dtype=int),
        violations=np.zeros(minutes, dtype=int),
        latency_p=np.zeros(minutes),
        utility=utility,
        effective_utility=utility.copy(),
        replicas=np.ones(minutes, dtype=int),
    )
    return SimulationResult(jobs={"j": series}, policy_name=policy)


class TestTrialStats:
    def test_mean_and_sd(self):
        stats = TrialStats.from_results("p", [dummy_result(0.2), dummy_result(0.4)])
        assert stats.lost_utility_mean == pytest.approx(0.3)
        assert stats.lost_utility_sd == pytest.approx(0.1)

    def test_single_trial_zero_sd(self):
        stats = TrialStats.from_results("p", [dummy_result(0.5)])
        assert stats.lost_utility_sd == 0.0


class FixedSharePolicy(AutoscalePolicy):
    name = "FixedShare"
    tick_interval = 30.0

    def __init__(self, share: int):
        self.share = share
        self._done = False

    def reset(self):
        self._done = False

    def tick(self, now, observations):
        if self._done:
            return None
        self._done = True
        return ScalingDecision(replicas={n: self.share for n in observations})


@pytest.fixture(scope="module")
def tiny():
    return paper_scenario(8, num_jobs=2, duration_minutes=8, days=2, rate_hi=400.0)


class TestRunTrials:
    def test_policy_factory_hook(self, tiny):
        stats = run_trials(
            tiny,
            "custom",
            trials=2,
            seed=0,
            policy_factory=lambda sc, seed: FixedSharePolicy(3),
        )
        assert len(stats.results) == 2
        assert stats.policy == "custom"
        assert 0.0 <= stats.violation_rate_mean <= 1.0

    def test_flow_simulator_selected(self, tiny):
        stats = run_trials(
            tiny,
            "custom",
            trials=1,
            simulator="flow",
            policy_factory=lambda sc, seed: FixedSharePolicy(3),
        )
        assert stats.results[0].metadata["simulator"] == "analytic-flow"

    def test_request_simulator_default(self, tiny):
        stats = run_trials(
            tiny,
            "custom",
            trials=1,
            policy_factory=lambda sc, seed: FixedSharePolicy(3),
        )
        assert stats.results[0].metadata["simulator"] == "request-level"

    def test_unknown_simulator(self, tiny):
        with pytest.raises(ValueError):
            run_trials(tiny, "fairshare", simulator="hardware")

    def test_trials_differ_by_seed(self, tiny):
        stats = run_trials(
            tiny,
            "custom",
            trials=2,
            policy_factory=lambda sc, seed: FixedSharePolicy(3),
        )
        a, b = stats.results
        assert not np.array_equal(a.jobs[tiny.job_names[0]].arrivals,
                                  b.jobs[tiny.job_names[0]].arrivals)

    def test_baseline_by_name(self, tiny):
        stats = run_trials(tiny, "fairshare", trials=1)
        assert stats.policy == "fairshare"
        result = stats.results[0]
        # FairShare splits 8 replicas over 2 jobs -> 4 each.
        for series in result.jobs.values():
            assert series.replicas[-1] == 4
