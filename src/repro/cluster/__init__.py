"""Simulated Ray Serve | Kubernetes cluster substrate (paper §5).

The paper deploys each ML inference job as its own Ray cluster (head pod
running a Router, worker pods each holding one Ray Serve replica) on top of
Kubernetes, with a resource quota capping the total replica count.  This
package reproduces that stack's *behaviour* for simulation:

- :mod:`repro.cluster.models` -- model profiles (ResNet18/34 processing
  times and per-replica resources).
- :mod:`repro.cluster.job` -- inference job specifications (model + SLO).
- :mod:`repro.cluster.router` -- the per-job Router: FIFO dispatch to
  replicas, tail-drop at a queue threshold (HTTP 503 semantics), explicit
  drop directives, replica cold starts, scaling.
- :mod:`repro.cluster.kubernetes` -- resource-quota admission control.
- :mod:`repro.cluster.metrics` -- the metrics collector feeding autoscalers
  (arrival rates, processing times, latency percentiles, violations).
- :mod:`repro.cluster.rayserve` -- the cluster facade tying it together.
- :mod:`repro.cluster.placement` -- replica-to-node placement (the K8s
  scheduler stand-in) with binpack/spread strategies.
- :mod:`repro.cluster.batching` -- adaptive request batching at the router
  (§7 orthogonal techniques).
"""

from repro.cluster.models import ModelProfile, RESNET18, RESNET34
from repro.cluster.job import InferenceJobSpec
from repro.cluster.router import JobRouter, RouterTotals
from repro.cluster.kubernetes import ResourceQuota
from repro.cluster.metrics import MetricsCollector, MinuteStats
from repro.cluster.rayserve import RayServeCluster
from repro.cluster.placement import Node, Placement, PlacementEngine, PodSpec
from repro.cluster.batching import (
    AdaptiveBatcher,
    BatchingJobRouter,
    BatchProfile,
    CompletedRequest,
)
from repro.cluster.telemetry import render_cluster_metrics, render_result_metrics

__all__ = [
    "ModelProfile",
    "RESNET18",
    "RESNET34",
    "InferenceJobSpec",
    "JobRouter",
    "RouterTotals",
    "ResourceQuota",
    "MetricsCollector",
    "MinuteStats",
    "RayServeCluster",
    "Node",
    "PodSpec",
    "Placement",
    "PlacementEngine",
    "BatchProfile",
    "CompletedRequest",
    "BatchingJobRouter",
    "AdaptiveBatcher",
    "render_cluster_metrics",
    "render_result_metrics",
]
