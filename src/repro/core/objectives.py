"""The family of cluster objective functions (paper §3.2).

Cluster administrators pick one objective; all are expressed here as values
to **maximize** over the vector of per-job (effective) utilities:

- ``sum``:             ``sum_i pi_i * U_i``                       (Faro-Sum)
- ``fair``:            ``-(max_i U_i - min_i U_i)``               (Faro-Fair)
- ``fairsum``:         ``sum_i pi_i U_i - gamma * (max - min)``   (Faro-FairSum)
- ``penaltysum``:      ``sum_i pi_i EU_i``                        (Faro-PenaltySum)
- ``penaltyfairsum``:  ``sum_i pi_i EU_i - gamma * (max - min)``  (Faro-PenaltyFairSum)

``pi_i`` is job priority (default 1), ``gamma`` weights fairness; the paper
recommends ``gamma = len(jobs)`` so both terms have comparable magnitude.
Penalty variants consume *effective* utilities (Eq. 2) and therefore also
optimize per-job drop rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ClusterObjective", "make_objective", "OBJECTIVE_NAMES"]

OBJECTIVE_NAMES = ("sum", "fair", "fairsum", "penaltysum", "penaltyfairsum")


@dataclass(frozen=True)
class ClusterObjective:
    """A concrete cluster objective.

    ``name`` is one of :data:`OBJECTIVE_NAMES`.  ``gamma`` is only meaningful
    for the fairness hybrids; ``None`` means "use the recommended value"
    (the job count) at evaluation time.
    """

    name: str
    gamma: float | None = None

    def __post_init__(self) -> None:
        if self.name not in OBJECTIVE_NAMES:
            raise ValueError(
                f"unknown objective {self.name!r}; expected one of {OBJECTIVE_NAMES}"
            )
        if self.gamma is not None and self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")

    @property
    def uses_drops(self) -> bool:
        """Whether this objective optimizes explicit request-drop rates."""
        return self.name in ("penaltysum", "penaltyfairsum")

    @property
    def uses_fairness(self) -> bool:
        return self.name in ("fair", "fairsum", "penaltyfairsum")

    def resolved_gamma(self, num_jobs: int) -> float:
        """Fairness weight, defaulting to the paper-recommended job count."""
        if self.gamma is not None:
            return self.gamma
        return float(num_jobs)

    def evaluate(
        self, utilities: Sequence[float], priorities: Sequence[float] | None = None
    ) -> float:
        """Score (to maximize) for a vector of per-job (effective) utilities.

        For penalty variants callers pass effective utilities
        ``EU_i = phi(d_i) * U_i``; for the others, plain utilities.
        """
        utilities = list(utilities)
        if not utilities:
            raise ValueError("utilities must be non-empty")
        if priorities is None:
            priorities = [1.0] * len(utilities)
        if len(priorities) != len(utilities):
            raise ValueError(
                f"got {len(priorities)} priorities for {len(utilities)} utilities"
            )
        weighted = sum(p * u for p, u in zip(priorities, utilities))
        spread = max(utilities) - min(utilities)
        if self.name == "sum" or self.name == "penaltysum":
            return weighted
        if self.name == "fair":
            return -spread
        # fairsum / penaltyfairsum
        return weighted - self.resolved_gamma(len(utilities)) * spread

    def evaluate_many(
        self,
        utilities: np.ndarray,
        priorities: np.ndarray | Sequence[float] | None = None,
    ) -> np.ndarray:
        """Batched :meth:`evaluate` over a ``(candidates, jobs)`` matrix.

        Row ``i`` of the result scores row ``i`` of ``utilities``; the
        reduction per row matches the scalar path (each row is reduced
        independently, so results do not depend on how rows are batched).
        """
        U = np.asarray(utilities, dtype=float)
        if U.ndim != 2 or U.shape[1] == 0:
            raise ValueError(f"utilities must be a non-empty 2-D matrix, got shape {U.shape}")
        if priorities is None:
            weighted = U.sum(axis=1)
        else:
            pr = np.asarray(priorities, dtype=float)
            if pr.shape[0] != U.shape[1]:
                raise ValueError(
                    f"got {pr.shape[0]} priorities for {U.shape[1]} utilities"
                )
            weighted = (U * pr).sum(axis=1)
        if self.name in ("sum", "penaltysum"):
            return weighted
        spread = U.max(axis=1) - U.min(axis=1)
        if self.name == "fair":
            return -spread
        return weighted - self.resolved_gamma(U.shape[1]) * spread

    @property
    def display_name(self) -> str:
        """Paper-style display name, e.g. ``Faro-FairSum``."""
        pretty = {
            "sum": "Faro-Sum",
            "fair": "Faro-Fair",
            "fairsum": "Faro-FairSum",
            "penaltysum": "Faro-PenaltySum",
            "penaltyfairsum": "Faro-PenaltyFairSum",
        }
        return pretty[self.name]


def make_objective(name: str, gamma: float | None = None) -> ClusterObjective:
    """Build a :class:`ClusterObjective`, accepting paper-style names too.

    Accepts ``"sum"`` / ``"Faro-Sum"`` / ``"faro-sum"`` interchangeably.
    """
    normalized = name.lower().replace("faro-", "").replace("_", "").replace("-", "")
    return ClusterObjective(name=normalized, gamma=gamma)
