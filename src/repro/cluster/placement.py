"""Replica-to-node placement: the Kubernetes scheduler stand-in.

Faro only decides *how many* replicas each job gets; placing them onto
physical/virtual machines is the Kubernetes scheduler's job (paper §1:
"Together they sit over the K8s scheduler, which schedules replicas to
physical/virtual machines").  This module provides that layer for the
simulated cluster:

- :class:`Node` -- one machine with vCPU/memory capacity (the paper's
  testbed: two 32-vCPU/64-GB VMs, or thirty-two 4-vCPU/8-GB VMs at scale).
- :class:`PlacementEngine` -- places/evicts pods under two standard
  strategies: ``binpack`` (fill the fullest feasible node first,
  Kubernetes' ``MostAllocated``) and ``spread`` (emptiest node first,
  ``LeastAllocated``).

The paper sizes worker pods to exactly one Ray Serve replica to "prevent
resource fragmentation"; :meth:`PlacementEngine.fragmentation` quantifies
that effect -- stranded capacity that is free in total but unusable for
the next pod -- which a test pins by comparing uniform and mixed pod sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

__all__ = ["Node", "PodSpec", "Placement", "PlacementEngine"]


@dataclass(frozen=True)
class PodSpec:
    """Resource request of one worker pod (default: paper's 1 vCPU / 1 GB)."""

    cpus: float = 1.0
    mem: float = 1.0

    def __post_init__(self) -> None:
        if self.cpus <= 0 or self.mem <= 0:
            raise ValueError(f"pod resources must be positive, got {self}")


@dataclass
class Node:
    """One schedulable machine."""

    name: str
    cpus: float
    mem: float
    cpus_used: float = 0.0
    mem_used: float = 0.0

    def __post_init__(self) -> None:
        if self.cpus <= 0 or self.mem <= 0:
            raise ValueError(f"node capacity must be positive, got {self}")

    def fits(self, pod: PodSpec) -> bool:
        eps = 1e-9
        return (
            self.cpus_used + pod.cpus <= self.cpus + eps
            and self.mem_used + pod.mem <= self.mem + eps
        )

    @property
    def cpu_free(self) -> float:
        return self.cpus - self.cpus_used

    @property
    def utilization(self) -> float:
        """CPU-dominant utilization in [0, 1] (ties broken by memory)."""
        return max(self.cpus_used / self.cpus, self.mem_used / self.mem)


@dataclass(frozen=True)
class Placement:
    """One placed pod: which job, which node, what size."""

    pod_id: int
    job: str
    node: str
    spec: PodSpec


class PlacementEngine:
    """Places and evicts pods across a fixed node pool.

    ``strategy`` is ``"binpack"`` (prefer the fullest node that fits,
    minimizing stranded capacity) or ``"spread"`` (prefer the emptiest
    node, minimizing blast radius of a node failure).
    """

    def __init__(self, nodes: list[Node], strategy: str = "binpack") -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        if strategy not in ("binpack", "spread"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.nodes = {node.name: node for node in nodes}
        self.strategy = strategy
        self._ids = count()
        self._placements: dict[int, Placement] = {}

    # ------------------------------------------------------------ queries

    @property
    def placements(self) -> list[Placement]:
        return list(self._placements.values())

    def pods_of(self, job: str) -> list[Placement]:
        return [p for p in self._placements.values() if p.job == job]

    def pods_on(self, node: str) -> list[Placement]:
        if node not in self.nodes:
            raise KeyError(f"unknown node {node!r}")
        return [p for p in self._placements.values() if p.node == node]

    def fragmentation(self, pod: PodSpec | None = None) -> float:
        """Stranded capacity: free vCPUs on nodes that cannot fit ``pod``.

        With the paper's uniform 1-vCPU pods this is (near) zero until the
        cluster is genuinely full; mixed pod sizes strand capacity much
        earlier -- the fragmentation §5 avoids by sizing worker pods to a
        single replica.
        """
        probe = pod or PodSpec()
        return sum(
            node.cpu_free for node in self.nodes.values() if not node.fits(probe)
        )

    # ------------------------------------------------------------ actions

    def _candidates(self, pod: PodSpec) -> list[Node]:
        feasible = [node for node in self.nodes.values() if node.fits(pod)]
        reverse = self.strategy == "binpack"  # fullest first
        return sorted(
            feasible, key=lambda n: (n.utilization, n.name), reverse=reverse
        )

    def place(self, job: str, pod: PodSpec | None = None) -> Placement | None:
        """Place one pod for ``job``; returns None when no node fits."""
        pod = pod or PodSpec()
        candidates = self._candidates(pod)
        if not candidates:
            return None
        node = candidates[0]
        node.cpus_used += pod.cpus
        node.mem_used += pod.mem
        placement = Placement(pod_id=next(self._ids), job=job, node=node.name, spec=pod)
        self._placements[placement.pod_id] = placement
        return placement

    def evict(self, pod_id: int) -> None:
        """Remove a placed pod, freeing its node resources."""
        placement = self._placements.pop(pod_id, None)
        if placement is None:
            raise KeyError(f"unknown pod id {pod_id}")
        node = self.nodes[placement.node]
        node.cpus_used -= placement.spec.cpus
        node.mem_used -= placement.spec.mem

    def scale_job(
        self, job: str, target: int, pod: PodSpec | None = None
    ) -> tuple[int, int]:
        """Place/evict pods until ``job`` runs ``target`` pods (best effort).

        Returns ``(placed, evicted)``.  Scale-downs evict from the
        least-utilized nodes first so binpacking stays tight.
        """
        if target < 0:
            raise ValueError(f"target must be >= 0, got {target}")
        pod = pod or PodSpec()
        current = self.pods_of(job)
        placed = evicted = 0
        while len(current) + placed - evicted < target:
            if self.place(job, pod) is None:
                break
            placed += 1
        if len(current) > target:
            victims = sorted(
                current, key=lambda p: self.nodes[p.node].utilization
            )[: len(current) - target]
            for victim in victims:
                self.evict(victim.pod_id)
                evicted += 1
        return placed, evicted
