"""Policy/scenario registry tests: catalog, typed options, conformance."""

from dataclasses import dataclass

import pytest

from repro import api
from repro.experiments.policies import ALL_BASELINES, ALL_FARO_VARIANTS, PredictorProfile
from repro.policy import AutoscalePolicy, JobObservation, ScalingDecision

TINY_PROFILE = PredictorProfile(epochs=1, max_windows=64)


@pytest.fixture(scope="module")
def tiny_scenario():
    return api.ScenarioSpec(
        kind="paper",
        params={"size": "HO", "num_jobs": 4, "duration_minutes": 10,
                "days": 2, "rate_hi": 300.0},
    ).build()


class TestCatalog:
    def test_all_legacy_names_resolve(self):
        registry = api.get_registry()
        for name in ALL_FARO_VARIANTS + ALL_BASELINES:
            assert name in registry
            assert registry.get(name).name == name

    def test_legacy_tuples_derive_from_registry(self):
        registry = api.get_registry()
        assert ALL_FARO_VARIANTS == registry.names(kind="faro")
        assert ALL_BASELINES == registry.names(kind="baseline")
        # Paper order is preserved by registration order.
        assert ALL_FARO_VARIANTS == (
            "faro-sum", "faro-fair", "faro-fairsum",
            "faro-penaltysum", "faro-penaltyfairsum",
        )
        assert ALL_BASELINES == ("fairshare", "oneshot", "aiad", "mark", "cilantro")

    def test_alias_and_case_insensitive(self):
        registry = api.get_registry()
        assert registry.get("faro").name == "faro-fairsum"
        assert registry.get("FairShare").name == "fairshare"

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            api.get_registry().get("chaos-monkey")

    def test_unknown_scenario_kind(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            api.get_scenario_registry().build("quantum", {})

    def test_scenario_param_validation(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            api.get_scenario_registry().build("paper", {"replica_count": 8})


class TestTypedOptions:
    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            api.get_registry().parse_options("fairshare", {"max_factor": 2.0})

    def test_unknown_faro_field_rejected(self, tiny_scenario):
        with pytest.raises(ValueError, match="FaroConfig"):
            api.get_registry().build(
                "faro-fairsum",
                tiny_scenario,
                options={"use_trained_predictor": False, "faro": {"warp_speed": 9}},
            )

    def test_bad_profile_rejected(self):
        from repro.api.builtin import coerce_predictor_profile

        with pytest.raises(ValueError, match="predictor profile"):
            coerce_predictor_profile("warp")
        with pytest.raises(ValueError, match="field"):
            coerce_predictor_profile({"epochz": 1})

    def test_profile_coercions_agree(self):
        from repro.api.builtin import coerce_predictor_profile

        assert coerce_predictor_profile("fast") == PredictorProfile.fast()
        assert coerce_predictor_profile({"epochs": 2}) == PredictorProfile(epochs=2)
        profile = PredictorProfile.paper()
        assert coerce_predictor_profile(profile) is profile

    def test_options_instance_passthrough(self, tiny_scenario):
        from repro.api.builtin import FairShareOptions

        policy = api.get_registry().build(
            "fairshare", tiny_scenario, options=FairShareOptions(min_replicas=2)
        )
        assert policy.min_replicas == 2


def _canned_observations(scenario, violating=True):
    """Observations resembling a loaded cluster (latency over SLO)."""
    obs = {}
    for job in scenario.jobs:
        latency = job.slo.target * (3.0 if violating else 0.5)
        obs[job.name] = JobObservation(
            job_name=job.name,
            arrival_rate=8.0,
            rate_history=(6.0, 7.0, 8.0, 8.0),
            mean_proc_time=job.model.proc_time,
            latency=latency,
            slo_violation_rate=0.5 if violating else 0.0,
            current_replicas=1,
            target_replicas=1,
            queue_length=4 if violating else 0,
        )
    return obs


class TestConformance:
    """Every registered policy builds from a spec and ticks sanely."""

    @pytest.mark.parametrize(
        "name", api.get_registry().names(kind="faro")
        + api.get_registry().names(kind="baseline")
        + api.get_registry().names(kind="controller"),
    )
    def test_builds_and_decides(self, name, tiny_scenario):
        options = {"predictor_profile": TINY_PROFILE}
        supported = {f for f, _ in api.get_registry().get(name).option_fields()}
        options = {k: v for k, v in options.items() if k in supported}
        policy = api.get_registry().build(name, tiny_scenario, seed=0, options=options)
        assert isinstance(policy, AutoscalePolicy)
        assert policy.tick_interval > 0

        decision = None
        now = 0.0
        while decision is None and now <= 600.0:
            decision = policy.tick(now, _canned_observations(tiny_scenario))
            now += policy.tick_interval
        assert decision is not None, f"{name} never produced a decision"
        assert isinstance(decision, ScalingDecision)
        job_names = set(tiny_scenario.job_names)
        assert set(decision.replicas) <= job_names
        assert set(decision.drop_rates) <= job_names
        for target in decision.replicas.values():
            assert isinstance(target, int) and target >= 0
        # reset() restores a reusable policy: ticking again must not raise.
        policy.reset()
        policy.tick(0.0, _canned_observations(tiny_scenario))


class TestPlugins:
    def test_register_build_unregister(self, tiny_scenario):
        registry = api.get_registry()

        @dataclass(frozen=True)
        class NoopOptions:
            replicas: int = 1

        @registry.register(
            "test-noop", kind="plugin", description="test", config_type=NoopOptions
        )
        def build_noop(scenario, seed, options):
            class Noop(AutoscalePolicy):
                name = "Noop"

                def tick(self, now, observations):
                    return ScalingDecision(
                        replicas={n: options.replicas for n in observations}
                    )

            return Noop()

        try:
            assert "test-noop" in registry
            assert "test-noop" in registry.names(kind="plugin")
            policy = registry.build(
                "test-noop", tiny_scenario, options={"replicas": 3}
            )
            decision = policy.tick(0.0, _canned_observations(tiny_scenario))
            assert set(decision.replicas.values()) == {3}
        finally:
            registry.unregister("test-noop")
        assert "test-noop" not in registry

    def test_duplicate_name_rejected(self):
        registry = api.get_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("fairshare")(lambda s, seed, o: None)

    def test_duplicate_alias_rejected(self):
        registry = api.get_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("brand-new", aliases=("faro",))(
                lambda s, seed, o: None
            )

    def test_non_dataclass_config_rejected(self):
        registry = api.get_registry()
        with pytest.raises(TypeError, match="dataclass"):
            registry.register("bad-config", config_type=dict)(
                lambda s, seed, o: None
            )
