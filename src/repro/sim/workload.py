"""Poisson request generation from arrival-rate traces.

The paper's load generator replays trace arrival counts as a Poisson
process (§6, following Swayam/DeepRecSys/INFaaS/MArk).  Each trace minute
with rate ``r`` requests/minute yields ``Poisson(r * rate_scale)`` arrivals
placed uniformly in the minute.  Generation is lazy (one minute at a time)
so day-long multi-job simulations stay memory-bounded.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

__all__ = ["PoissonArrivals"]


class PoissonArrivals:
    """Lazy per-minute Poisson arrival stream for one job."""

    def __init__(
        self,
        rates_per_min: np.ndarray,
        rate_scale: float = 1.0,
        seed: int = 0,
        minute_seconds: float = 60.0,
    ) -> None:
        if rate_scale < 0:
            raise ValueError(f"rate_scale must be >= 0, got {rate_scale}")
        if minute_seconds <= 0:
            raise ValueError(f"minute_seconds must be positive, got {minute_seconds}")
        self.rates = np.asarray(rates_per_min, dtype=float)
        if np.any(self.rates < 0):
            raise ValueError("trace rates must be non-negative")
        self.rate_scale = rate_scale
        self.minute_seconds = minute_seconds
        self._rng = np.random.default_rng(seed)
        self._buffer: list[float] = []
        self._cursor = 0
        self._next_minute = 0
        self.generated = 0

    @property
    def duration_seconds(self) -> float:
        return self.rates.shape[0] * self.minute_seconds

    def _generate_minute(self) -> None:
        minute = self._next_minute
        rate = self.rates[minute] * self.rate_scale
        count = int(self._rng.poisson(rate)) if rate > 0 else 0
        start = minute * self.minute_seconds
        if count:
            times = np.sort(self._rng.uniform(start, start + self.minute_seconds, count))
            self._buffer.extend(times.tolist())
            self.generated += count
        self._next_minute += 1

    def take_until(self, end_time: float) -> list[float]:
        """All arrival times <= end_time not yet taken, in order."""
        while (
            self._next_minute < self.rates.shape[0]
            and self._next_minute * self.minute_seconds < end_time
        ):
            self._generate_minute()
        buffer = self._buffer
        # The buffer is globally sorted (minutes generated in order, times
        # sorted within each minute), so the cut point is one bisection.
        cursor = bisect_right(buffer, end_time, self._cursor)
        taken = buffer[self._cursor : cursor]
        self._cursor = cursor
        if cursor > 4096:
            # Compact the consumed prefix to bound memory.
            del buffer[:cursor]
            self._cursor = 0
        return taken

    def take_until_array(self, end_time: float) -> np.ndarray:
        """Like :meth:`take_until`, as a float array (batch-offer input)."""
        return np.asarray(self.take_until(end_time), dtype=float)
