"""Faro reproduction: SLO-aware autoscaling for multi-tenant ML inference.

Reimplementation of "A House United Within Itself: SLO-Awareness for
On-Premises Containerized ML Inference Clusters via Faro" (EuroSys '25),
including every substrate the paper depends on: queueing models, a
from-scratch autodiff engine and probabilistic N-HiTS forecaster, synthetic
Azure/Twitter trace generators, a matched Ray Serve | Kubernetes cluster
simulator, baseline autoscalers, and a full experiment harness.

Quickstart::

    from repro import quickstart_faro
    result = quickstart_faro(num_jobs=4, total_replicas=12, minutes=30)
    print(result.summary())

See ``examples/`` for richer scenarios and ``benchmarks/`` for the
per-table/per-figure reproduction harness.
"""

from repro.core.autoscaler import FaroAutoscaler, FaroConfig, JobSpec, PersistencePredictor
from repro.core.decentralized import DecentralizedFaro, RebalanceConfig
from repro.core.hybrid import HybridAutoscaler, ReactiveConfig
from repro.core.objectives import ClusterObjective, make_objective
from repro.core.optimizer import (
    Allocation,
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    solve_allocation,
)
from repro.core.utility import SLO, inverse_utility, step_utility
from repro.admission import AdmissionController, AdmissionRequest
from repro.cluster import (
    RESNET18,
    RESNET34,
    InferenceJobSpec,
    ModelProfile,
    RayServeCluster,
    ResourceQuota,
)
from repro.policy import AutoscalePolicy, JobObservation, ScalingDecision
from repro.sim import FlowSimulation, Simulation, SimulationConfig, SimulationResult
from repro.sim.faults import FaultConfig

__version__ = "1.0.0"

__all__ = [
    "SLO",
    "step_utility",
    "inverse_utility",
    "ClusterObjective",
    "make_objective",
    "OptimizationJob",
    "AllocationProblem",
    "ClusterCapacity",
    "Allocation",
    "solve_allocation",
    "FaroAutoscaler",
    "FaroConfig",
    "JobSpec",
    "PersistencePredictor",
    "HybridAutoscaler",
    "ReactiveConfig",
    "DecentralizedFaro",
    "RebalanceConfig",
    "AdmissionController",
    "AdmissionRequest",
    "ModelProfile",
    "RESNET18",
    "RESNET34",
    "InferenceJobSpec",
    "ResourceQuota",
    "RayServeCluster",
    "AutoscalePolicy",
    "JobObservation",
    "ScalingDecision",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "FlowSimulation",
    "FaultConfig",
    "quickstart_faro",
]


def quickstart_faro(
    num_jobs: int = 4,
    total_replicas: int = 12,
    minutes: int = 30,
    objective: str = "fairsum",
    seed: int = 0,
) -> SimulationResult:
    """Run a small end-to-end Faro experiment and return its result.

    Builds a job mix of ResNet34 services with paper-default SLOs, drives
    them with synthetic Azure/Twitter traces, and autoscales with the hybrid
    Faro controller.  Meant as a 'hello world' -- see ``examples/`` for the
    full-size scenarios.
    """
    from repro.traces import standard_job_mix

    mix = standard_job_mix(num_jobs=num_jobs, days=2, rate_hi=400.0, seed=seed)
    jobs = [
        InferenceJobSpec.with_default_slo(trace.name, RESNET34) for trace in mix
    ]
    traces = {trace.name: trace.eval[:minutes] for trace in mix}
    capacity = ClusterCapacity.of_replicas(total_replicas)
    faro = FaroAutoscaler(
        jobs=[
            JobSpec(name=j.name, slo=j.slo, proc_time=j.model.proc_time)
            for j in jobs
        ],
        capacity=capacity,
        config=FaroConfig(objective=objective, seed=seed),
    )
    policy = HybridAutoscaler(faro)
    simulation = Simulation(
        jobs,
        traces,
        policy,
        ResourceQuota.of_replicas(total_replicas),
        config=SimulationConfig(duration_minutes=minutes, seed=seed),
    )
    return simulation.run()
