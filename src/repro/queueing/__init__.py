"""Queueing-theory substrate used by Faro's latency estimation (paper §3.3).

The paper models each inference job as an M/D/c queue (Poisson arrivals,
deterministic per-request processing time, ``c`` replicas) and adopts the
standard engineering approximation that the M/D/c waiting time is about half
the M/M/c waiting time (Tijms 2006).  This package provides:

- :mod:`repro.queueing.mmc` -- exact M/M/c results (Erlang B/C, waiting-time
  distribution and percentiles).
- :mod:`repro.queueing.mdc` -- M/D/c approximations built on top of M/M/c,
  including the half-wait rule the paper uses and the higher-fidelity
  Cosmetatos correction.
- :mod:`repro.queueing.ggc` -- G/G/c (Allen-Cunneen) and M/G/c
  approximations for the paper's §7 "Beyond ML Inference" adaptation path.
- :mod:`repro.queueing.batch` -- batch-service approximations backing the
  adaptive request batching extension (§7 orthogonal techniques).
"""

from repro.queueing.mmc import (
    erlang_b,
    erlang_c,
    mmc_mean_wait,
    mmc_wait_ccdf,
    mmc_wait_percentile,
    utilization,
)
from repro.queueing.mdc import (
    cosmetatos_correction,
    mdc_mean_wait,
    mdc_latency_percentile,
    mdc_wait_percentile,
)
from repro.queueing.batch import (
    batch_formation_wait,
    batch_service_time,
    batch_throughput,
    batched_latency_percentile,
    optimal_batch_size,
)
from repro.queueing.ggc import (
    ggc_latency_percentile,
    ggc_mean_wait,
    ggc_wait_percentile,
    kingman_wait,
    mgc_mean_wait,
    mgc_wait_percentile,
    variability_factor,
)
from repro.queueing.simulate import (
    QueueSample,
    sample_ggc_queue,
    sample_mdc_queue,
    sample_mmc_queue,
    simulate_queue_waits,
)

__all__ = [
    "erlang_b",
    "erlang_c",
    "utilization",
    "mmc_mean_wait",
    "mmc_wait_ccdf",
    "mmc_wait_percentile",
    "mdc_mean_wait",
    "mdc_wait_percentile",
    "mdc_latency_percentile",
    "cosmetatos_correction",
    "variability_factor",
    "kingman_wait",
    "ggc_mean_wait",
    "ggc_wait_percentile",
    "ggc_latency_percentile",
    "mgc_mean_wait",
    "mgc_wait_percentile",
    "batch_service_time",
    "batch_throughput",
    "batch_formation_wait",
    "batched_latency_percentile",
    "optimal_batch_size",
    "simulate_queue_waits",
    "QueueSample",
    "sample_mdc_queue",
    "sample_mmc_queue",
    "sample_ggc_queue",
]
