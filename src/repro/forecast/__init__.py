"""Time-series workload prediction (paper §3.5).

Faro predicts each job's future arrival rates with a probabilistic
N-HiTS-style model: instead of a single trajectory, the model outputs a
Gaussian distribution per horizon step, from which the autoscaler draws
sample paths that cover workload fluctuation (Fig. 8c).

Contents:

- :mod:`repro.forecast.base` -- the :class:`Forecaster` interface + scaling.
- :mod:`repro.forecast.nhits` -- N-HiTS-lite (multi-rate pooling,
  hierarchical linear interpolation, residual stacks) with point (MSE/MAE)
  and probabilistic (Gaussian NLL) training.
- :mod:`repro.forecast.lstm` -- LSTM and DeepAR-lite comparison models
  (§3.5.1).
- :mod:`repro.forecast.baselines` -- naive / seasonal-naive / EWMA / AR /
  ARMA classical baselines (the ARMA also backs the Cilantro comparator).
- :mod:`repro.forecast.prophet_lite` -- Prophet-style trend + Fourier
  daily seasonality (Barista's predictor family, §3.5.1).
- :mod:`repro.forecast.predictor` -- adapters implementing the autoscaler's
  ``WorkloadPredictor`` protocol (trained-model, oracle, persistence).
- :mod:`repro.forecast.metrics` -- RMSE / MAE / coverage metrics.
"""

from repro.forecast.base import Forecaster, StandardScaler
from repro.forecast.baselines import (
    ARForecaster,
    ARMAForecaster,
    EWMAForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.forecast.lstm import DeepARLiteForecaster, LSTMForecaster
from repro.forecast.metrics import coverage, mae, rmse
from repro.forecast.nhits import NHiTSConfig, NHiTSForecaster
from repro.forecast.prophet_lite import ProphetLiteConfig, ProphetLiteForecaster
from repro.forecast.predictor import (
    ForecastWorkloadPredictor,
    OracleWorkloadPredictor,
)

__all__ = [
    "Forecaster",
    "StandardScaler",
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "EWMAForecaster",
    "ARForecaster",
    "ARMAForecaster",
    "NHiTSConfig",
    "NHiTSForecaster",
    "ProphetLiteConfig",
    "ProphetLiteForecaster",
    "LSTMForecaster",
    "DeepARLiteForecaster",
    "ForecastWorkloadPredictor",
    "OracleWorkloadPredictor",
    "rmse",
    "mae",
    "coverage",
]
