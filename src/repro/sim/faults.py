"""Replica fault injection for the trace simulators.

The paper treats Ray's and Kubernetes' fault-tolerance mechanisms as
orthogonal to Faro (§7); this module makes that orthogonality testable.
Failures follow a per-replica Poisson process with mean time to failure
``mttf_seconds``: over a control interval ``dt`` a job running ``n``
replicas suffers ``Poisson(n * dt / mttf)`` failures.  A failed pod is
removed immediately; Kubernetes reconciliation
(:meth:`repro.cluster.rayserve.RayServeCluster.reconcile`) recreates it on
the next control tick, after which it pays a normal cold start -- so the
effective outage per failure is detection (<= one tick) plus the 50-70 s
startup, matching pod-restart behaviour on a real cluster.

Two interchangeable samplers realize the process
(``FaultConfig.process``): the historical per-tick Poisson-count sampler
here (``"tick"``, the default -- bit-compatible with every earlier run)
and the event-driven :class:`repro.sim.lifecycle.EventFaultProcess`
(``"event"``), which draws exact exponential inter-failure gaps instead of
per-tick counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultConfig", "FaultInjector", "make_fault_injector"]

#: Accepted values of :attr:`FaultConfig.process`.
FAULT_PROCESSES = ("tick", "event")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-process knobs.

    The default MTTF of 4 hours per replica is aggressive (production pods
    fail far less often); it is chosen so day-long experiments see enough
    failures to measure recovery behaviour.  ``process`` picks the sampler:
    ``"tick"`` (per-tick Poisson counts, the historical default) or
    ``"event"`` (exact event-time Poisson process; see
    :class:`repro.sim.lifecycle.EventFaultProcess`).
    """

    mttf_seconds: float = 4 * 3600.0
    seed: int = 0
    process: str = "tick"

    def __post_init__(self) -> None:
        if self.mttf_seconds <= 0:
            raise ValueError(f"mttf_seconds must be positive, got {self.mttf_seconds}")
        if self.process not in FAULT_PROCESSES:
            raise ValueError(
                f"unknown fault process {self.process!r}; "
                f"expected one of {FAULT_PROCESSES}"
            )


def make_fault_injector(config: FaultConfig):
    """Build the sampler ``config`` selects (shared by every backend).

    Both implementations expose ``sample(job, replica_count, dt)``,
    ``reset()``, ``failures_injected`` and ``total_failures``.
    """
    if config.process == "event":
        from repro.sim.lifecycle import EventFaultProcess

        return EventFaultProcess(config)
    return FaultInjector(config)


class FaultInjector:
    """Samples per-job failure counts for each control interval."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.failures_injected: dict[str, int] = {}

    def sample(self, job_name: str, replica_count: int, dt: float) -> int:
        """Number of replicas of ``job_name`` failing during ``dt`` seconds."""
        if replica_count < 0:
            raise ValueError(f"replica_count must be >= 0, got {replica_count}")
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if replica_count == 0 or dt == 0.0:
            return 0
        expected = replica_count * dt / self.config.mttf_seconds
        count = int(self._rng.poisson(expected))
        count = min(count, replica_count)
        if count:
            self.failures_injected[job_name] = (
                self.failures_injected.get(job_name, 0) + count
            )
        return count

    @property
    def total_failures(self) -> int:
        return sum(self.failures_injected.values())

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.config.seed)
        self.failures_injected = {}
