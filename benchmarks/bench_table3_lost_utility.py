"""Table 3: average lost cluster utility, 32 total replicas.

Paper: FairShare 2.42, Oneshot 4.83, AIAD 1.96, Mark 2.02, Faro 0.79.
Shape: Faro lowest; Oneshot worst; AIAD/Mark in between.
"""

from benchmarks.conftest import HEADLINE_POLICIES, write_result
from repro.experiments.report import format_table

PAPER = {
    "fairshare": 2.42,
    "oneshot": 4.83,
    "aiad": 1.96,
    "mark": 2.02,
    "faro-fairsum": 0.79,
}


def test_table3_lost_utility(benchmark, bench_cache):
    def run():
        return {name: bench_cache.run("SO", name) for name in HEADLINE_POLICIES}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, PAPER[name], stats[name].lost_utility_mean) for name in HEADLINE_POLICIES
    ]
    text = format_table(
        ["policy (lost cluster utility)", "paper", "measured"],
        rows,
        title="== Table 3: average lost cluster utility (32 replicas) ==",
    )
    write_result("table3_lost_utility", text)

    lost = {name: s.lost_utility_mean for name, s in stats.items()}
    assert lost["faro-fairsum"] == min(lost.values())
    assert lost["oneshot"] == max(lost.values())
    assert lost["aiad"] < lost["fairshare"]
