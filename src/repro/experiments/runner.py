"""Legacy multi-trial execution API, now a shim over the unified engine.

The trial loop lives in :mod:`repro.api.runner` (:func:`execute_trials`);
spec-driven runs (:func:`repro.api.run`) and these legacy entry points
share that single code path, so equal settings produce identical results.

.. deprecated::
    Prefer :func:`repro.api.run` with an
    :class:`~repro.api.spec.ExperimentSpec`.  ``run_trials`` and
    ``compare_policies`` remain for existing callers and notebooks.
"""

from __future__ import annotations

from repro.api.runner import TrialStats, execute_trials, run_policy
from repro.api.spec import PolicySpec
from repro.experiments.policies import PredictorProfile
from repro.experiments.scenarios import Scenario

__all__ = ["TrialStats", "run_trials", "compare_policies"]


def _legacy_policy_spec(
    policy_name: str,
    predictor_profile: PredictorProfile | None,
    faro_overrides: dict | None,
) -> PolicySpec:
    """Map the old keyword arguments onto registry options.

    Like the old ``make_policy``, settings a policy does not accept are
    dropped (e.g. ``predictor_profile`` for FairShare); the typed
    :class:`PolicySpec` path is strict instead.
    """
    from repro.api import get_registry

    info = get_registry().get(policy_name)
    supported = {field_name for field_name, _ in info.option_fields()}
    options: dict = {}
    if predictor_profile is not None and "predictor_profile" in supported:
        options["predictor_profile"] = predictor_profile
    if faro_overrides and "faro" in supported:
        options["faro"] = dict(faro_overrides)
    return PolicySpec(name=policy_name, options=options, label=policy_name)


def run_trials(
    scenario: Scenario,
    policy_name: str,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
    faro_overrides: dict | None = None,
    policy_factory=None,
    sim_overrides: dict | None = None,
) -> TrialStats:
    """Run one policy for several trials and aggregate its metrics.

    ``simulator`` selects the request-level simulator (the "cluster" proxy)
    or the analytic flow simulator ("flow").  ``policy_factory`` overrides
    policy construction (used by the ablation study); it receives
    ``(scenario, seed)``.  ``sim_overrides`` passes extra
    :class:`SimulationConfig` fields (e.g. ``cold_start_range``, ``faults``)
    through to each trial.

    .. deprecated:: Use :func:`repro.api.run` / :func:`repro.api.run_policy`.
    """
    if policy_factory is not None:
        return execute_trials(
            scenario,
            policy_name,
            policy_factory,
            trials=trials,
            simulator=simulator,
            seed=seed,
            sim_overrides=sim_overrides,
        )
    return run_policy(
        scenario,
        _legacy_policy_spec(policy_name, predictor_profile, faro_overrides),
        trials=trials,
        simulator=simulator,
        seed=seed,
        sim_overrides=sim_overrides,
    )


def compare_policies(
    scenario: Scenario,
    policy_names: list[str],
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
) -> dict[str, TrialStats]:
    """Run several policies on the same scenario; returns stats per policy.

    .. deprecated:: Use :func:`repro.api.run` with an ``ExperimentSpec``.
    """
    return {
        name: run_trials(
            scenario,
            name,
            trials=trials,
            simulator=simulator,
            seed=seed,
            predictor_profile=predictor_profile,
        )
        for name in policy_names
    }
