"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.job import InferenceJobSpec
from repro.cluster.models import RESNET34
from repro.core.objectives import make_objective
from repro.core.optimizer import AllocationProblem, ClusterCapacity, OptimizationJob
from repro.core.utility import SLO


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_jobs():
    """Five light jobs with paper-default ResNet34 parameters."""
    return [
        OptimizationJob(
            name=f"job{i}",
            proc_time=0.18,
            slo=SLO(0.72),
            rates=(4.0 + i, 7.0 + i),
        )
        for i in range(5)
    ]


@pytest.fixture
def small_problem(small_jobs):
    return AllocationProblem(
        small_jobs, ClusterCapacity.of_replicas(20), make_objective("sum")
    )


@pytest.fixture
def resnet_job():
    return InferenceJobSpec.with_default_slo("svc", RESNET34)


def constant_trace(minutes: int, rate_per_min: float) -> np.ndarray:
    return np.full(minutes, float(rate_per_min))
