"""Chained-model pipelines with SLO splitting (paper §7).

An application calls two models in sequence -- a ResNet34 feature
extractor followed by a ResNet18 classifier head -- under one end-to-end
p99 SLO.  Per the paper's worked example, the SLO budget is split across
stages proportionally to processing time (180 ms : 100 ms ~= 64% : 36%);
each stage then autoscales like an ordinary Faro job.

This example splits the pipeline, runs the resulting stage-jobs under the
hybrid Faro autoscaler in the request-level simulator, and recombines
per-stage outcomes into the end-to-end view.

Run:  python examples/pipeline_slo.py
"""

import numpy as np

from repro.cluster import RESNET18, RESNET34, ResourceQuota
from repro.core.autoscaler import FaroAutoscaler, FaroConfig, JobSpec
from repro.core.hybrid import HybridAutoscaler
from repro.core.latency import MDC
from repro.core.optimizer import ClusterCapacity
from repro.core.pipelines import PipelineSpec, pipeline_latency, split_pipeline
from repro.core.utility import SLO
from repro.sim import Simulation, SimulationConfig
from repro.traces import standard_job_mix


def main() -> None:
    pipeline = PipelineSpec(
        name="vision",
        stages=(RESNET34, RESNET18),
        slo=SLO(target=1.12, percentile=99.0),  # 4x the 280 ms chain time
    )
    stage_jobs = split_pipeline(pipeline)

    print("Pipeline SLO splitting: ResNet34 -> ResNet18, end-to-end p99 <= 1.12 s")
    print("=" * 70)
    for job, share in zip(stage_jobs, pipeline.stage_shares()):
        print(f"  {job.name:28s} share={share:.1%} sub-SLO={job.slo.target * 1000:.0f} ms")
    print()

    # Every request traverses both stages: both stage-jobs see the same trace.
    minutes = 30
    trace = standard_job_mix(num_jobs=1, days=2, rate_hi=900.0, seed=4)[0]
    traces = {job.name: trace.eval[:minutes] for job in stage_jobs}

    total_replicas = 16
    faro = FaroAutoscaler(
        jobs=[
            JobSpec(name=j.name, slo=j.slo, proc_time=j.model.proc_time)
            for j in stage_jobs
        ],
        capacity=ClusterCapacity.of_replicas(total_replicas),
        config=FaroConfig(objective="sum", seed=0),
    )
    simulation = Simulation(
        stage_jobs,
        traces,
        HybridAutoscaler(faro),
        ResourceQuota.of_replicas(total_replicas),
        config=SimulationConfig(duration_minutes=minutes, seed=0),
    )
    result = simulation.run()

    print(f"per-stage outcomes over {minutes} minutes on {total_replicas} replicas:")
    for name, series in result.jobs.items():
        print(
            f"  {name:28s} violations={series.slo_violation_rate:.2%} "
            f"replicas(mean)={series.replicas.mean():.1f}"
        )
    print()

    # Recombine: conservative end-to-end estimate at the mean observed load.
    mean_lam = float(np.mean(trace.eval[:minutes])) / 60.0
    mean_replicas = [int(result.jobs[j.name].replicas.mean()) for j in stage_jobs]
    estimate = pipeline_latency(pipeline, MDC, mean_lam, mean_replicas)
    print(f"end-to-end p99 estimate at mean load: {estimate * 1000:.0f} ms "
          f"(target {pipeline.slo.target * 1000:.0f} ms)")
    print("Summing per-stage percentiles is conservative, matching Faro's")
    print("pessimistic-estimation philosophy; each stage met its sub-SLO, so")
    print("the chain meets the end-to-end SLO.")


if __name__ == "__main__":
    main()
