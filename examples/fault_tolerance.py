"""Replica failures and recovery (paper §7, orthogonal fault tolerance).

The paper treats Ray's and Kubernetes' fault-tolerance mechanisms as
orthogonal to Faro.  This example injects an aggressive per-replica fault
process (MTTF 10 minutes!) into the request-level simulator and compares a
fixed allocation against the hybrid Faro controller on the same faulty
cluster: failed pods are recreated by Kubernetes-style reconciliation and
pay a fresh cold start, and Faro's short-term reactive path additionally
scales up when failures push latency over the SLO.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.baselines.fairshare import FairSharePolicy
from repro.cluster import RESNET34, InferenceJobSpec, ResourceQuota
from repro.core.autoscaler import FaroAutoscaler, FaroConfig, JobSpec
from repro.core.hybrid import HybridAutoscaler
from repro.core.optimizer import ClusterCapacity
from repro.sim import Simulation, SimulationConfig
from repro.sim.faults import FaultConfig
from repro.traces import standard_job_mix

MINUTES = 40
TOTAL_REPLICAS = 12


def run(policy, faults, jobs, traces, seed=0):
    config = SimulationConfig(
        duration_minutes=MINUTES,
        seed=seed,
        faults=faults,
        cold_start_range=(30.0, 30.0),
    )
    simulation = Simulation(
        jobs, traces, policy, ResourceQuota.of_replicas(TOTAL_REPLICAS), config=config
    )
    return simulation.run()


def make_faro(jobs):
    faro = FaroAutoscaler(
        jobs=[JobSpec(name=j.name, slo=j.slo, proc_time=j.model.proc_time) for j in jobs],
        capacity=ClusterCapacity.of_replicas(TOTAL_REPLICAS),
        config=FaroConfig(objective="sum", seed=0),
    )
    return HybridAutoscaler(faro, capacity_replicas=TOTAL_REPLICAS)


def main() -> None:
    mix = standard_job_mix(num_jobs=3, days=2, rate_hi=700.0, seed=5)
    jobs = [InferenceJobSpec.with_default_slo(t.name, RESNET34) for t in mix]
    traces = {t.name: t.eval[:MINUTES] for t in mix}
    faults = FaultConfig(mttf_seconds=600.0, seed=1)

    print(f"Fault tolerance: 3 jobs, {TOTAL_REPLICAS} replicas, MTTF 10 min/replica")
    print("=" * 68)
    rows = []
    for label, policy_factory, fault_config in [
        ("fairshare, no faults", lambda: FairSharePolicy(TOTAL_REPLICAS), None),
        ("fairshare, faults", lambda: FairSharePolicy(TOTAL_REPLICAS), faults),
        ("faro-hybrid, faults", lambda: make_faro(jobs), faults),
    ]:
        result = run(policy_factory(), fault_config, jobs, traces)
        failures = result.metadata.get("total_failures", 0)
        rows.append((label, failures, result.cluster_slo_violation_rate,
                     result.avg_lost_cluster_utility))
    for label, failures, violations, lost in rows:
        print(f"  {label:22s} failures={failures:3d} "
              f"violations={violations:.2%} lost-utility={lost:.3f}")
    print()
    print("Failures cost the fixed allocation real SLO headroom (each kill")
    print("removes capacity for ~30-40 s of reconciliation + cold start).")
    print("Faro absorbs most of it: reconciliation restores the planned")
    print("replica count and the 10 s reactive path tops up any job whose")
    print("p99 slips over the SLO while pods restart.")


if __name__ == "__main__":
    main()
