"""The continuous serving loop and its engine (`repro.api.serve`).

:class:`ServeLoop` drives one trial the way
:meth:`repro.sim.harness.SimHarness.run` does -- the tick body is that
loop's, statement for statement -- but owned from outside the harness so
it can be cursor-gated, paced, checkpointed, and degraded:

- **cursor gating** -- a tick only runs once the
  :class:`~repro.serve.cursor.TraceCursor` has a full tick of trace
  minutes; newly available minutes are appended to the live harness
  through :meth:`SimHarness.extend_traces` (legal because the Poisson
  workload draws arrivals lazily, per minute in order).  With a finite
  replay cursor the gate never engages and the tick sequence -- hence the
  result -- is byte-identical to batch ``api.run``;
- **graceful degradation** -- a policy solve that raises, or overruns
  ``tick_deadline_s`` on the injected clock, holds the previous
  allocation (no ``apply``), counts the event, and backs off
  exponentially before retrying.  The loop never dies on a solver bug;
- **crash-safe checkpoints** -- loop state (harness, window accumulator,
  counters) pickles into a :class:`ServeJournal` (atomic
  write-temp-then-rename, the ``api/parallel.py`` idiom); ``resume=True``
  restores mid-trial and re-ticks deterministically to the same digest.

:func:`serve` is the engine: it walks the spec's scenario x policy x
trial grid in batch order, runs each trial through a ServeLoop, attaches
each completed trial's partial :class:`~repro.api.runner.RunReport` to
the window it completed in, and folds all partials through the
order-invariant ``RunReport.merge`` -- the identity claim pinned by
``tests/test_serve_loop.py``.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.api.runner import (
    ProgressCallback,
    RunEvent,
    RunReport,
    TrialStats,
    _emit,
    _validate_spec,
    build_trial_simulation,
    derive_trial_seed,
    make_policy,
)
from repro.api.spec import ExperimentSpec
from repro.serve.clock import Clock, VirtualClock, WallClock
from repro.serve.cursor import ReplayCursor, TailingFileCursor, TraceCursor
from repro.serve.sinks import WindowSink
from repro.serve.spec import ServeOptions, ServeSpec, serve_digest
from repro.serve.windows import WindowAccumulator, WindowReport, WindowStats

__all__ = [
    "ServeAborted",
    "TrialOutcome",
    "ServeJournal",
    "ServeLoop",
    "ServeResult",
    "serve",
]

#: Harness end-of-run epsilon (must match SimHarness.run's loop test).
_EPS = 1e-9

#: Consecutive dry polls before an accelerated (non-realtime) run declares
#: the cursor stalled -- a virtual clock cannot wait wall time out, so a
#: source that neither grows nor finishes would otherwise spin forever.
_MAX_DRY_POLLS = 10_000


class ServeAborted(RuntimeError):
    """Injected mid-run abort (the crash/kill test hook)."""


@dataclass
class _TickFlags:
    overrun: bool = False
    error: bool = False
    backoff: bool = False
    held: bool = False


#: Shared all-False flags for the no-event solve path.  Every healthy tick
#: would otherwise allocate a fresh dataclass; callers only read flags, and
#: the degradation paths still build their own mutable instances.
_CLEAN_FLAGS = _TickFlags()


@dataclass
class TrialOutcome:
    """One completed trial, as journaled and merged by the engine."""

    scenario_index: int
    policy_index: int
    trial: int
    scenario_name: str
    policy_label: str
    stats: TrialStats
    windows: list[WindowReport]
    totals: WindowStats


class ServeJournal:
    """Crash-safe checkpoint directory for a serve run.

    Layout: ``meta.json`` records the serve-spec digest; each completed
    trial is one ``cell-s<si>-p<pi>-t<t>.pkl``; the in-flight trial's
    loop state lives in ``checkpoint.pkl``, rewritten at each checkpoint
    cadence and cleared when its trial completes.  Every payload embeds
    the spec digest, so a journal written by a different spec is refused
    with a clear message instead of silently merging unrelated results.
    All writes are write-temp-then-rename (the ``SweepJournal`` idiom).
    """

    _META_VERSION = 1

    def __init__(self, path: str | Path, spec: ServeSpec) -> None:
        self.path = Path(path)
        self.digest = serve_digest(spec)

    def _meta_path(self) -> Path:
        return self.path / "meta.json"

    def _cell_path(self, si: int, pi: int, trial: int) -> Path:
        return self.path / f"cell-s{si:03d}-p{pi:03d}-t{trial:04d}.pkl"

    def _checkpoint_path(self) -> Path:
        return self.path / "checkpoint.pkl"

    def open(self, resume: bool) -> None:
        """Create the journal directory, or validate it against the spec."""
        self.path.mkdir(parents=True, exist_ok=True)
        meta_path = self._meta_path()
        if not meta_path.exists() and any(self.path.iterdir()):
            raise ValueError(
                f"journal directory {self.path} is not empty and has no "
                "meta.json; refusing to adopt it -- choose a fresh directory"
            )
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("serve_digest") != self.digest:
                raise ValueError(
                    f"serve journal {self.path} belongs to a different spec "
                    f"(digest {meta.get('serve_digest', '?')[:12]}... != "
                    f"{self.digest[:12]}...); use a fresh journal directory"
                )
            if not resume and any(self.path.glob("cell-*.pkl")):
                raise ValueError(
                    f"serve journal {self.path} already holds completed "
                    "trials; pass resume=True (--resume) to reuse them or "
                    "choose a fresh directory"
                )
            return
        self._atomic_write(
            meta_path,
            json.dumps(
                {"version": self._META_VERSION, "serve_digest": self.digest},
                indent=2,
            ).encode(),
        )

    def record_trial(self, outcome: TrialOutcome) -> None:
        payload = {"serve_digest": self.digest, "outcome": outcome}
        self._atomic_write(
            self._cell_path(
                outcome.scenario_index, outcome.policy_index, outcome.trial
            ),
            pickle.dumps(payload),
        )

    def load_trials(self) -> dict[tuple[int, int, int], TrialOutcome]:
        completed: dict[tuple[int, int, int], TrialOutcome] = {}
        for path in sorted(self.path.glob("cell-*.pkl")):
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            self._check_payload(payload, path)
            outcome = payload["outcome"]
            key = (outcome.scenario_index, outcome.policy_index, outcome.trial)
            completed[key] = outcome
        return completed

    def save_checkpoint(self, cell: tuple[int, int, int], state: dict) -> None:
        payload = {"serve_digest": self.digest, "cell": cell, "state": state}
        self._atomic_write(self._checkpoint_path(), pickle.dumps(payload))

    def load_checkpoint(self) -> tuple[tuple[int, int, int], dict] | None:
        path = self._checkpoint_path()
        if not path.exists():
            return None
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        self._check_payload(payload, path)
        return tuple(payload["cell"]), payload["state"]

    def clear_checkpoint(self) -> None:
        path = self._checkpoint_path()
        if path.exists():
            os.unlink(path)

    def _check_payload(self, payload: Any, path: Path) -> None:
        if not isinstance(payload, dict) or "serve_digest" not in payload:
            raise ValueError(
                f"journal entry {path} has no spec digest (written by an "
                "incompatible version?); use a fresh journal directory"
            )
        if payload["serve_digest"] != self.digest:
            raise ValueError(
                f"journal entry {path} was written by a different spec "
                f"(digest {payload['serve_digest'][:12]}... != "
                f"{self.digest[:12]}...); use a fresh journal directory"
            )

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


class ServeLoop:
    """The continuous control loop for one trial.

    The tick body replicates :meth:`SimHarness.run` exactly --
    ``advance -> observations -> policy.tick -> apply -> end_of_chunk``
    with the same chunk arithmetic and epsilon -- which is what makes a
    gated, windowed, checkpointed serve run byte-identical to the batch
    loop on a finite replay.
    """

    def __init__(
        self,
        harness,
        cursor: TraceCursor,
        options: ServeOptions,
        clock: Clock,
        acc: WindowAccumulator,
        *,
        on_window: Callable[[WindowReport], None] | None = None,
        on_tick: Callable[["ServeLoop", list[WindowReport]], None] | None = None,
    ) -> None:
        self.harness = harness
        self.cursor = cursor
        self.options = options
        self.clock = clock
        self.acc = acc
        self.on_window = on_window
        self.on_tick = on_tick
        self.now = 0.0
        self.tick_count = 0
        self._backoff_remaining = 0
        self._backoff_next = options.backoff_ticks
        self._resumed = False
        #: Whether the cursor could gate this run at construction time --
        #: replay cursors with every minute on hand never gate, and their
        #: windows report zero cursor lag.
        self._streaming = not (
            cursor.finished()
            and cursor.available_minutes() >= self.harness.duration_minutes
        )

    # ---------------------------------------------------- checkpoint state

    def state(self) -> dict:
        """Picklable resume state: the harness carries policy + RNG state."""
        return {
            "harness": self.harness,
            "acc": self.acc,
            "now": self.now,
            "tick_count": self.tick_count,
            "backoff_remaining": self._backoff_remaining,
            "backoff_next": self._backoff_next,
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        cursor: TraceCursor,
        options: ServeOptions,
        clock: Clock,
        *,
        on_window=None,
        on_tick=None,
    ) -> "ServeLoop":
        loop = cls(
            state["harness"],
            cursor,
            options,
            clock,
            state["acc"],
            on_window=on_window,
            on_tick=on_tick,
        )
        loop.now = state["now"]
        loop.tick_count = state["tick_count"]
        loop._backoff_remaining = state["backoff_remaining"]
        loop._backoff_next = state["backoff_next"]
        loop._resumed = True
        return loop

    # -------------------------------------------------------------- gating

    def _stream_complete(self) -> bool:
        """True once no further trace minutes can ever arrive."""
        if not self._streaming:
            return True
        limit = self.harness.config.duration_minutes
        if limit is not None and self.harness.duration_minutes >= limit:
            return True
        return (
            self.cursor.finished()
            and self.cursor.available_minutes() <= self.harness.duration_minutes
        )

    def _await_growth(self) -> None:
        """Poll the cursor; append new minutes to the harness or wait."""
        available = self.cursor.poll()
        consumed = self.harness.duration_minutes
        if available > consumed:
            self.harness.extend_traces(
                self.cursor.read(consumed, available), limit_to_jobs=True
            )
            self._dry_polls = 0
            return
        self.acc.current.cursor_wait_polls += 1
        self._dry_polls = getattr(self, "_dry_polls", 0) + 1
        if not self.clock.realtime and self._dry_polls > _MAX_DRY_POLLS:
            raise RuntimeError(
                f"trace cursor stalled: {self._dry_polls} polls produced no "
                "data and the stream is not finished (accelerated runs "
                "cannot wait out wall time; use --realtime for live sources)"
            )
        self.clock.sleep(self.options.poll_seconds)

    # ---------------------------------------------------------- degradation

    def _solve(self, now: float, observations) -> tuple[Any, _TickFlags]:
        if self._backoff_remaining > 0:
            self._backoff_remaining -= 1
            return None, _TickFlags(backoff=True, held=True)
        deadline = self.options.tick_deadline_s
        solve_start = self.clock.perf() if deadline is not None else 0.0
        try:
            decision = self.harness.policy.tick(now, observations)
        except Exception:
            self._enter_backoff()
            return None, _TickFlags(error=True, held=True)
        if deadline is not None and self.clock.perf() - solve_start > deadline:
            # The solve finished but blew its budget: applying it would act
            # on stale observations, so hold the previous allocation.
            self._enter_backoff()
            return None, _TickFlags(overrun=True, held=True)
        self._backoff_next = self.options.backoff_ticks
        return decision, _CLEAN_FLAGS

    def _enter_backoff(self) -> None:
        self._backoff_remaining = self._backoff_next
        self._backoff_next = min(
            self._backoff_next * 2, self.options.max_backoff_ticks
        )

    # ----------------------------------------------------------------- run

    def run(self):
        """Drive the trial to completion.

        Returns ``(result, windows, unemitted_tail)``: the trial's
        :class:`SimulationResult`, every sealed window in order, and the
        trailing windows :meth:`WindowAccumulator.finish` sealed after the
        last tick (not yet pushed through ``on_window`` -- the engine
        attaches the trial's partial report to the last one first).
        """
        harness = self.harness
        if not self._resumed:
            harness.policy.reset()
            harness._reset()
        tick = float(harness.policy.tick_interval)
        if tick <= 0:
            raise ValueError(f"policy tick_interval must be positive, got {tick}")
        # Hot loop: everything invariant across ticks lives in a local --
        # per-tick overhead versus the batch harness is a gated perf
        # contract (benchmarks/bench_serve_loop.py).
        clock = self.clock
        acc = self.acc
        streaming = self._streaming
        on_window = self.on_window
        on_tick = self.on_tick
        measures = clock.measures
        realtime = clock.realtime
        deadline = self.options.tick_deadline_s
        static_end_time = None if streaming else harness.duration_minutes * 60.0
        while True:
            if streaming:
                end_time = harness.duration_minutes * 60.0
                complete = self._stream_complete()
            else:
                end_time = static_end_time
                complete = True
            if self.now >= end_time - _EPS:
                if complete:
                    break
                self._await_growth()
                continue
            if not complete and self.now + tick > end_time + _EPS:
                # Only part of the next tick's trace minutes have arrived;
                # ticking now would cut the chunk short of the batch loop's
                # boundary.  Wait for the rest.
                self._await_growth()
                continue
            if realtime:
                clock.pace(min(self.now + tick, end_time))
            tick_start = clock.perf() if measures else 0.0
            # --- the SimHarness.run tick body, verbatim ------------------
            now = harness.advance(self.now, tick, end_time)
            observations = harness.observations(now)
            if self._backoff_remaining == 0 and deadline is None:
                # Degradation-free fast path: _solve inlined (same
                # semantics, no dispatch) for the overwhelmingly common
                # healthy tick without a deadline armed.
                try:
                    decision = harness.policy.tick(now, observations)
                    flags = _CLEAN_FLAGS
                    self._backoff_next = self.options.backoff_ticks
                except Exception:
                    self._enter_backoff()
                    decision, flags = None, _TickFlags(error=True, held=True)
            else:
                decision, flags = self._solve(now, observations)
            if decision is not None:
                harness.apply(decision, now)
            harness.end_of_chunk(now)
            # -------------------------------------------------------------
            elapsed = clock.perf() - tick_start if measures else 0.0
            self.now = now
            self.tick_count += 1
            lag = 0.0
            if streaming:
                lag = max(0.0, self.cursor.available_minutes() * 60.0 - now)
            sealed = acc.on_tick(
                now,
                elapsed,
                sum([obs.queue_length for obs in observations.values()]),
                flags.overrun,
                flags.error,
                flags.backoff,
                flags.held,
                lag,
            )
            if on_window is not None:
                for window in sealed:
                    on_window(window)
            if on_tick is not None:
                on_tick(self, sealed)
        result = harness.collect()
        tail = self.acc.finish(self.now)
        return result, list(self.acc.sealed), tail


@dataclass
class ServeResult:
    """Everything one :func:`serve` run produced.

    ``report`` is the merged :class:`RunReport` -- byte-identical to
    batch ``api.run`` on the same experiment for finite replays.
    ``windows`` are every sealed window in emission order; ``totals`` is
    the run-level observability rollup.
    """

    report: RunReport
    windows: list[WindowReport] = field(default_factory=list)
    totals: WindowStats = field(default_factory=WindowStats)
    trials_run: int = 0
    trials_resumed: int = 0

    def describe(self) -> str:
        from repro.experiments.report import format_table

        serving = format_table(
            ["ticks", "windows", "held", "overruns", "errors", "resumed"],
            [
                [
                    self.totals.ticks,
                    len(self.windows),
                    self.totals.held_ticks,
                    self.totals.solver_overruns,
                    self.totals.solver_errors,
                    self.trials_resumed,
                ]
            ],
            title="Serving",
        )
        return self.report.describe() + "\n\n" + serving


def _normalize_spec(spec) -> ServeSpec:
    if isinstance(spec, ServeSpec):
        return spec
    if isinstance(spec, ExperimentSpec):
        return ServeSpec(experiment=spec)
    return ServeSpec.from_file(spec)


def _make_cursor(
    scenario,
    options: ServeOptions,
    spec_dir: str | None,
    cursor_factory,
    clock: Clock,
) -> TraceCursor:
    if cursor_factory is not None:
        return cursor_factory(scenario)
    if options.stream is not None:
        from repro.traces.generators import resolve_trace_path, trace_search_path

        stream = options.stream
        with trace_search_path(spec_dir):
            path = resolve_trace_path(stream["path"])
        return TailingFileCursor(
            path,
            job=stream.get("job"),
            horizon_minutes=stream.get("horizon_minutes"),
        )
    return ReplayCursor.for_scenario(scenario)


def serve(
    spec: ServeSpec | ExperimentSpec | str | Path,
    *,
    sinks: Sequence[WindowSink] = (),
    progress: ProgressCallback | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    clock: Clock | None = None,
    cursor_factory: Callable[[Any], TraceCursor] | None = None,
    cache_path: str | Path | None = None,
    abort_after_ticks: int | None = None,
) -> ServeResult:
    """Serve an experiment continuously; return the merged report + windows.

    Walks the scenario x policy x trial grid in the batch engine's order;
    each trial runs through a :class:`ServeLoop` against a trace cursor
    (a replay of the scenario's traces by default, a tailing live file
    with ``spec.serve.stream``, or whatever ``cursor_factory(scenario)``
    returns).  Sealed windows stream to ``sinks`` as they close.

    ``journal`` enables crash-safe checkpoints; ``resume=True`` reloads
    completed trials and the mid-trial checkpoint, reproducing the
    uninterrupted run's digest.  ``cache_path`` warms the process-wide
    utility-table cache before serving and merge-saves it back after
    (see :meth:`UtilityTableCache.merge_save`).  ``abort_after_ticks``
    raises :class:`ServeAborted` after that many ticks of *this* call --
    the deterministic stand-in for a crash in the resume tests.
    """
    sspec = _normalize_spec(spec)
    exp = sspec.experiment
    options = sspec.serve
    if resume and journal is None:
        raise ValueError("resume=True requires a journal directory")
    if clock is None:
        clock = (
            WallClock(options.realtime_speedup) if options.realtime else VirtualClock()
        )
    from repro.sim.backends import get_backend_registry
    from repro.traces.generators import trace_search_path

    with trace_search_path(exp.spec_dir):
        _validate_spec(exp)
    backend = get_backend_registry().get(exp.simulator)
    if options.stream is not None:
        if not getattr(backend.cls, "supports_streaming", False):
            raise ValueError(
                f"backend {exp.simulator!r} does not support streaming trace "
                "extension; use the request backend for live serving, or a "
                "finite replay (no 'stream' block)"
            )
        if exp.sim_overrides.get("faults"):
            raise ValueError(
                "fault injection needs a fixed duration and cannot be "
                "combined with a streaming trace source"
            )

    if cache_path is not None:
        _warm_cache(cache_path)

    serve_journal = None
    completed: dict[tuple[int, int, int], TrialOutcome] = {}
    checkpoint: tuple[tuple[int, int, int], dict] | None = None
    if journal is not None:
        serve_journal = ServeJournal(journal, sspec)
        serve_journal.open(resume)
        if resume:
            completed = serve_journal.load_trials()
            checkpoint = serve_journal.load_checkpoint()

    def emit_window(window: WindowReport) -> None:
        for sink in sinks:
            sink.on_window(window)

    ticks_this_run = [0]

    def on_tick(loop: ServeLoop, sealed: list[WindowReport]) -> None:
        ticks_this_run[0] += 1
        if serve_journal is not None and (
            sealed
            or (
                options.checkpoint_ticks is not None
                and loop.tick_count % options.checkpoint_ticks == 0
            )
        ):
            serve_journal.save_checkpoint(loop._cell, loop.state())
        if (
            abort_after_ticks is not None
            and ticks_this_run[0] >= abort_after_ticks
        ):
            raise ServeAborted(
                f"injected abort after {ticks_this_run[0]} ticks"
            )

    # Without a journal or an injected abort the callback would only count
    # ticks nobody reads; keep it off the hot loop entirely.
    if serve_journal is None and abort_after_ticks is None:
        on_tick = None

    merged = RunReport(spec=exp)
    result = ServeResult(report=merged)
    scenarios: dict[int, Any] = {}

    def get_scenario(index: int):
        if index not in scenarios:
            with trace_search_path(exp.spec_dir):
                scenario = exp.scenarios[index].build()
            for other_index, other in scenarios.items():
                if other.name == scenario.name:
                    raise ValueError(
                        f"duplicate scenario name {scenario.name!r}; set "
                        "ScenarioSpec.name to disambiguate repeated kinds"
                    )
            scenarios[index] = scenario
            _emit(
                progress,
                RunEvent(
                    stage="scenario-start",
                    scenario=scenario.name,
                    detail=f"{len(scenario.jobs)} jobs, "
                    f"{scenario.total_replicas} replicas",
                ),
            )
        return scenarios[index]

    try:
        for si in range(len(exp.scenarios)):
            for pi, policy_spec in enumerate(exp.policies):
                label = policy_spec.display_label
                for trial in range(exp.trials):
                    key = (si, pi, trial)
                    if key in completed:
                        outcome = completed[key]
                        result.trials_resumed += 1
                        _absorb_outcome(result, outcome, exp)
                        continue
                    scenario = get_scenario(si)
                    loop = _build_or_restore_loop(
                        key,
                        scenario,
                        policy_spec,
                        exp,
                        options,
                        clock,
                        checkpoint,
                        cursor_factory,
                        emit_window,
                        on_tick,
                    )
                    trial_result, windows, tail = loop.run()
                    trial_result.policy_name = getattr(
                        loop.harness.policy, "name", label
                    )
                    stats = TrialStats.from_results(
                        label, [trial_result], trial_indices=[trial]
                    )
                    partial = RunReport(
                        spec=exp,
                        stats={scenario.name: {label: stats}},
                        scenario_index={scenario.name: si},
                    )
                    windows[-1].report = partial
                    for window in tail:
                        emit_window(window)
                    totals = WindowStats()
                    for window in windows:
                        totals.merge(window.stats)
                    outcome = TrialOutcome(
                        scenario_index=si,
                        policy_index=pi,
                        trial=trial,
                        scenario_name=scenario.name,
                        policy_label=label,
                        stats=stats,
                        windows=windows,
                        totals=totals,
                    )
                    if serve_journal is not None:
                        serve_journal.record_trial(outcome)
                        serve_journal.clear_checkpoint()
                    result.trials_run += 1
                    _absorb_outcome(result, outcome, exp)
                    _emit(
                        progress,
                        RunEvent(
                            stage="trial-end",
                            scenario=scenario.name,
                            policy=label,
                            trial=trial,
                            trials=exp.trials,
                            detail=(
                                f"lost_utility="
                                f"{trial_result.avg_lost_cluster_utility:.3f}"
                            ),
                        ),
                    )
    finally:
        for sink in sinks:
            sink.close()
    if cache_path is not None:
        from repro.core.optimizer import DEFAULT_TABLE_CACHE

        DEFAULT_TABLE_CACHE.merge_save(cache_path)
    _emit(
        progress,
        RunEvent(
            stage="run-end",
            detail=(
                f"{result.totals.ticks} tick(s), {len(result.windows)} "
                f"window(s), {result.trials_resumed} trial(s) resumed"
            ),
        ),
    )
    return result


def _absorb_outcome(result: ServeResult, outcome: TrialOutcome, exp) -> None:
    """Fold one trial's windows + partial report into the running result."""
    result.windows.extend(outcome.windows)
    result.totals.merge(outcome.totals)
    partial = RunReport(
        spec=exp,
        stats={outcome.scenario_name: {outcome.policy_label: outcome.stats}},
        scenario_index={outcome.scenario_name: outcome.scenario_index},
    )
    result.report = result.report.merge(partial)


def _build_or_restore_loop(
    key: tuple[int, int, int],
    scenario,
    policy_spec,
    exp: ExperimentSpec,
    options: ServeOptions,
    clock: Clock,
    checkpoint,
    cursor_factory,
    emit_window,
    on_tick,
) -> ServeLoop:
    si, pi, trial = key
    cursor = _make_cursor(scenario, options, exp.spec_dir, cursor_factory, clock)
    if checkpoint is not None and tuple(checkpoint[0]) == key:
        loop = ServeLoop.from_state(
            checkpoint[1],
            cursor,
            options,
            clock,
            on_window=emit_window,
            on_tick=on_tick,
        )
        loop._cell = key
        return loop
    missing = [job.name for job in scenario.jobs if job.name not in cursor.jobs]
    if missing:
        raise ValueError(
            f"trace cursor covers jobs {list(cursor.jobs)} but scenario "
            f"{scenario.name!r} needs {missing} too"
        )
    dry = 0
    while cursor.available_minutes() < 1:
        if cursor.finished():
            raise ValueError("trace cursor finished with no data")
        dry += 1
        if not clock.realtime and dry > _MAX_DRY_POLLS:
            raise RuntimeError("trace cursor produced no data")
        clock.sleep(options.poll_seconds)
        cursor.poll()
    available = cursor.available_minutes()
    prefix = {
        name: series
        for name, series in cursor.read(0, available).items()
        if any(job.name == name for job in scenario.jobs)
    }
    if options.stream is not None:
        duration_limit = options.stream.get("horizon_minutes")
        if duration_limit is None:
            horizon = cursor.horizon_minutes()
            duration_limit = int(horizon) if horizon is not None else None
    else:
        duration_limit = scenario.duration_minutes
    trial_seed = derive_trial_seed(exp.seed, trial)
    policy = make_policy(
        policy_spec,
        scenario,
        trial_seed,
        predictor_profile=exp.predictor_profile,
    )
    harness = build_trial_simulation(
        scenario,
        policy,
        simulator=exp.simulator,
        trial_seed=trial_seed,
        sim_overrides=exp.sim_overrides,
        backend_options=exp.backend_options,
        eval_traces=prefix,
        duration_minutes=duration_limit,
    )
    acc = WindowAccumulator(
        scenario=scenario.name,
        policy=policy_spec.display_label,
        trial=trial,
        window_minutes=options.window_minutes,
    )
    loop = ServeLoop(
        harness,
        cursor,
        options,
        clock,
        acc,
        on_window=emit_window,
        on_tick=on_tick,
    )
    loop._cell = key
    return loop


def _warm_cache(cache_path: str | Path) -> None:
    """Warm the process-wide table cache, best-effort (``_warm_worker``
    semantics: content problems degrade to cold tables; a missing file is
    fine here because serve merge-saves it back into existence)."""
    try:
        from repro.core.optimizer import DEFAULT_TABLE_CACHE, UtilityTableCache

        DEFAULT_TABLE_CACHE.absorb(UtilityTableCache.load(cache_path))
    except Exception:
        pass
