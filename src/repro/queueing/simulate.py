"""Exact discrete-event simulation of multi-server FCFS queues.

The analytic estimators in this package are approximations -- the half-wait
rule for M/D/c (Tijms 2006), Allen-Cunneen for G/G/c -- and the paper leans
on them precisely *because* they are fast enough for an optimizer's inner
loop.  This module provides the ground truth they approximate: an exact
G/G/c FCFS simulation (the c-server Lindley recursion, implemented with a
server-availability heap).  The validation test-suite drives it with
matched arrival/service processes and bounds each approximation's error;
users can do the same for their own service-time distributions before
trusting a latency model in production planning.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "simulate_queue_waits",
    "QueueSample",
    "sample_mdc_queue",
    "sample_mmc_queue",
    "sample_ggc_queue",
]


def simulate_queue_waits(
    interarrivals: np.ndarray, services: np.ndarray, servers: int
) -> np.ndarray:
    """Queueing delays of an FCFS queue with ``servers`` servers.

    ``interarrivals[i]`` is the gap before customer ``i`` arrives;
    ``services[i]`` is its service demand.  Exact for any G/G/c FCFS
    system (work-conserving, no preemption): each customer starts on the
    earliest-available server.
    """
    inter = np.asarray(interarrivals, dtype=float)
    serv = np.asarray(services, dtype=float)
    if inter.shape != serv.shape or inter.ndim != 1:
        raise ValueError(
            f"interarrivals {inter.shape} and services {serv.shape} must be equal-length 1-D"
        )
    if inter.size == 0:
        return np.empty(0)
    if np.any(inter < 0) or np.any(serv < 0):
        raise ValueError("interarrival and service times must be non-negative")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    arrivals = np.cumsum(inter)
    free_at = [0.0] * servers
    heapq.heapify(free_at)
    waits = np.empty(inter.size)
    for i, arrival in enumerate(arrivals):
        available = heapq.heappop(free_at)
        start = max(arrival, available)
        waits[i] = start - arrival
        heapq.heappush(free_at, start + serv[i])
    return waits


@dataclass
class QueueSample:
    """Empirical waits from one simulated queue run."""

    waits: np.ndarray

    @property
    def mean_wait(self) -> float:
        return float(np.mean(self.waits))

    def wait_percentile(self, q: float) -> float:
        """Empirical ``q``-quantile (0 < q < 1) of queueing delay."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        return float(np.quantile(self.waits, q))

    def drop_warmup(self, fraction: float = 0.1) -> "QueueSample":
        """Discard the initial transient (default: first 10% of customers)."""
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        start = int(self.waits.size * fraction)
        return QueueSample(waits=self.waits[start:])


def _poisson_interarrivals(lam: float, n: int, rng: np.random.Generator) -> np.ndarray:
    if lam <= 0:
        raise ValueError(f"arrival rate must be positive, got {lam}")
    return rng.exponential(1.0 / lam, n)


def sample_mdc_queue(
    lam: float, proc_time: float, servers: int, n: int = 200_000, seed: int = 0
) -> QueueSample:
    """Simulate an M/D/c queue (Poisson arrivals, deterministic service)."""
    rng = np.random.default_rng(seed)
    inter = _poisson_interarrivals(lam, n, rng)
    services = np.full(n, float(proc_time))
    return QueueSample(simulate_queue_waits(inter, services, servers)).drop_warmup()


def sample_mmc_queue(
    lam: float, mu: float, servers: int, n: int = 200_000, seed: int = 0
) -> QueueSample:
    """Simulate an M/M/c queue (Poisson arrivals, exponential service)."""
    rng = np.random.default_rng(seed)
    inter = _poisson_interarrivals(lam, n, rng)
    services = rng.exponential(1.0 / mu, n)
    return QueueSample(simulate_queue_waits(inter, services, servers)).drop_warmup()


def sample_ggc_queue(
    lam: float,
    mean_service: float,
    cs2: float,
    servers: int,
    n: int = 200_000,
    seed: int = 0,
) -> QueueSample:
    """Simulate an M/G/c queue with gamma-distributed service of SCV ``cs2``.

    A gamma distribution with shape ``1/cs2`` has exactly the requested
    squared coefficient of variation, letting the validation suite probe
    the Allen-Cunneen/Lee-Longton approximation between the M/D/c
    (``cs2 = 0``) and M/M/c (``cs2 = 1``) corners and beyond.
    """
    if cs2 <= 0:
        raise ValueError("cs2 must be positive (use sample_mdc_queue for cs2 = 0)")
    rng = np.random.default_rng(seed)
    inter = _poisson_interarrivals(lam, n, rng)
    shape = 1.0 / cs2
    scale = mean_service / shape
    services = rng.gamma(shape, scale, n)
    return QueueSample(simulate_queue_waits(inter, services, servers)).drop_warmup()
