"""Faro vs baseline autoscalers on a constrained multi-tenant cluster.

Reproduces the paper's headline comparison at a small scale: ten inference
jobs (nine Azure-like + one Twitter-like trace) share a slightly
oversubscribed 32-replica cluster.  Prints per-policy lost utility and SLO
violation rates plus an ASCII cluster-utility timeline -- the shape of the
paper's Fig. 10/11.

Run:  python examples/multi_tenant_showdown.py            (~1-2 minutes)
"""

import numpy as np

from repro.experiments import paper_scenario
from repro.experiments.policies import PredictorProfile
from repro.experiments.runner import run_trials

POLICIES = ("fairshare", "aiad", "mark", "faro-fairsum")
MINUTES = 45


def sparkline(values: np.ndarray, lo: float, hi: float, width: int = 64) -> str:
    chars = " .:-=+*#%@"
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    span = max(hi - lo, 1e-9)
    return "".join(
        chars[min(int((values[i] - lo) / span * (len(chars) - 1)), len(chars) - 1)]
        for i in idx
    )


def main() -> None:
    scenario = paper_scenario("SO", duration_minutes=MINUTES, seed=0)
    print(
        f"scenario: {len(scenario.jobs)} jobs, {scenario.total_replicas} replicas, "
        f"{MINUTES} minutes of the evaluation day"
    )
    print("-" * 78)
    profile = PredictorProfile.fast()
    outcomes = {}
    for policy in POLICIES:
        stats = run_trials(scenario, policy, trials=1, seed=0, predictor_profile=profile)
        outcomes[policy] = stats
        print(
            f"{policy:14s} lost-utility={stats.lost_utility_mean:5.2f}  "
            f"violations={stats.violation_rate_mean:6.2%}"
        )
    print("-" * 78)
    print("cluster utility timelines (0 .. 10):")
    for policy, stats in outcomes.items():
        timeline = stats.results[0].cluster_utility_timeline()
        print(f"  {policy:14s} [{sparkline(timeline, 0, len(scenario.jobs))}]")
    workload = outcomes[POLICIES[0]].results[0].workload_timeline()
    print(f"  {'workload':14s} [{sparkline(workload, workload.min(), workload.max())}]")


if __name__ == "__main__":
    main()
