"""Table 8: large-scale workloads.

Paper: 20 jobs / 70 replicas (cluster) and 100 jobs / 320 replicas
(simulation); Faro-FairSum lowers violations 3x-18.5x and lost utility
2.07x-13.76x vs baselines at both scales.
"""

from benchmarks.conftest import BENCH_PROFILE, write_result
from repro.experiments.report import format_table, ratio
from repro.experiments.runner import run_trials
from repro.experiments.scenarios import large_scale_scenario

PAPER_20 = {
    "fairshare": (3.48, 0.14),
    "oneshot": (8.67, 0.37),
    "aiad": (2.37, 0.07),
    "mark": (1.77, 0.08),
    "faro-fairsum": (0.63, 0.02),
}
PAPER_100 = {
    "fairshare": (20.82, 0.16),
    "oneshot": (53.37, 0.48),
    "aiad": (16.72, 0.09),
    "mark": (16.24, 0.13),
    "faro-fairsum": (7.83, 0.03),
}


def test_table8_large_scale(benchmark):
    scenario_20 = large_scale_scenario(
        num_jobs=20, total_replicas=70, duration_minutes=45, seed=0
    )
    scenario_100 = large_scale_scenario(
        num_jobs=100, total_replicas=320, duration_minutes=45, seed=0
    )

    def run():
        stats_20 = {
            name: run_trials(
                scenario_20, name, trials=1, seed=0, predictor_profile=BENCH_PROFILE
            )
            for name in PAPER_20
        }
        stats_100 = {
            name: run_trials(
                scenario_100,
                name,
                trials=1,
                simulator="flow",
                seed=0,
                predictor_profile=BENCH_PROFILE,
            )
            for name in PAPER_100
        }
        return stats_20, stats_100

    stats_20, stats_100 = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, paper, stats in (
        ("20 jobs/70 repl", PAPER_20, stats_20),
        ("100 jobs/320 repl", PAPER_100, stats_100),
    ):
        for name, st in stats.items():
            rows.append(
                (
                    f"{label}/{name}",
                    f"lost={paper[name][0]:.2f} viol={paper[name][1]:.2f}",
                    f"lost={st.lost_utility_mean:.2f} viol={st.violation_rate_mean:.2f}",
                )
            )
    faro20 = stats_20["faro-fairsum"]
    worst20 = max(stats_20.values(), key=lambda s: s.lost_utility_mean)
    rows.append(
        (
            "20-job worst-baseline/Faro lost ratio",
            "up to 13.76x",
            f"{ratio(worst20.lost_utility_mean, faro20.lost_utility_mean):.1f}x",
        )
    )
    text = format_table(
        ["scale/policy", "paper", "measured"],
        rows,
        title="== Table 8: large-scale workloads ==",
    )
    write_result("table8_scale", text)

    for stats in (stats_20, stats_100):
        lost = {n: s.lost_utility_mean for n, s in stats.items()}
        assert lost["faro-fairsum"] == min(lost.values())
