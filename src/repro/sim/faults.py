"""Replica fault injection for the request-level simulation.

The paper treats Ray's and Kubernetes' fault-tolerance mechanisms as
orthogonal to Faro (§7); this module makes that orthogonality testable.
Failures follow a per-replica Poisson process with mean time to failure
``mttf_seconds``: over a control interval ``dt`` a job running ``n``
replicas suffers ``Poisson(n * dt / mttf)`` failures.  A failed pod is
removed immediately; Kubernetes reconciliation
(:meth:`repro.cluster.rayserve.RayServeCluster.reconcile`) recreates it on
the next control tick, after which it pays a normal cold start -- so the
effective outage per failure is detection (<= one tick) plus the 50-70 s
startup, matching pod-restart behaviour on a real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultConfig", "FaultInjector"]


@dataclass(frozen=True)
class FaultConfig:
    """Fault-process knobs.

    The default MTTF of 4 hours per replica is aggressive (production pods
    fail far less often); it is chosen so day-long experiments see enough
    failures to measure recovery behaviour.
    """

    mttf_seconds: float = 4 * 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mttf_seconds <= 0:
            raise ValueError(f"mttf_seconds must be positive, got {self.mttf_seconds}")


class FaultInjector:
    """Samples per-job failure counts for each control interval."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.failures_injected: dict[str, int] = {}

    def sample(self, job_name: str, replica_count: int, dt: float) -> int:
        """Number of replicas of ``job_name`` failing during ``dt`` seconds."""
        if replica_count < 0:
            raise ValueError(f"replica_count must be >= 0, got {replica_count}")
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if replica_count == 0 or dt == 0.0:
            return 0
        expected = replica_count * dt / self.config.mttf_seconds
        count = int(self._rng.poisson(expected))
        count = min(count, replica_count)
        if count:
            self.failures_injected[job_name] = (
                self.failures_injected.get(job_name, 0) + count
            )
        return count

    @property
    def total_failures(self) -> int:
        return sum(self.failures_injected.values())

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.config.seed)
        self.failures_injected = {}
