"""Parameter sweeps over Faro's design knobs.

DESIGN.md calls out the knobs the paper fixes by fiat -- ``rho_max = 0.95``
(§3.4), ``alpha`` (Eq. 1 / Fig. 4a), the 5-minute long-term period (§4.4),
the 7-minute prediction window (§5), and the cold-start magnitude (§4.1).
These sweeps quantify each choice: every point is a full trace-driven run
via :func:`repro.experiments.runner.run_trials`, so the output rows slot
directly into the bench report tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.runner import TrialStats, run_policy
from repro.api.spec import PolicySpec
from repro.experiments.policies import PredictorProfile
from repro.experiments.runner import run_trials
from repro.experiments.scenarios import Scenario

__all__ = ["SweepResult", "sweep_faro_config", "sweep_cold_start", "sweep_predictor"]

#: FaroConfig fields that may be swept with ``sweep_faro_config``.
SWEEPABLE = (
    "rho_max",
    "alpha",
    "period",
    "horizon_steps",
    "num_samples",
    "solver",
    "groups",
    "gamma",
    "latency_model",
)


@dataclass
class SweepResult:
    """All points of one sweep, in input order."""

    parameter: str
    values: list = field(default_factory=list)
    stats: list[TrialStats] = field(default_factory=list)

    def add(self, value, stats: TrialStats) -> None:
        self.values.append(value)
        self.stats.append(stats)

    def best_value(self):
        """Swept value with the lowest mean lost cluster utility."""
        if not self.stats:
            raise ValueError("sweep has no points")
        best = min(range(len(self.stats)), key=lambda i: self.stats[i].lost_utility_mean)
        return self.values[best]

    def rows(self) -> list[list]:
        """Table rows: value, lost utility (mean/sd), violation rate."""
        return [
            [
                value,
                f"{s.lost_utility_mean:.3f}",
                f"{s.lost_utility_sd:.3f}",
                f"{s.violation_rate_mean:.4f}",
            ]
            for value, s in zip(self.values, self.stats)
        ]


def sweep_faro_config(
    scenario: Scenario,
    parameter: str,
    values: list,
    objective: str = "fairsum",
    trials: int = 1,
    simulator: str = "flow",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
    workers: int = 1,
) -> SweepResult:
    """Sweep one :class:`~repro.core.autoscaler.FaroConfig` field.

    Every other setting stays at the paper default, so the sweep isolates
    the single knob.  ``workers > 1`` fans the sweep points out over the
    sharded executor (:mod:`repro.api.parallel`); trial seeds never depend
    on the policy or sharding, so parallel sweeps are bit-identical to
    serial ones.
    """
    if parameter not in SWEEPABLE:
        raise ValueError(f"cannot sweep {parameter!r}; choose from {SWEEPABLE}")
    if not values:
        raise ValueError("values must be non-empty")
    specs = [
        PolicySpec(
            name=f"faro-{objective}",
            options={"faro": {parameter: value}},
            label=f"faro-{objective}",
        )
        for value in values
    ]
    if workers > 1:
        from repro.api.parallel import run_policies_parallel

        stats_list = run_policies_parallel(
            scenario,
            specs,
            workers=workers,
            trials=trials,
            simulator=simulator,
            seed=seed,
            predictor_profile=predictor_profile,
        )
        result = SweepResult(parameter=parameter)
        for value, stats in zip(values, stats_list):
            result.add(value, stats)
        return result
    result = SweepResult(parameter=parameter)
    for value, spec in zip(values, specs):
        stats = run_policy(
            scenario,
            spec,
            trials=trials,
            simulator=simulator,
            seed=seed,
            predictor_profile=predictor_profile,
        )
        result.add(value, stats)
    return result


def sweep_cold_start(
    scenario: Scenario,
    seconds: list[float],
    objective: str = "fairsum",
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
) -> SweepResult:
    """Sweep the replica cold-start delay.

    Both sides move together: the simulated pods take ``s`` seconds to
    become ready *and* Faro's planner is told to expect ``s`` seconds --
    the paper's setting where the controller knows its own cold-start cost.
    Uses the request-level simulator by default (the flow simulator's
    cold-start handling is coarser).
    """
    if not seconds:
        raise ValueError("seconds must be non-empty")
    if any(s < 0 for s in seconds):
        raise ValueError("cold-start delays must be non-negative")
    result = SweepResult(parameter="cold_start_seconds")
    for value in seconds:
        spec = PolicySpec(
            name=f"faro-{objective}",
            options={"faro": {"cold_start_seconds": float(value)}},
            label=f"faro-{objective}",
        )
        stats = run_policy(
            scenario,
            spec,
            trials=trials,
            simulator=simulator,
            seed=seed,
            predictor_profile=predictor_profile,
            sim_overrides={"cold_start_range": (float(value), float(value))},
        )
        result.add(value, stats)
    return result


def sweep_predictor(
    scenario: Scenario,
    kinds: tuple[str, ...] = ("persistence", "nhits"),
    objective: str = "fairsum",
    trials: int = 1,
    simulator: str = "flow",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
) -> SweepResult:
    """Compare workload predictors feeding the same Faro controller.

    ``persistence`` plans for the current rate only (the Fig. 16
    "w/o prediction" rung); ``nhits`` is the paper's trained probabilistic
    predictor.
    """
    known = {"persistence", "nhits"}
    unknown = set(kinds) - known
    if unknown:
        raise ValueError(f"unknown predictor kinds {sorted(unknown)}; choose from {sorted(known)}")
    if not kinds:
        raise ValueError("kinds must be non-empty")
    from repro.experiments.ablation import ablation_policy_factory

    result = SweepResult(parameter="predictor")
    for kind in kinds:
        if kind == "nhits":
            stats = run_trials(
                scenario,
                f"faro-{objective}",
                trials=trials,
                simulator=simulator,
                seed=seed,
                predictor_profile=predictor_profile,
            )
        else:
            # The "w/ hybrid" ablation rung is exactly Faro with the
            # persistence predictor (everything else enabled except
            # shrinking/probabilistic, which need a real predictor).
            factory = ablation_policy_factory("w/ hybrid", objective=objective)
            stats = run_trials(
                scenario,
                f"faro-{objective}-persistence",
                trials=trials,
                simulator=simulator,
                seed=seed,
                policy_factory=factory,
            )
        result.add(kind, stats)
    return result
