"""Fig. 10: lost cluster utility and SLO violation rate at RS/SO/HO sizes.

Paper (cluster sizes 36/32/16 total replicas):

=========== ===== ===== ===== ===== =====
metric       FairShare Oneshot AIAD Mark Faro
RS lost      2.42  4.34  1.45  0.81  0.48
SO lost      2.42  4.83  1.96  2.02  0.79
HO lost      8.71  7.58  7.66  6.86  5.71
=========== ===== ===== ===== ===== =====

Shape: Faro lowest everywhere; margins shrink as the cluster becomes
heavily oversubscribed.
"""

from benchmarks.conftest import HEADLINE_POLICIES, write_result
from repro.experiments.report import format_table

PAPER_LOST = {
    "RS": {"fairshare": 2.42, "oneshot": 4.34, "aiad": 1.45, "mark": 0.81, "faro-fairsum": 0.48},
    "SO": {"fairshare": 2.42, "oneshot": 4.83, "aiad": 1.96, "mark": 2.02, "faro-fairsum": 0.79},
    "HO": {"fairshare": 8.71, "oneshot": 7.58, "aiad": 7.66, "mark": 6.86, "faro-fairsum": 5.71},
}
PAPER_VIOL = {
    "RS": {"fairshare": 0.22, "oneshot": 0.37, "aiad": 0.09, "mark": 0.07, "faro-fairsum": 0.03},
    "SO": {"fairshare": 0.22, "oneshot": 0.42, "aiad": 0.14, "mark": 0.18, "faro-fairsum": 0.05},
    "HO": {"fairshare": 0.84, "oneshot": 0.72, "aiad": 0.72, "mark": 0.63, "faro-fairsum": 0.55},
}
# The paper uses Faro-FairSum at RS/SO and Faro-Sum at HO.
FARO_BY_SIZE = {"RS": "faro-fairsum", "SO": "faro-fairsum", "HO": "faro-sum"}


def test_fig10_baseline_comparison(benchmark, bench_cache):
    def run():
        stats = {}
        for size in ("RS", "SO", "HO"):
            policies = tuple(
                FARO_BY_SIZE[size] if p == "faro-fairsum" else p
                for p in HEADLINE_POLICIES
            )
            stats[size] = {p: bench_cache.run(size, p) for p in policies}
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for size in ("RS", "SO", "HO"):
        for policy, st in stats[size].items():
            paper_key = "faro-fairsum" if policy.startswith("faro") else policy
            rows.append(
                (
                    f"{size}/{policy}",
                    f"lost={PAPER_LOST[size][paper_key]:.2f} viol={PAPER_VIOL[size][paper_key]:.2f}",
                    f"lost={st.lost_utility_mean:.2f} viol={st.violation_rate_mean:.2f}",
                )
            )
    text = format_table(
        ["size/policy", "paper", "measured"],
        rows,
        title="== Fig. 10: lost utility + violation rate at RS(36)/SO(32)/HO(16) ==",
    )
    write_result("fig10_baselines", text)

    for size in ("RS", "SO", "HO"):
        lost = {p: s.lost_utility_mean for p, s in stats[size].items()}
        faro_key = [p for p in lost if p.startswith("faro")][0]
        assert lost[faro_key] == min(lost.values()), f"Faro not best at {size}"
    # Degradation shape: everything gets much worse at HO.
    ho_faro = [s for p, s in stats["HO"].items() if p.startswith("faro")][0]
    rs_faro = [s for p, s in stats["RS"].items() if p.startswith("faro")][0]
    assert ho_faro.lost_utility_mean > rs_faro.lost_utility_mean
