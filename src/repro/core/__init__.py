"""Faro's core contribution (paper §3-§4).

Layout:

- :mod:`repro.core.utility` -- per-job utility functions (§3.1).
- :mod:`repro.core.penalty` -- drop-penalty / effective utility (§3.2, Table 5).
- :mod:`repro.core.objectives` -- the five cluster objective functions (§3.2).
- :mod:`repro.core.latency` -- upper-bound and M/D/c latency estimators and
  their plateau-free relaxations (§3.3-§3.4).
- :mod:`repro.core.optimizer` -- precise and relaxed cluster optimization,
  solver wrappers and integer post-processing (§3.4).
- :mod:`repro.core.interp` -- the batched table-interpolation kernel
  (numpy reference + optional bit-identical numba JIT).
- :mod:`repro.core.batched_solver` -- batched first-order solver
  (projected gradient ascent, ``method="pgd"``).
- :mod:`repro.core.hierarchical` -- grouped (hierarchical) optimization (§3.4).
- :mod:`repro.core.autoscaler` -- the three-stage multi-tenant autoscaler (§4).
- :mod:`repro.core.hybrid` -- hybrid long-term predictive + short-term
  reactive controller (§4.4).
"""

from repro.core.utility import inverse_utility, step_utility, utility_from_slo
from repro.core.penalty import (
    PENALTY_BRACKETS,
    effective_utility,
    penalty_multiplier,
    penalty_multiplier_relaxed,
    service_credit,
)
from repro.core.objectives import ClusterObjective, make_objective
from repro.core.latency import LatencyModel, UPPER_BOUND, MDC, RELAXED_MDC
from repro.core.optimizer import (
    DEFAULT_TABLE_CACHE,
    Allocation,
    AllocationProblem,
    OptimizationJob,
    UtilityTableCache,
    solve_allocation,
    warm_start_vector,
)
from repro.core.batched_solver import PGDOptions, solve_pgd
from repro.core.hierarchical import solve_hierarchical
from repro.core.autoscaler import FaroAutoscaler, FaroConfig
from repro.core.hybrid import HybridAutoscaler, ReactiveConfig
from repro.core.pipelines import PipelineSpec, pipeline_latency, split_pipeline

__all__ = [
    "step_utility",
    "inverse_utility",
    "utility_from_slo",
    "PENALTY_BRACKETS",
    "service_credit",
    "penalty_multiplier",
    "penalty_multiplier_relaxed",
    "effective_utility",
    "ClusterObjective",
    "make_objective",
    "LatencyModel",
    "UPPER_BOUND",
    "MDC",
    "RELAXED_MDC",
    "OptimizationJob",
    "AllocationProblem",
    "Allocation",
    "solve_allocation",
    "warm_start_vector",
    "UtilityTableCache",
    "DEFAULT_TABLE_CACHE",
    "PGDOptions",
    "solve_pgd",
    "solve_hierarchical",
    "FaroAutoscaler",
    "FaroConfig",
    "HybridAutoscaler",
    "ReactiveConfig",
    "PipelineSpec",
    "split_pipeline",
    "pipeline_latency",
]
