"""Pass ``determinism``: no ambient randomness or wall-clock in sim paths.

Byte-identity under refactor -- the repo's load-bearing invariant -- dies
the moment a simulation path draws from process-global RNG state or reads
the wall clock.  This pass flags, anywhere in the tree:

- calls through the stdlib ``random`` module's *module-level* API
  (``random.random()``, ``random.shuffle()``, even ``random.seed()``:
  global-state seeding is still shared mutable state).  Constructing an
  explicit ``random.Random(seed)`` instance is fine;
- calls through numpy's legacy global RNG (``np.random.rand()``,
  ``np.random.shuffle()``, ...).  The sanctioned route is an explicit
  ``np.random.default_rng(seed)`` / ``Generator`` threaded through
  parameters;
- ``np.random.default_rng()`` / ``np.random.RandomState()`` *without a
  seed argument* -- an OS-entropy generator is exactly the
  nondeterminism the explicit-Generator convention exists to prevent;

and, inside the simulation-path packages only (``modules`` option):

- wall-clock and entropy reads: ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``uuid.uuid1``/``uuid4``,
  ``os.urandom``, and anything from ``secrets``.  Telemetry timers
  (``time.perf_counter``) are deliberately allowed: they time solves,
  they never steer them.

The online-serving package (``serve_modules`` option) gets a *stricter*
rule: there even the telemetry timers (``time.monotonic``,
``time.perf_counter``, ``time.sleep``) are flagged, because in the serve
loop timers *do* steer behaviour (deadline overruns, pacing).  All
wall-clock access must go through the injectable clock in
``clock_modules`` (``repro.serve.clock``), the one sanctioned boundary --
which is itself exempt.  That confinement is what lets the same loop run
digest-reproducibly on a virtual clock and live on a wall clock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding, ModuleContext
from repro.analysis.registry import register_pass

__all__ = ["DeterminismOptions", "check_determinism"]

PASS_ID = "determinism"

#: numpy.random attributes that construct explicit generators (allowed).
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Constructors that are only deterministic when given a seed argument.
_NEEDS_SEED = frozenset({"default_rng", "RandomState", "SeedSequence"})

#: stdlib ``random`` attributes that are explicit-instance constructors.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: (module, attribute) wall-clock/entropy reads flagged inside sim paths.
#: ``attribute is None`` flags every call through the module.
_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("os", "urandom"),
}

#: Additional (module, attribute) clock calls flagged only inside the
#: serving package: timers steer the serve loop (deadlines, pacing), so
#: outside the sanctioned clock module they break replayability.
_SERVE_CLOCK_CALLS = {
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "sleep"),
}


@dataclass(frozen=True)
class DeterminismOptions:
    """Where the wall-clock rules apply (RNG rules apply everywhere)."""

    #: Dotted module prefixes forming the simulation path: code here feeds
    #: digests and reports, so clock reads are as fatal as global RNG.
    modules: tuple[str, ...] = (
        "repro.sim",
        "repro.queueing",
        "repro.hetero",
        "repro.api.parallel",
    )
    #: The online-serving package: the strict rule (telemetry timers and
    #: sleeps flagged too) applies here, except in ``clock_modules``.
    serve_modules: tuple[str, ...] = ("repro.serve",)
    #: The sanctioned wall-clock boundary; exempt from all clock findings.
    clock_modules: tuple[str, ...] = ("repro.serve.clock",)


class _ImportTracker(ast.NodeVisitor):
    """Map local names to the canonical modules/functions they refer to."""

    def __init__(self) -> None:
        #: local alias -> dotted module ("np" -> "numpy").
        self.modules: dict[str, str] = {}
        #: local name -> (source module, original name) for from-imports.
        self.names: dict[str, tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.names[alias.asname or alias.name] = (node.module, alias.name)


def _attribute_chain(node: ast.AST) -> list[str] | None:
    """``np.random.rand`` -> ["np", "random", "rand"]; None for non-chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _canonical_call(
    chain: list[str], imports: _ImportTracker
) -> tuple[str, str] | None:
    """Resolve a call chain to (dotted module, attribute) via the imports."""
    head = chain[0]
    if head in imports.modules:
        module = imports.modules[head]
        rest = chain[1:]
    elif head in imports.names:
        source, original = imports.names[head]
        module = f"{source}.{original}" if len(chain) > 1 else source
        rest = chain[1:] if len(chain) > 1 else [original]
    else:
        return None
    if not rest:
        return None
    return ".".join([module, *rest[:-1]]), rest[-1]


def _has_seed_argument(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg in ("seed", "x") or kw.arg is None for kw in node.keywords)


def check_determinism(
    context: ModuleContext, options: DeterminismOptions | None
) -> list[Finding]:
    options = options or DeterminismOptions()
    imports = _ImportTracker()
    imports.visit(context.tree)
    in_sim_path = context.in_modules(options.modules)
    in_clock_module = context.in_modules(options.clock_modules)
    in_serve_path = (
        context.in_modules(options.serve_modules) and not in_clock_module
    )

    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if chain is None:
            continue
        resolved = _canonical_call(chain, imports)
        if resolved is None:
            continue
        module, attr = resolved

        if module == "random" and attr not in _STDLIB_RANDOM_ALLOWED:
            findings.append(
                context.finding(
                    PASS_ID,
                    node,
                    f"random.{attr}() draws from process-global RNG state; "
                    "construct random.Random(seed) and thread it through",
                )
            )
        elif module == "numpy.random":
            if attr not in _NP_RANDOM_CONSTRUCTORS:
                findings.append(
                    context.finding(
                        PASS_ID,
                        node,
                        f"np.random.{attr}() uses numpy's global RNG; route "
                        "through an explicit np.random.default_rng(seed)",
                    )
                )
            elif attr in _NEEDS_SEED and not _has_seed_argument(node):
                findings.append(
                    context.finding(
                        PASS_ID,
                        node,
                        f"np.random.{attr}() without a seed pulls OS entropy; "
                        "pass an explicit seed or SeedSequence",
                    )
                )
        else:
            key = (module.rsplit(".", 1)[-1], attr)
            is_entropy = (
                key in _CLOCK_CALLS
                or module == "secrets"
                or module.startswith("secrets.")
            )
            if in_serve_path and (is_entropy or key in _SERVE_CLOCK_CALLS):
                findings.append(
                    context.finding(
                        PASS_ID,
                        node,
                        f"{'.'.join(chain)}() reads the wall clock inside the "
                        f"serving package ({context.module}); all clock access "
                        "must go through the injectable repro.serve.clock "
                        "boundary so serve runs stay replayable",
                    )
                )
            elif in_sim_path and not in_clock_module and is_entropy:
                findings.append(
                    context.finding(
                        PASS_ID,
                        node,
                        f"{'.'.join(chain)}() reads wall-clock/OS entropy "
                        f"inside a simulation-path module ({context.module}); "
                        "derive it from the scenario seed or pass it in as a "
                        "parameter",
                    )
                )
    return findings


register_pass(
    PASS_ID,
    description=(
        "Global RNG (random.*, np.random.*), unseeded default_rng, "
        "wall-clock/uuid reads in simulation-path modules, and any clock "
        "access in repro.serve outside the repro.serve.clock boundary."
    ),
    config_type=DeterminismOptions,
)(check_determinism)
