"""Prometheus-format telemetry for the simulated cluster.

The paper's deployment feeds dashboards from the modified Ray Router's
metrics endpoint (§5); this module renders the equivalent metrics in the
Prometheus text exposition format so the simulated cluster can be scraped
(or snapshotted into files) exactly like the real one -- and so downstream
users wiring the library into a live control plane get the export layer
for free.

Only the subset of the exposition format the metrics need is implemented:
``# HELP`` / ``# TYPE`` headers, gauges, counters, and escaped label
values.
"""

from __future__ import annotations

from repro.cluster.rayserve import RayServeCluster
from repro.sim.recorder import SimulationResult

__all__ = ["render_cluster_metrics", "render_result_metrics"]


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _line(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}} {value:g}"
    return f"{name} {value:g}"


def _block(name: str, kind: str, help_text: str, samples: list[tuple[dict, float]]) -> list[str]:
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]
    lines.extend(_line(name, labels, value) for labels, value in samples)
    return lines


def render_cluster_metrics(cluster: RayServeCluster, now: float) -> str:
    """Current cluster state as Prometheus exposition text.

    Counters come from each router's lifetime totals; gauges reflect the
    instantaneous state at ``now``.
    """
    per_job = lambda fn: [({"job": name}, float(fn(name))) for name in cluster.jobs]
    blocks = [
        _block(
            "faro_job_target_replicas",
            "gauge",
            "Replica target set by the autoscaler.",
            per_job(lambda n: cluster.targets[n]),
        ),
        _block(
            "faro_job_replicas",
            "gauge",
            "Replicas that exist (running or cold-starting).",
            per_job(lambda n: cluster.routers[n].replica_count),
        ),
        _block(
            "faro_job_ready_replicas",
            "gauge",
            "Replicas past their cold start.",
            per_job(lambda n: cluster.routers[n].ready_replica_count(now)),
        ),
        _block(
            "faro_job_queue_length",
            "gauge",
            "Requests accepted but not yet started at the router.",
            per_job(lambda n: cluster.routers[n].queue_length(now)),
        ),
        _block(
            "faro_job_drop_rate",
            "gauge",
            "Explicit drop directive currently applied (penalty variants).",
            per_job(lambda n: cluster.routers[n].drop_rate),
        ),
        _block(
            "faro_router_arrivals_total",
            "counter",
            "Requests offered to the router.",
            per_job(lambda n: cluster.routers[n].totals.arrivals),
        ),
        _block(
            "faro_router_served_total",
            "counter",
            "Requests dispatched to a replica.",
            per_job(lambda n: cluster.routers[n].totals.served),
        ),
        _block(
            "faro_router_dropped_total",
            "counter",
            "Requests dropped (tail drop + explicit directives).",
            per_job(lambda n: cluster.routers[n].totals.dropped),
        ),
        _block(
            "faro_replica_failures_total",
            "counter",
            "Replicas killed by fault injection.",
            per_job(lambda n: cluster.routers[n].totals.failures),
        ),
    ]
    return "\n".join(line for block in blocks for line in block) + "\n"


def render_result_metrics(result: SimulationResult) -> str:
    """Run-level summary of one :class:`SimulationResult` as exposition text."""
    policy = {"policy": result.policy_name}
    per_job_violations = [
        ({"job": name, **policy}, float(series.slo_violation_rate))
        for name, series in result.jobs.items()
    ]
    per_job_drops = [
        ({"job": name, **policy}, float(series.drop_fraction))
        for name, series in result.jobs.items()
    ]
    blocks = [
        _block(
            "faro_run_cluster_slo_violation_rate",
            "gauge",
            "Average of per-job SLO violation rates over the run.",
            [(policy, float(result.cluster_slo_violation_rate))],
        ),
        _block(
            "faro_run_lost_cluster_utility",
            "gauge",
            "Max possible minus achieved cluster utility (paper Eq. 4).",
            [(policy, float(result.avg_lost_cluster_utility))],
        ),
        _block(
            "faro_run_job_slo_violation_rate",
            "gauge",
            "Per-job SLO violation rate over the run.",
            per_job_violations,
        ),
        _block(
            "faro_run_job_drop_fraction",
            "gauge",
            "Per-job fraction of requests dropped.",
            per_job_drops,
        ),
    ]
    return "\n".join(line for block in blocks for line in block) + "\n"
