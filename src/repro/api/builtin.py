"""Built-in policy registrations: Faro variants, baselines, controllers.

Importing :mod:`repro.api` loads this module, which registers every policy
the paper's evaluation uses -- the five Faro variants (kind ``"faro"``),
the five baselines (kind ``"baseline"``), and the decentralized/flat Faro
controllers (kind ``"controller"``) -- on the default registry.  The
construction logic here is the single source of truth; the legacy
``repro.experiments.policies.make_policy`` shim routes through it.

Registration order matters: ``kind="faro"`` and ``kind="baseline"`` names
are re-exported (in order) as the legacy ``ALL_FARO_VARIANTS`` and
``ALL_BASELINES`` tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.api.registry import register_policy
from repro.baselines import (
    AIADPolicy,
    CilantroLikePolicy,
    FairSharePolicy,
    MarkPolicy,
    OneshotPolicy,
)
from repro.core.autoscaler import FaroAutoscaler, FaroConfig, JobSpec
from repro.core.decentralized import DecentralizedFaro, RebalanceConfig
from repro.core.hybrid import HybridAutoscaler, ReactiveConfig
from repro.core.optimizer import ClusterCapacity
from repro.experiments.policies import PredictorProfile, train_predictors
from repro.experiments.scenarios import Scenario
from repro.forecast.predictor import ForecastWorkloadPredictor
from repro.policy import AutoscalePolicy

__all__ = [
    "FaroOptions",
    "DecentralizedFaroOptions",
    "FairShareOptions",
    "OneshotOptions",
    "AIADOptions",
    "MarkOptions",
    "CilantroOptions",
    "coerce_predictor_profile",
]

_FARO_CONFIG_FIELDS = {f.name for f in fields(FaroConfig)}


def coerce_predictor_profile(value: Any) -> PredictorProfile | None:
    """Accept a profile as instance, preset name, or field mapping.

    Spec files carry ``"fast"``/``"paper"`` or a mapping of
    :class:`PredictorProfile` fields; Python callers may pass an instance.
    """
    if value is None or isinstance(value, PredictorProfile):
        return value
    if isinstance(value, str):
        presets = {"fast": PredictorProfile.fast, "paper": PredictorProfile.paper}
        if value.lower() not in presets:
            raise ValueError(
                f"unknown predictor profile {value!r}; expected one of "
                f"{sorted(presets)} or a field mapping"
            )
        return presets[value.lower()]()
    if isinstance(value, Mapping):
        known = {f.name for f in fields(PredictorProfile)}
        unknown = set(value) - known
        if unknown:
            raise ValueError(
                f"unknown predictor-profile field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        return PredictorProfile(**value)
    raise TypeError(f"cannot interpret predictor profile {value!r}")


def _faro_config(overrides: Mapping[str, Any], objective: str, seed: int) -> FaroConfig:
    """FaroConfig from spec overrides; unknown fields raise ValueError."""
    data = dict(overrides)
    unknown = set(data) - _FARO_CONFIG_FIELDS
    if unknown:
        raise ValueError(
            f"unknown FaroConfig field(s) {sorted(unknown)}; "
            f"accepted: {sorted(_FARO_CONFIG_FIELDS)}"
        )
    data.setdefault("objective", objective)
    data.setdefault("seed", seed)
    return FaroConfig(**data)


def _job_specs(scenario: Scenario) -> list[JobSpec]:
    return [
        JobSpec(
            name=job.name,
            slo=job.slo,
            proc_time=job.model.proc_time,
            priority=job.priority,
            cpu_per_replica=job.model.cpu_per_replica,
            mem_per_replica=job.model.mem_per_replica,
            min_replicas=job.min_replicas,
        )
        for job in scenario.jobs
    ]


def _trained_predictors(
    scenario: Scenario,
    profile: PredictorProfile | None,
    seed: int,
    seed_offset: int = 0,
) -> dict[str, ForecastWorkloadPredictor]:
    """Shared trained forecasters wrapped per-policy with their own RNGs.

    Forecasters are trained on requests/minute; controller histories are
    requests/second, hence the fixed ``history_scale=60``.
    """
    forecasters = train_predictors(scenario, profile, seed=0)
    return {
        name: ForecastWorkloadPredictor(
            f, history_scale=60.0, seed=seed + seed_offset + i
        )
        for i, (name, f) in enumerate(forecasters.items())
    }


# ------------------------------------------------------------ Faro variants


@dataclass(frozen=True)
class FaroOptions:
    """Options shared by every Faro variant.

    ``faro`` holds :class:`FaroConfig` field overrides (the spec-file
    counterpart of the old ``faro_overrides`` argument) -- e.g.
    ``{"solver": "pgd", "solver_options": {"maxiter": 40}}`` selects the
    batched first-order solver with method-specific knobs
    (:class:`~repro.core.batched_solver.PGDOptions` fields).
    ``hybrid=False`` drops the short-term reactive path (long-term
    optimizer only); ``use_trained_predictor=False`` falls back to the
    persistence predictor.
    """

    hybrid: bool = True
    use_trained_predictor: bool = True
    predictor_profile: Any = None
    faro: dict[str, Any] = field(default_factory=dict)

    def profile(self) -> PredictorProfile | None:
        return coerce_predictor_profile(self.predictor_profile)


def _build_faro(objective: str):
    def build(scenario: Scenario, seed: int, options: FaroOptions) -> AutoscalePolicy:
        options = options or FaroOptions()
        config = _faro_config(options.faro, objective, seed)
        predictors = {}
        if options.use_trained_predictor:
            predictors = _trained_predictors(scenario, options.profile(), seed)
        faro = FaroAutoscaler(
            _job_specs(scenario),
            ClusterCapacity.of_replicas(scenario.total_replicas),
            config=config,
            predictors=predictors,
        )
        if not options.hybrid:
            faro.tick_interval = 10.0  # still polled frequently; solves on period
            return faro
        return HybridAutoscaler(
            faro, ReactiveConfig(), capacity_replicas=scenario.total_replicas
        )

    return build


_FARO_VARIANTS = (
    ("faro-sum", "Faro maximizing total cluster utility (Sum).", ()),
    ("faro-fair", "Faro maximizing the worst job's utility (Fair).", ()),
    (
        "faro-fairsum",
        "Faro's headline objective: fairness-regularized sum (FairSum).",
        ("faro",),
    ),
    ("faro-penaltysum", "Sum with priority penalties (PenaltySum).", ()),
    (
        "faro-penaltyfairsum",
        "FairSum with priority penalties (PenaltyFairSum).",
        (),
    ),
)

for _name, _desc, _aliases in _FARO_VARIANTS:
    register_policy(
        _name,
        kind="faro",
        description=_desc,
        config_type=FaroOptions,
        aliases=_aliases,
    )(_build_faro(_name.removeprefix("faro-")))


# -------------------------------------------------------------- controllers


@dataclass(frozen=True)
class DecentralizedFaroOptions:
    """Options for the decentralized (per-group) Faro controller."""

    num_groups: int = 2
    objective: str = "fairsum"
    use_trained_predictor: bool = True
    predictor_profile: Any = None
    faro: dict[str, Any] = field(default_factory=dict)
    max_transfer: int = 4
    demand_quantile: float = 0.9

    def profile(self) -> PredictorProfile | None:
        return coerce_predictor_profile(self.predictor_profile)


@register_policy(
    "faro-decentralized",
    kind="controller",
    description=(
        "Per-group Faro controllers coordinated only through periodic "
        "share rebalancing (scales past a single solver)."
    ),
    config_type=DecentralizedFaroOptions,
)
def _build_decentralized(
    scenario: Scenario, seed: int, options: DecentralizedFaroOptions
) -> AutoscalePolicy:
    options = options or DecentralizedFaroOptions()
    config = _faro_config(options.faro, options.objective, seed)
    predictors = None
    if options.use_trained_predictor:
        predictors = _trained_predictors(scenario, options.profile(), seed)
    rebalance = RebalanceConfig(
        max_transfer=options.max_transfer, demand_quantile=options.demand_quantile
    )
    return DecentralizedFaro(
        jobs=_job_specs(scenario),
        total_replicas=scenario.total_replicas,
        num_groups=options.num_groups,
        config=config,
        rebalance=rebalance,
        predictors=predictors,
    )


# ---------------------------------------------------------------- baselines


@dataclass(frozen=True)
class FairShareOptions:
    min_replicas: int = 1


@register_policy(
    "fairshare",
    kind="baseline",
    description="Static equal split, no autoscaling (Clipper/TF-Serving).",
    config_type=FairShareOptions,
)
def _build_fairshare(
    scenario: Scenario, seed: int, options: FairShareOptions
) -> AutoscalePolicy:
    options = options or FairShareOptions()
    return FairSharePolicy(
        total_replicas=scenario.total_replicas, min_replicas=options.min_replicas
    )


@dataclass(frozen=True)
class OneshotOptions:
    up_hold: float = 30.0
    down_hold: float = 300.0
    min_replicas: int = 1
    max_factor: float = 8.0


@register_policy(
    "oneshot",
    kind="baseline",
    description="Reactive proportional one-shot scaling (K8s HPA/Ray Serve).",
    config_type=OneshotOptions,
)
def _build_oneshot(
    scenario: Scenario, seed: int, options: OneshotOptions
) -> AutoscalePolicy:
    options = options or OneshotOptions()
    return OneshotPolicy(
        slos=scenario.slos,
        up_hold=options.up_hold,
        down_hold=options.down_hold,
        min_replicas=options.min_replicas,
        max_factor=options.max_factor,
    )


@dataclass(frozen=True)
class AIADOptions:
    up_hold: float = 30.0
    down_hold: float = 300.0
    step: int = 1
    min_replicas: int = 1
    underload_margin: float = 0.7


@register_policy(
    "aiad",
    kind="baseline",
    description="Additive-increase/additive-decrease per job (INFaaS).",
    config_type=AIADOptions,
)
def _build_aiad(scenario: Scenario, seed: int, options: AIADOptions) -> AutoscalePolicy:
    options = options or AIADOptions()
    return AIADPolicy(
        slos=scenario.slos,
        up_hold=options.up_hold,
        down_hold=options.down_hold,
        step=options.step,
        min_replicas=options.min_replicas,
        underload_margin=options.underload_margin,
    )


@dataclass(frozen=True)
class MarkOptions:
    predictor_profile: Any = None
    proactive_period: float = 300.0
    horizon_steps: int = 7
    target_utilization: float = 0.9
    up_hold: float = 30.0
    min_replicas: int = 1

    def profile(self) -> PredictorProfile | None:
        return coerce_predictor_profile(self.predictor_profile)


@register_policy(
    "mark",
    kind="baseline",
    description=(
        "Proactive per-job provisioning from replica max-throughput "
        "(MArk/Cocktail/Barista)."
    ),
    config_type=MarkOptions,
)
def _build_mark(scenario: Scenario, seed: int, options: MarkOptions) -> AutoscalePolicy:
    options = options or MarkOptions()
    predictors = _trained_predictors(
        scenario, options.profile(), seed, seed_offset=71
    )
    return MarkPolicy(
        proc_times=scenario.proc_times,
        slos=scenario.slos,
        predictors=predictors,
        proactive_period=options.proactive_period,
        horizon_steps=options.horizon_steps,
        target_utilization=options.target_utilization,
        up_hold=options.up_hold,
        min_replicas=options.min_replicas,
    )


@dataclass(frozen=True)
class CilantroOptions:
    period: float = 60.0
    history_window: int = 15
    min_replicas: int = 1


@register_policy(
    "cilantro",
    kind="baseline",
    description=(
        "Feedback allocator with online-learned performance model "
        "(Cilantro, OSDI'23)."
    ),
    config_type=CilantroOptions,
)
def _build_cilantro(
    scenario: Scenario, seed: int, options: CilantroOptions
) -> AutoscalePolicy:
    options = options or CilantroOptions()
    return CilantroLikePolicy(
        proc_times=scenario.proc_times,
        slos=scenario.slos,
        total_replicas=scenario.total_replicas,
        period=options.period,
        history_window=options.history_window,
        min_replicas=options.min_replicas,
        seed=seed,
    )
