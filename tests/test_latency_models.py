"""Latency estimator tests (paper §3.3-§3.4, Fig. 6)."""

import math

import pytest

from repro.core.latency import (
    MDC,
    RELAXED_MDC,
    UPPER_BOUND,
    MDCLatency,
    RelaxedMDCLatency,
    UpperBoundLatency,
    replicas_for_slo,
)


class TestUpperBound:
    def test_paper_example_needs_ten(self):
        assert replicas_for_slo(UPPER_BOUND, 0.9999, 40.0, 0.150, 0.600) == 10

    def test_minimum_is_one_service_time(self):
        assert UPPER_BOUND.estimate(0.99, 0.5, 0.2, 8) == pytest.approx(0.2)

    def test_scales_inversely_with_replicas(self):
        one = UPPER_BOUND.estimate(0.99, 50.0, 0.2, 1)
        two = UPPER_BOUND.estimate(0.99, 50.0, 0.2, 2)
        assert one == pytest.approx(2 * two)

    def test_window_parameter(self):
        slow = UpperBoundLatency(window=2.0).estimate(0.99, 50.0, 0.2, 4)
        fast = UpperBoundLatency(window=1.0).estimate(0.99, 50.0, 0.2, 4)
        assert slow == pytest.approx(2 * fast)


class TestMDCModel:
    def test_paper_example_needs_eight(self):
        assert replicas_for_slo(MDC, 0.9999, 40.0, 0.150, 0.600) == 8

    def test_mdc_needs_fewer_than_upper_bound(self):
        # §3.3: the queueing model avoids the pessimistic over-provisioning.
        for lam in (10.0, 25.0, 40.0):
            ub = replicas_for_slo(UPPER_BOUND, 0.9999, lam, 0.15, 0.6)
            mdc = replicas_for_slo(MDC, 0.9999, lam, 0.15, 0.6)
            assert mdc <= ub

    def test_unstable_is_inf(self):
        assert math.isinf(MDC.estimate(0.99, 40.0, 0.15, 2))

    def test_fractional_replicas_interpolate(self):
        lo = MDC.estimate(0.99, 10.0, 0.15, 3)
        mid = MDC.estimate(0.99, 10.0, 0.15, 3.5)
        hi = MDC.estimate(0.99, 10.0, 0.15, 4)
        assert hi <= mid <= lo
        assert mid == pytest.approx(0.5 * (lo + hi))

    def test_zero_rate(self):
        assert MDC.estimate(0.99, 0.0, 0.15, 2) == pytest.approx(0.15)

    def test_replicas_below_one_clamped(self):
        assert MDC.estimate(0.99, 1.0, 0.15, 0.2) == MDC.estimate(0.99, 1.0, 0.15, 1)


class TestRelaxedModel:
    def test_matches_mdc_when_stable(self):
        for replicas in (4, 6, 9):
            assert RELAXED_MDC.estimate(0.99, 10.0, 0.15, replicas) == pytest.approx(
                MDC.estimate(0.99, 10.0, 0.15, replicas)
            )

    def test_finite_when_overloaded(self):
        value = RELAXED_MDC.estimate(0.99, 100.0, 0.15, 2)
        assert math.isfinite(value)
        assert value > RELAXED_MDC.estimate(0.99, 10.0, 0.15, 2)

    def test_no_plateau_monotone_in_rate(self):
        # Fig. 6 (right): overload latency keeps growing with lambda.
        values = [RELAXED_MDC.estimate(0.99, lam, 0.15, 2) for lam in (20, 40, 80, 160)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_monotone_decreasing_in_replicas(self):
        values = [RELAXED_MDC.estimate(0.99, 60.0, 0.15, x) for x in range(1, 14)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_rho_max_validation(self):
        with pytest.raises(ValueError):
            RelaxedMDCLatency(rho_max=1.0)

    def test_rho_max_closer_to_one_is_tighter(self):
        # Fig. 6: rho_max near 1 tracks the true estimate more closely.
        loose = RelaxedMDCLatency(rho_max=0.9).estimate(0.99, 100.0, 0.15, 2)
        tight = RelaxedMDCLatency(rho_max=0.999).estimate(0.99, 100.0, 0.15, 2)
        assert loose != tight


class TestReplicasForSLO:
    def test_infeasible_returns_max(self):
        assert replicas_for_slo(MDC, 0.99, 1.0, 0.5, 0.4, max_replicas=64) == 64

    def test_invalid_slo(self):
        with pytest.raises(ValueError):
            replicas_for_slo(MDC, 0.99, 1.0, 0.5, 0.0)

    def test_one_replica_suffices_for_light_load(self):
        assert replicas_for_slo(MDC, 0.99, 0.1, 0.1, 1.0) == 1
