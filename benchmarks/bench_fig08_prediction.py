"""Fig. 8: point N-HiTS misses workload fluctuation; the probabilistic
(Gaussian) variant's sample band covers the ground truth.

Paper shape: the RMSE-trained forecast is a damped average whose peak is
~2x below the true maximum over the window; Gaussian sample ranges cover
the fluctuation.  §3.5.1 also reports N-HiTS beating LSTM on RMSE.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.experiments.report import format_table
from repro.forecast import (
    LSTMForecaster,
    NHiTSConfig,
    NHiTSForecaster,
    ProphetLiteForecaster,
    coverage,
    rmse,
)
from repro.forecast.lstm import LSTMConfig
from repro.traces import standard_job_mix


def run_prediction_study():
    trace = standard_job_mix(num_jobs=1, days=3, seed=0)[0]
    train, evaluation = trace.train, trace.eval
    point = NHiTSForecaster(
        NHiTSConfig(input_size=16, horizon=8, epochs=8, probabilistic=False, loss="mse")
    ).fit(train)
    probabilistic = NHiTSForecaster(
        NHiTSConfig(input_size=16, horizon=8, epochs=8)
    ).fit(train)
    lstm = LSTMForecaster(
        LSTMConfig(input_size=16, horizon=8, epochs=4, max_windows=512)
    ).fit(train)
    prophet = ProphetLiteForecaster().fit(train)

    rng = np.random.default_rng(0)
    point_errors, lstm_errors, prophet_errors, covs, peak_ratios = [], [], [], [], []
    series = np.concatenate([train[-64:], evaluation])
    for start in range(0, len(evaluation) - 8, 29):
        history = series[start : start + 64]
        truth = series[start + 64 : start + 72]
        prediction = point.predict(history[-16:], 8)
        point_errors.append(rmse(prediction, truth))
        lstm_errors.append(rmse(lstm.predict(history[-16:], 8), truth))
        prophet_errors.append(rmse(prophet.predict(history, 8), truth))
        samples = probabilistic.sample_paths(history[-16:], 8, 100, rng=rng)
        covs.append(coverage(samples, truth, 5, 95))
        peak_ratios.append(truth.max() / max(prediction.max(), 1e-9))
    return (
        float(np.mean(point_errors)),
        float(np.mean(lstm_errors)),
        float(np.mean(prophet_errors)),
        float(np.mean(covs)),
        float(np.percentile(peak_ratios, 90)),
    )


def test_fig08_probabilistic_prediction(benchmark):
    point_rmse, lstm_rmse, prophet_rmse, cov, peak_ratio = benchmark.pedantic(
        run_prediction_study, rounds=1, iterations=1
    )
    rows = [
        ("N-HiTS RMSE (point)", "116.24 (their traces)", f"{point_rmse:.1f}"),
        ("LSTM RMSE", "123.95 (their traces)", f"{lstm_rmse:.1f}"),
        ("Prophet-style RMSE (Barista's family)", "n/a (prior work)", f"{prophet_rmse:.1f}"),
        ("p90 of true-peak / predicted-peak", ">= ~2x", f"{peak_ratio:.2f}x"),
        ("Gaussian 5-95% band coverage of truth", "covers fluctuation", f"{cov:.2f}"),
    ]
    text = format_table(
        ["metric", "paper", "measured"],
        rows,
        title="== Fig. 8: point vs probabilistic N-HiTS prediction ==",
    )
    write_result("fig08_prediction", text)
    assert point_rmse <= lstm_rmse * 1.1  # N-HiTS at least matches LSTM
    assert point_rmse <= prophet_rmse * 1.1  # ... and the Prophet family
    assert peak_ratio > 1.2  # point forecasts underestimate peaks
    assert cov > 0.6  # sample band covers most of the fluctuation
