"""Heterogeneous allocation: ILP-vs-greedy agreement and solve wall-clock.

The heterogeneity layer's quality/performance contract, pinned for the
perf gate (``tools/check_perf.py`` vs ``results/BENCH_hetero.json``):

- on small instances the ILP placement baseline and the greedy-with-repair
  solver must agree on total normalized goodput within a floor ratio
  (both report utilities under the ``throughput`` objective, so the
  numbers are directly comparable), and
- both solvers must stay interactive: they run inside the policy tick of
  every heterogeneous simulation, so a solve is bounded by a wall-clock
  ceiling rather than a relative baseline.

Instances sweep job count, device-class inventories, and per-model
throughput matrices; everything is deterministic (no RNG) so the agreement
ratios are stable across runs and machines.
"""

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.core.utility import SLO
from repro.experiments.report import format_table
from repro.hetero.allocation import (
    HeteroJob,
    HeteroProblem,
    solve_hetero_allocation,
)
from repro.hetero.ilp import solve_ilp_allocation
from repro.hetero.types import DeviceClass, DeviceFleet

#: Smallest ILP/greedy total-utility ratio the perf gate tolerates.  The
#: ILP optimizes a linear proxy of the same objective, so it may land a
#: hair above or below greedy-with-repair; large gaps mean a solver bug.
GATED_MIN_RATIO = 0.9

#: Per-solve wall-clock ceiling (seconds).  Solves run inside policy
#: ticks; an interactive bound matters more than relative drift.
GATED_SOLVE_CEILING_S = 2.0


def _instances() -> list[tuple[str, HeteroProblem]]:
    """Deterministic small instances spanning the matrix/inventory space."""
    fleets = {
        "2c": DeviceFleet(
            (
                DeviceClass(name="cpu", count=10),
                DeviceClass(
                    name="gpu-t4", count=4, speedup=4.0, cpus=2.0, mem=8.0, accels=1.0
                ),
            ),
            speedups={"resnet34": {"gpu-t4": 6.0}, "resnet18": {"gpu-t4": 3.2}},
        ),
        "3c": DeviceFleet(
            (
                DeviceClass(name="cpu", count=8),
                DeviceClass(
                    name="gpu-t4", count=3, speedup=4.0, cpus=2.0, mem=8.0, accels=1.0
                ),
                DeviceClass(
                    name="gpu-v100",
                    count=2,
                    speedup=8.0,
                    cpus=4.0,
                    mem=16.0,
                    accels=1.0,
                ),
            ),
            speedups={"resnet34": {"gpu-t4": 6.0, "gpu-v100": 10.0}},
        ),
    }
    # "low" leaves the fleet slack (both solvers should saturate goodput);
    # "high" oversubscribes it (rates are in the fleet's aggregate
    # service-rate class), forcing real trade-offs between jobs/classes.
    loads = {
        "low": (3.0, 5.0, 2.0, 4.0),
        "high": (150.0, 260.0, 120.0, 200.0),
    }
    instances = []
    for fleet_name, fleet in fleets.items():
        for load_name, rates in loads.items():
            jobs = [
                HeteroJob(
                    name=f"job{i}",
                    slo=SLO(target=0.72 if i % 2 == 0 else 0.4),
                    proc_time=0.18 if i % 2 == 0 else 0.10,
                    arrival_rate=rate,
                    priority=1.0 + 0.5 * (i % 2),
                )
                for i, rate in enumerate(rates[: 2 + (fleet_name == "3c")])
            ]
            model = {True: "resnet34", False: "resnet18"}
            overrides = {
                job.name: {
                    cls.name: fleet.speedup_for(
                        model[job.proc_time == 0.18], cls.name
                    )
                    for cls in fleet.classes
                }
                for job in jobs
            }
            problem = HeteroProblem(
                jobs=jobs,
                types=fleet.replica_types(),
                capacity=fleet.capacity(),
                objective="throughput",
                type_counts=fleet.counts(),
                speedup_overrides=overrides,
            )
            instances.append((f"{fleet_name}-{load_name}", problem))
    return instances


def run_hetero_bench() -> dict:
    points = []
    ratios = []
    greedy_wall = ilp_wall = 0.0
    for name, problem in _instances():
        started = time.perf_counter()
        greedy = solve_hetero_allocation(problem)
        greedy_s = time.perf_counter() - started
        started = time.perf_counter()
        ilp = solve_ilp_allocation(problem)
        ilp_s = time.perf_counter() - started
        greedy_wall = max(greedy_wall, greedy_s)
        ilp_wall = max(ilp_wall, ilp_s)
        base = max(greedy.total_utility, 1e-12)
        ratio = ilp.total_utility / base
        ratios.append(ratio)
        points.append(
            {
                "name": name,
                "greedy_utility": greedy.total_utility,
                "ilp_utility": ilp.total_utility,
                "ratio": ratio,
                "greedy_wall_s": greedy_s,
                "ilp_wall_s": ilp_s,
            }
        )
    return {
        "min_ratio": min(ratios),
        "gated_min_ratio": GATED_MIN_RATIO,
        "greedy_wall_s": greedy_wall,
        "ilp_wall_s": ilp_wall,
        "gated_solve_ceiling_s": GATED_SOLVE_CEILING_S,
        "points": points,
    }


def test_hetero_policies_bench(benchmark):
    data = benchmark.pedantic(run_hetero_bench, rounds=1, iterations=1)

    rows = [
        [
            p["name"],
            f"{p['greedy_utility']:.3f}",
            f"{p['ilp_utility']:.3f}",
            f"{p['ratio']:.3f}",
            f"{p['greedy_wall_s'] * 1000:.1f}ms",
            f"{p['ilp_wall_s'] * 1000:.1f}ms",
        ]
        for p in data["points"]
    ]
    text = format_table(
        ["instance", "greedy", "ilp", "ilp/greedy", "greedy wall", "ilp wall"],
        rows,
        title="== Heterogeneous allocation: ILP vs greedy-with-repair ==",
    )
    write_result("hetero_policies", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_hetero.json").write_text(json.dumps(data, indent=2) + "\n")

    assert data["min_ratio"] >= GATED_MIN_RATIO
    assert data["greedy_wall_s"] < GATED_SOLVE_CEILING_S
    assert data["ilp_wall_s"] < GATED_SOLVE_CEILING_S
