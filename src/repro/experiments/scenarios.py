"""Experiment scenarios matching the paper's setups (§6).

A :class:`Scenario` bundles the job specs, their evaluation-day traces, the
predictor training series, and the cluster size.  The paper's cluster sizes
(total replicas): right-sized RS = 36, slightly oversubscribed SO = 32,
heavily oversubscribed HO = 16, for the 10-job mix at 1-1600 req/min with
ResNet34 (180 ms, SLO 720 ms p99).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.job import InferenceJobSpec
from repro.cluster.models import RESNET18, RESNET34, ModelProfile
from repro.traces.library import JobTrace, standard_job_mix

__all__ = [
    "CLUSTER_SIZES",
    "Scenario",
    "paper_scenario",
    "mixed_model_scenario",
    "large_scale_scenario",
]

#: Paper cluster sizes (total replicas) for the 10-job mix.
CLUSTER_SIZES: dict[str, int] = {"RS": 36, "SO": 32, "HO": 16}


@dataclass
class Scenario:
    """One experiment configuration."""

    name: str
    jobs: list[InferenceJobSpec]
    eval_traces: dict[str, np.ndarray]
    train_traces: dict[str, np.ndarray]
    total_replicas: int
    duration_minutes: int
    rate_scale: float = 1.0
    history_prefix: dict[str, np.ndarray] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    #: Optional heterogeneous fleet (:class:`repro.hetero.types.DeviceFleet`).
    #: None -- the default, and the only case for factory-built scenarios --
    #: means the homogeneous replica pool of the paper.
    devices: object | None = None

    def __post_init__(self) -> None:
        names = {job.name for job in self.jobs}
        if set(self.eval_traces) < names or set(self.train_traces) < names:
            raise ValueError("every job needs eval and train traces")
        if self.total_replicas < len(self.jobs):
            raise ValueError(
                f"cluster of {self.total_replicas} replicas cannot host "
                f"{len(self.jobs)} jobs at one replica minimum"
            )
        if self.devices is not None and self.devices.total_count() != self.total_replicas:
            raise ValueError(
                f"device classes provide {self.devices.total_count()} slots but "
                f"total_replicas is {self.total_replicas}"
            )

    @property
    def job_names(self) -> list[str]:
        return [job.name for job in self.jobs]

    @property
    def slos(self) -> dict[str, float]:
        return {job.name: job.slo.target for job in self.jobs}

    @property
    def proc_times(self) -> dict[str, float]:
        return {job.name: job.model.proc_time for job in self.jobs}


def _build_scenario(
    name: str,
    mix: list[JobTrace],
    models: list[ModelProfile],
    total_replicas: int,
    duration_minutes: int | None,
    rate_scale: float,
    eval_offset_minutes: int,
) -> Scenario:
    jobs = [
        InferenceJobSpec.with_default_slo(trace.name, model)
        for trace, model in zip(mix, models)
    ]
    eval_traces = {}
    history_prefix = {}
    prefix_minutes = 16
    for trace in mix:
        series = trace.eval
        if eval_offset_minutes:
            series = series[eval_offset_minutes:]
        if duration_minutes:
            series = series[:duration_minutes]
        eval_traces[trace.name] = series
        # The minutes immediately preceding the evaluation window seed the
        # predictors' rate histories (a real deployment has been running).
        full = trace.rates_per_min
        cut = trace.train.shape[0] + eval_offset_minutes
        history_prefix[trace.name] = full[max(cut - prefix_minutes, 0) : cut]
    minutes = min(len(series) for series in eval_traces.values())
    eval_traces = {name_: series[:minutes] for name_, series in eval_traces.items()}
    return Scenario(
        name=name,
        jobs=jobs,
        eval_traces=eval_traces,
        train_traces={trace.name: trace.train for trace in mix},
        total_replicas=total_replicas,
        duration_minutes=minutes,
        rate_scale=rate_scale,
        history_prefix=history_prefix,
    )


def paper_scenario(
    size: str = "SO",
    num_jobs: int = 10,
    duration_minutes: int | None = 360,
    rate_scale: float = 1.0,
    days: int = 11,
    rate_hi: float = 1600.0,
    eval_offset_minutes: int = 480,
    seed: int = 0,
) -> Scenario:
    """The paper's main setup: 10 ResNet34 jobs, Azure+Twitter traces.

    ``size`` picks the cluster ("RS"/"SO"/"HO" or an explicit replica
    count).  ``duration_minutes`` trims the evaluation day (the paper's
    cluster runs compress the day into ~6 hours; benches use shorter
    windows).  ``eval_offset_minutes`` skips into the evaluation day so the
    window covers rising diurnal load rather than the quiet early morning.
    """
    if isinstance(size, str):
        if size not in CLUSTER_SIZES:
            raise ValueError(f"unknown size {size!r}; expected one of {list(CLUSTER_SIZES)}")
        total = CLUSTER_SIZES[size]
        label = size
    else:
        total = int(size)
        label = str(size)
    mix = standard_job_mix(num_jobs=num_jobs, days=days, rate_hi=rate_hi, seed=seed)
    models = [RESNET34] * num_jobs
    scenario = _build_scenario(
        name=f"paper-{label}-{num_jobs}jobs",
        mix=mix,
        models=models,
        total_replicas=total,
        duration_minutes=duration_minutes,
        rate_scale=rate_scale,
        eval_offset_minutes=eval_offset_minutes,
    )
    scenario.metadata["size"] = label
    return scenario


def mixed_model_scenario(
    total_replicas: int = 36,
    num_jobs: int = 10,
    duration_minutes: int | None = 360,
    rate_scale: float = 1.0,
    days: int = 11,
    eval_offset_minutes: int = 480,
    seed: int = 0,
) -> Scenario:
    """Mixed workload (§6.3): half ResNet18 (400 ms SLO), half ResNet34."""
    mix = standard_job_mix(num_jobs=num_jobs, days=days, seed=seed)
    models = [RESNET18 if index % 2 == 0 else RESNET34 for index in range(num_jobs)]
    scenario = _build_scenario(
        name=f"mixed-{total_replicas}r-{num_jobs}jobs",
        mix=mix,
        models=models,
        total_replicas=total_replicas,
        duration_minutes=duration_minutes,
        rate_scale=rate_scale,
        eval_offset_minutes=eval_offset_minutes,
    )
    scenario.metadata["size"] = "mixed"
    return scenario


def large_scale_scenario(
    num_jobs: int = 20,
    total_replicas: int = 70,
    duration_minutes: int | None = 240,
    rate_scale: float = 1.0,
    days: int = 11,
    eval_offset_minutes: int = 480,
    seed: int = 0,
) -> Scenario:
    """Large-scale workloads (§6.5): duplicated job mixes.

    Paper configurations: 20 jobs / 70 replicas (cluster) and
    100 jobs / 320 replicas (simulation).
    """
    mix = standard_job_mix(num_jobs=num_jobs, days=days, seed=seed)
    models = [RESNET34] * num_jobs
    scenario = _build_scenario(
        name=f"scale-{num_jobs}jobs-{total_replicas}r",
        mix=mix,
        models=models,
        total_replicas=total_replicas,
        duration_minutes=duration_minutes,
        rate_scale=rate_scale,
        eval_offset_minutes=eval_offset_minutes,
    )
    scenario.metadata["size"] = f"{num_jobs}jobs"
    return scenario
