"""Decentralized Faro tests (repro.core.decentralized)."""

import numpy as np
import pytest

from repro.core.autoscaler import FaroAutoscaler, FaroConfig, JobSpec
from repro.core.decentralized import DecentralizedFaro, RebalanceConfig, partition_jobs
from repro.core.optimizer import ClusterCapacity
from repro.core.utility import SLO
from repro.policy import JobObservation

SLO_720 = SLO(target=0.72, percentile=99.0)


def spec(name):
    return JobSpec(name=name, slo=SLO_720, proc_time=0.18)


def obs(name, rate, replicas=1, history_len=15):
    return JobObservation(
        job_name=name,
        arrival_rate=rate,
        rate_history=tuple([rate] * history_len),
        mean_proc_time=0.18,
        latency=0.2,
        slo_violation_rate=0.0,
        current_replicas=replicas,
        target_replicas=replicas,
    )


def fast_config(**overrides):
    defaults = dict(objective="sum", solver="greedy", num_samples=4, seed=0)
    defaults.update(overrides)
    return FaroConfig(**defaults)


class TestPartition:
    def test_round_robin(self):
        jobs = [spec(f"j{i}") for i in range(5)]
        groups = partition_jobs(jobs, 2)
        assert [j.name for j in groups[0]] == ["j0", "j2", "j4"]
        assert [j.name for j in groups[1]] == ["j1", "j3"]

    def test_all_groups_non_empty(self):
        jobs = [spec(f"j{i}") for i in range(7)]
        for g in range(1, 8):
            groups = partition_jobs(jobs, g)
            assert len(groups) == g
            assert all(groups)

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            partition_jobs([spec("a")], 2)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            partition_jobs([spec("a")], 0)


class TestRebalanceConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_transfer": 0},
        {"demand_quantile": 0.0},
        {"demand_quantile": 1.5},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RebalanceConfig(**kwargs)


class TestShares:
    def test_initial_equal_split(self):
        jobs = [spec(f"j{i}") for i in range(4)]
        policy = DecentralizedFaro(jobs, total_replicas=16, num_groups=4,
                                   config=fast_config())
        assert policy.shares == [4, 4, 4, 4]

    def test_conservation_on_construction(self):
        jobs = [spec(f"j{i}") for i in range(5)]
        policy = DecentralizedFaro(jobs, total_replicas=17, num_groups=3,
                                   config=fast_config())
        assert sum(policy.shares) == 17

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ValueError):
            DecentralizedFaro([spec("a"), spec("b")], total_replicas=1, num_groups=1)


class TestSingleGroupEquivalence:
    def test_matches_centralized(self):
        jobs = [spec(f"j{i}") for i in range(4)]
        config = fast_config()
        observations = {f"j{i}": obs(f"j{i}", rate=5.0 + 3 * i) for i in range(4)}
        central = FaroAutoscaler(jobs, ClusterCapacity.of_replicas(20), config=config)
        decentral = DecentralizedFaro(jobs, total_replicas=20, num_groups=1, config=config)
        assert central.decide(observations).replicas == decentral.decide(observations).replicas


class TestRebalancing:
    def _policy(self, num_jobs=4, total=16, groups=2, **cfg):
        jobs = [spec(f"j{i}") for i in range(num_jobs)]
        return jobs, DecentralizedFaro(
            jobs, total_replicas=total, num_groups=groups, config=fast_config(**cfg)
        )

    def test_shares_conserved_over_rounds(self):
        jobs, policy = self._policy()
        rng = np.random.default_rng(0)
        for round_idx in range(6):
            observations = {
                j.name: obs(j.name, rate=float(rng.uniform(1.0, 40.0))) for j in jobs
            }
            policy.decide(observations)
            assert sum(policy.shares) == 16
            assert all(
                share >= minimum
                for share, minimum in zip(policy.shares, policy._min_share)
            )

    def test_shares_follow_skewed_demand(self):
        # Group 0 holds j0/j2 (hot), group 1 holds j1/j3 (idle): after a few
        # rounds group 0's share must have grown.
        jobs, policy = self._policy(num_jobs=4, total=16, groups=2)
        hot = {"j0", "j2"}
        observations = {
            j.name: obs(j.name, rate=30.0 if j.name in hot else 0.5) for j in jobs
        }
        for _ in range(4):
            policy.decide(observations)
        assert policy.shares[0] > policy.shares[1]

    def test_bounded_transfer_per_round(self):
        jobs, policy = self._policy(num_jobs=4, total=16, groups=2)
        cap = policy.rebalance_config.max_transfer
        before = list(policy.shares)
        hot = {"j0", "j2"}
        observations = {
            j.name: obs(j.name, rate=50.0 if j.name in hot else 0.1) for j in jobs
        }
        policy.decide(observations)
        moved = abs(policy.shares[0] - before[0])
        assert moved <= cap

    def test_decision_covers_all_jobs(self):
        jobs, policy = self._policy()
        observations = {j.name: obs(j.name, rate=10.0) for j in jobs}
        decision = policy.decide(observations)
        assert set(decision.replicas) == {j.name for j in jobs}
        assert all(count >= 1 for count in decision.replicas.values())

    def test_local_decisions_respect_shares(self):
        jobs, policy = self._policy(num_jobs=4, total=12, groups=2)
        observations = {j.name: obs(j.name, rate=60.0) for j in jobs}
        shares_before = list(policy.shares)
        decision = policy.decide(observations)
        for g, group in enumerate(policy.groups):
            used = sum(decision.replicas[j.name] for j in group)
            assert used <= shares_before[g]

    def test_reset_restores_equal_shares(self):
        jobs, policy = self._policy()
        hot = {"j0", "j2"}
        observations = {
            j.name: obs(j.name, rate=30.0 if j.name in hot else 0.5) for j in jobs
        }
        for _ in range(3):
            policy.decide(observations)
        policy.reset()
        assert policy.shares == policy._equal_shares()
        assert sum(policy.shares) == 16


class TestConvergenceTowardCentralized:
    def test_static_load_close_to_centralized(self):
        # On a stable workload the decentralized utility approaches the
        # centralized one after shares converge.
        jobs = [spec(f"j{i}") for i in range(4)]
        rates = {"j0": 25.0, "j1": 3.0, "j2": 18.0, "j3": 6.0}
        observations = {name: obs(name, rate) for name, rate in rates.items()}
        config = fast_config()
        central = FaroAutoscaler(jobs, ClusterCapacity.of_replicas(20), config=config)
        central_decision = central.decide(observations)
        policy = DecentralizedFaro(jobs, total_replicas=20, num_groups=2, config=config)
        decision = None
        for _ in range(6):
            decision = policy.decide(observations)
        # Every job ends within 2 replicas of the centralized choice.
        for name in rates:
            assert abs(decision.replicas[name] - central_decision.replicas[name]) <= 2

    def test_tick_respects_period(self):
        jobs = [spec("a"), spec("b")]
        policy = DecentralizedFaro(jobs, total_replicas=8, num_groups=2,
                                   config=fast_config(period=300.0))
        observations = {j.name: obs(j.name, rate=5.0) for j in jobs}
        assert policy.tick(0.0, observations) is not None
        assert policy.tick(10.0, observations) is None
        assert policy.tick(300.0, observations) is not None
