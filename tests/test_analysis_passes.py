"""Fixture-driven tests for every built-in analysis pass.

Each pass gets known-bad snippets (must flag) and known-good snippets
(must stay silent), linted in memory via ``ModuleContext.from_source`` --
no files, no project layout.  Suppression behavior is covered here too,
since it is part of each pass's user-facing contract.
"""

import textwrap

import pytest

from repro.analysis import ModuleContext, ProjectContext, get_pass_registry

SIM_MODULE = "repro.sim.fixture"
OUTSIDE_MODULE = "myplugin.util"


def lint(source, pass_id, *, module="", options=None):
    """Run one pass over a snippet, dropping inline-suppressed findings."""
    context = ModuleContext.from_source(textwrap.dedent(source), module=module)
    findings = get_pass_registry().run(pass_id, context, options)
    return [f for f in findings if not context.is_suppressed(f)]


# ---------------------------------------------------------- determinism


class TestDeterminism:
    def test_global_stdlib_random_flagged(self):
        findings = lint(
            """
            import random
            random.shuffle(items)
            """,
            "determinism",
        )
        assert len(findings) == 1
        assert "process-global RNG" in findings[0].message
        assert findings[0].line == 3

    def test_from_import_of_global_random_flagged(self):
        findings = lint(
            """
            from random import shuffle
            shuffle(items)
            """,
            "determinism",
        )
        assert len(findings) == 1

    def test_explicit_random_instance_allowed(self):
        assert not lint(
            """
            import random
            rng = random.Random(7)
            rng.shuffle(items)
            """,
            "determinism",
        )

    def test_numpy_global_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            x = np.random.rand(3)
            """,
            "determinism",
        )
        assert len(findings) == 1
        assert "global RNG" in findings[0].message

    def test_unseeded_default_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            "determinism",
        )
        assert len(findings) == 1
        assert "OS entropy" in findings[0].message

    def test_seeded_default_rng_allowed(self):
        assert not lint(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            other = np.random.default_rng(seed=experiment_seed)
            """,
            "determinism",
        )

    def test_wall_clock_flagged_only_on_sim_path(self):
        source = """
            import time
            t = time.time()
        """
        assert len(lint(source, "determinism", module=SIM_MODULE)) == 1
        assert not lint(source, "determinism", module=OUTSIDE_MODULE)

    def test_datetime_now_flagged_on_sim_path(self):
        findings = lint(
            """
            from datetime import datetime
            stamp = datetime.now()
            """,
            "determinism",
            module=SIM_MODULE,
        )
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_perf_counter_allowed_on_sim_path(self):
        # Telemetry timers time solves, they never steer them.
        assert not lint(
            """
            import time
            start = time.perf_counter()
            """,
            "determinism",
            module=SIM_MODULE,
        )

    def test_module_scope_is_configurable(self):
        source = """
            import os
            token = os.urandom(8)
        """
        assert not lint(source, "determinism", module="other.pkg")
        assert lint(
            source,
            "determinism",
            module="other.pkg",
            options={"modules": ("other",)},
        )


# ---------------------------------------------------- ordered-iteration


class TestOrderedIteration:
    def test_for_loop_over_set_literal_name_flagged(self):
        findings = lint(
            """
            pending = {"a", "b"}
            for item in pending:
                handle(item)
            """,
            "ordered-iteration",
            module=SIM_MODULE,
        )
        assert len(findings) == 1
        assert "hash/arrival order" in findings[0].message

    def test_list_of_set_call_flagged(self):
        findings = lint(
            """
            def merge(parts):
                rows = list(set(parts))
                return rows
            """,
            "ordered-iteration",
            module=SIM_MODULE,
        )
        assert len(findings) == 1

    def test_join_over_set_flagged(self):
        findings = lint(
            """
            def render(tags):
                tags = frozenset(tags)
                return ", ".join(tags)
            """,
            "ordered-iteration",
            module=SIM_MODULE,
        )
        assert len(findings) == 1

    def test_set_algebra_flagged(self):
        findings = lint(
            """
            def diff(a, b):
                a = set(a)
                for name in a - b:
                    yield name
            """,
            "ordered-iteration",
            module=SIM_MODULE,
        )
        assert len(findings) == 1

    def test_sorted_over_set_allowed(self):
        assert not lint(
            """
            pending = {"a", "b"}
            for item in sorted(pending):
                handle(item)
            total = sum(pending_costs)
            ok = "a" in pending
            """,
            "ordered-iteration",
            module=SIM_MODULE,
        )

    def test_rebinding_to_non_set_clears_the_mark(self):
        assert not lint(
            """
            names = {"a", "b"}
            names = sorted(names)
            for n in names:
                handle(n)
            """,
            "ordered-iteration",
            module=SIM_MODULE,
        )

    def test_outside_merge_path_modules_silent(self):
        assert not lint(
            """
            pending = {"a", "b"}
            for item in pending:
                handle(item)
            """,
            "ordered-iteration",
            module=OUTSIDE_MODULE,
        )

    def test_dict_views_silent_by_default_flagged_in_strict_mode(self):
        source = """
            for key in table.keys():
                handle(key)
        """
        assert not lint(source, "ordered-iteration", module=SIM_MODULE)
        strict = lint(
            source,
            "ordered-iteration",
            module=SIM_MODULE,
            options={"flag_dict_views": True},
        )
        assert len(strict) == 1
        assert "strict mode" in strict[0].message


# ------------------------------------------------------ frozen-mutation


class TestFrozenMutation:
    def test_setattr_outside_hooks_flagged(self):
        findings = lint(
            """
            def rename(spec, name):
                object.__setattr__(spec, "name", name)
                return spec
            """,
            "frozen-mutation",
        )
        assert len(findings) == 1
        assert "dataclasses.replace" in findings[0].message

    def test_setattr_at_module_level_flagged(self):
        findings = lint("object.__setattr__(spec, 'x', 1)\n", "frozen-mutation")
        assert len(findings) == 1
        assert "module level" in findings[0].message

    def test_construction_hooks_allowed(self):
        assert not lint(
            """
            class Spec:
                def __post_init__(self):
                    object.__setattr__(self, "name", self.name.strip())

                def __setstate__(self, state):
                    object.__setattr__(self, "__dict__", state)
            """,
            "frozen-mutation",
        )

    def test_plain_setattr_not_flagged(self):
        # Only the object.__setattr__ backdoor defeats frozen=True.
        assert not lint(
            """
            def configure(thing):
                thing.value = 3
                setattr(thing, "other", 4)
            """,
            "frozen-mutation",
        )


# ---------------------------------------------------- registry-contract


class TestRegistryContract:
    def test_empty_description_flagged(self):
        findings = lint(
            """
            register_policy("greedy", description="")(make_greedy)
            """,
            "registry-contract",
        )
        assert len(findings) == 1
        assert "empty description" in findings[0].message

    def test_undocumented_decorated_function_flagged(self):
        findings = lint(
            """
            @register_pass("my-rule")
            def check(context, options):
                return []
            """,
            "registry-contract",
        )
        assert len(findings) == 1
        assert "no docstring" in findings[0].message

    def test_docstring_satisfies_doc_requirement(self):
        assert not lint(
            """
            @register_pass("my-rule")
            def check(context, options):
                \"\"\"Reject widgets.\"\"\"
                return []
            """,
            "registry-contract",
        )

    def test_unfrozen_config_type_flagged(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Options:
                depth: int = 2

            @register_backend("toy", description="Toy.", config_type=Options)
            def make(options):
                return object()
            """,
            "registry-contract",
        )
        assert len(findings) == 1
        assert "not frozen" in findings[0].message

    def test_non_json_default_flagged(self):
        findings = lint(
            """
            import math
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Options:
                ceiling: float = math.inf

            @register_backend("toy", description="Toy.", config_type=Options)
            def make(options):
                return object()
            """,
            "registry-contract",
        )
        assert len(findings) == 1
        assert "JSON-representable" in findings[0].message

    def test_unsafe_default_factory_flagged(self):
        findings = lint(
            """
            from collections import OrderedDict
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class Options:
                table: dict = field(default_factory=OrderedDict)

            @register_backend("toy", description="Toy.", config_type=Options)
            def make(options):
                return object()
            """,
            "registry-contract",
        )
        assert len(findings) == 1
        assert "default_factory" in findings[0].message

    def test_well_formed_registration_clean(self):
        assert not lint(
            """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class Options:
                depth: int = 2
                labels: tuple = field(default_factory=tuple)

            @register_backend("toy", description="A toy backend.",
                              config_type=Options)
            def make(options):
                return object()
            """,
            "registry-contract",
        )


# -------------------------------------------------------- spawn-safety


class TestSpawnSafety:
    def test_lambda_into_submit_flagged(self):
        findings = lint(
            """
            def run(executor, xs):
                return [executor.submit(lambda x: x + 1, x) for x in xs]
            """,
            "spawn-safety",
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_def_into_pool_flagged(self):
        findings = lint(
            """
            def run(pool, xs):
                def work(x):
                    return x + 1
                return pool.map(work, xs)
            """,
            "spawn-safety",
        )
        assert len(findings) == 1
        assert "move it to module level" in findings[0].message

    def test_lambda_initializer_flagged(self):
        findings = lint(
            """
            from concurrent.futures import ProcessPoolExecutor
            ex = ProcessPoolExecutor(2, initializer=lambda: None)
            """,
            "spawn-safety",
        )
        assert len(findings) == 1
        assert "initializer" in findings[0].message

    def test_module_level_function_allowed(self):
        assert not lint(
            """
            def work(x):
                return x + 1

            def run(pool, xs):
                return pool.map(work, xs)
            """,
            "spawn-safety",
        )

    def test_non_pool_receivers_ignored(self):
        assert not lint(
            """
            def run(form, xs):
                return form.submit(lambda x: x, xs)
            """,
            "spawn-safety",
        )


# --------------------------------------------------------- rng-batching


class TestRngBatching:
    def test_scalar_draw_in_loop_flagged(self):
        findings = lint(
            """
            def offer_all(rng, arrivals):
                out = []
                for a in arrivals:
                    out.append(rng.random() < 0.5)
                return out
            """,
            "rng-batching",
            module=SIM_MODULE,
        )
        assert len(findings) == 1
        assert "pre-draw a batch" in findings[0].message

    def test_scalar_normal_through_self_rng_flagged(self):
        findings = lint(
            """
            class Router:
                def run(self, arrivals):
                    while arrivals:
                        jitter = self._rng.normal(1.0, 0.05)
                        arrivals.pop()
            """,
            "rng-batching",
            module="repro.cluster.fixture",
        )
        assert len(findings) == 1

    def test_batched_draws_and_loopless_draws_allowed(self):
        assert not lint(
            """
            def offer_all(rng, arrivals):
                draws = rng.random(len(arrivals))
                jitters = rng.normal(1.0, 0.05, size=len(arrivals))
                for a, d in zip(arrivals, draws):
                    serve(a, d)

            def one_offer(rng):
                return rng.random()  # not in a loop: one draw total
            """,
            "rng-batching",
            module=SIM_MODULE,
        )

    def test_outcome_dependent_methods_not_flagged(self):
        # exponential/uniform draws whose count depends on earlier
        # outcomes are the scalar loop's legitimate residue.
        assert not lint(
            """
            def failures(rng, n):
                while n > 0:
                    gap = rng.exponential(1.0)
                    n -= 1
            """,
            "rng-batching",
            module=SIM_MODULE,
        )

    def test_outside_hot_path_modules_silent(self):
        source = """
        def offer_all(rng, arrivals):
            for a in arrivals:
                serve(a, rng.random())
        """
        assert not lint(source, "rng-batching", module=OUTSIDE_MODULE)
        assert lint(source, "rng-batching", module=SIM_MODULE)

    def test_non_generator_receivers_ignored(self):
        assert not lint(
            """
            def run(matrix, arrivals):
                for a in arrivals:
                    x = matrix.normal(1.0, 0.5)
            """,
            "rng-batching",
            module=SIM_MODULE,
        )

    def test_suppression_and_options(self):
        source = """
        def offer_all(rng, arrivals):
            for a in arrivals:
                serve(a, rng.random())  # repro: allow(rng-batching) -- accept/reject chain
        """
        assert not lint(source, "rng-batching", module=SIM_MODULE)
        # Custom module scope via options.
        assert lint(
            source,
            "rng-batching",
            module=OUTSIDE_MODULE,
            options={"modules": ("myplugin",)},
        ) == []  # suppressed inline even under custom scope
        assert len(
            lint(
                """
                def offer_all(rng, arrivals):
                    for a in arrivals:
                        serve(a, rng.random())
                """,
                "rng-batching",
                module=OUTSIDE_MODULE,
                options={"modules": ("myplugin",)},
            )
        ) == 1


# ----------------------------------------------------------- perf-gate


class TestPerfGate:
    @staticmethod
    def project(tmp_path, *, gate_text, benches):
        (tmp_path / "tools").mkdir()
        (tmp_path / "tools" / "check_perf.py").write_text(gate_text)
        (tmp_path / "benchmarks").mkdir()
        for name, text in benches.items():
            (tmp_path / "benchmarks" / name).write_text(text)
        return ProjectContext(root=tmp_path)

    def test_ungated_baseline_flagged(self, tmp_path):
        project = self.project(
            tmp_path,
            gate_text='BASE = "results/BENCH_a.json"\n',
            benches={
                "bench_a.py": 'OUT = "results/BENCH_a.json"\n',
                "bench_b.py": 'OUT = "results/BENCH_b.json"\n',
            },
        )
        findings = get_pass_registry().run("perf-gate", project)
        assert len(findings) == 1
        assert "BENCH_b.json" in findings[0].message
        assert findings[0].path == "benchmarks/bench_b.py"

    def test_docstring_mentions_do_not_count_as_emission(self, tmp_path):
        project = self.project(
            tmp_path,
            gate_text="# gates nothing\n",
            benches={
                "bench_doc.py": '"""Narrates results/BENCH_ghost.json."""\n'
            },
        )
        assert not get_pass_registry().run("perf-gate", project)

    def test_fully_gated_project_clean(self, tmp_path):
        project = self.project(
            tmp_path,
            gate_text='GATES = ["results/BENCH_a.json"]\n',
            benches={"bench_a.py": 'OUT = "results/BENCH_a.json"\n'},
        )
        assert not get_pass_registry().run("perf-gate", project)

    def test_missing_gate_file_yields_nothing(self, tmp_path):
        assert not get_pass_registry().run(
            "perf-gate", ProjectContext(root=tmp_path)
        )


# --------------------------------------------------------- suppressions


class TestSuppressions:
    def test_inline_suppression_with_reason_covers_its_line(self):
        findings = lint(
            """
            import random
            random.shuffle(items)  # repro: allow(determinism) -- fixture shuffle, not sim state
            """,
            "determinism",
        )
        assert not findings

    def test_comment_only_suppression_covers_next_line(self):
        findings = lint(
            """
            import random
            # repro: allow(determinism) -- fixture shuffle, not sim state
            random.shuffle(items)
            """,
            "determinism",
        )
        assert not findings

    def test_suppression_is_per_pass(self):
        # An allow() naming another pass must not silence this one.
        findings = lint(
            """
            import random
            random.shuffle(items)  # repro: allow(spawn-safety) -- wrong pass id
            """,
            "determinism",
        )
        assert len(findings) == 1

    def test_reasonless_suppression_is_inert_and_reported(self):
        context = ModuleContext.from_source(
            textwrap.dedent(
                """
                import random
                random.shuffle(items)  # repro: allow(determinism)
                """
            )
        )
        # Inert: the determinism finding is NOT suppressed ...
        findings = get_pass_registry().run("determinism", context)
        assert [f for f in findings if not context.is_suppressed(f)]
        # ... and the malformed suppression is itself a finding.
        assert len(context.parse_findings) == 1
        assert context.parse_findings[0].pass_id == "suppression"
        assert "no reason" in context.parse_findings[0].message
