"""Paper-vs-measured reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "paper_comparison_table", "ratio"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Plain-text table with column alignment (for bench stdout and files)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in str_rows)) if str_rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def ratio(baseline: float, faro: float) -> float:
    """Improvement factor baseline/faro (the paper's "NxM lower" numbers)."""
    if faro <= 0:
        return float("inf")
    return baseline / faro


def paper_comparison_table(
    experiment: str,
    rows: Sequence[tuple[str, float | str, float | str]],
    note: str = "",
) -> str:
    """Three-column paper-vs-measured table used across the benchmarks."""
    table = format_table(
        ["metric", "paper", "measured"],
        rows,
        title=f"== {experiment} ==",
    )
    if note:
        table += f"\nnote: {note}"
    return table
