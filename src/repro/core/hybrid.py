"""Faro's hybrid autoscaler (paper §4.4).

Combines the long-term predictive autoscaler (every 5 minutes) with a
short-term *reactive* path (every 10 seconds) that additively scales up a
job only when SLO violations are actually observed, after the violation has
persisted for the scale-up trigger window (30 s, same threshold as the
Oneshot/AIAD baselines for fairness).  The reactive path never scales down:
the long-term optimizer owns the baseline replica counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.autoscaler import FaroAutoscaler
from repro.policy import AutoscalePolicy, JobObservation, ScalingDecision, TriggerTracker

__all__ = ["ReactiveConfig", "HybridAutoscaler"]


@dataclass(frozen=True)
class ReactiveConfig:
    """Short-term reactive path settings (paper defaults)."""

    interval: float = 10.0
    up_trigger_seconds: float = 30.0
    step: int = 1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")


class HybridAutoscaler(AutoscalePolicy):
    """Long-term predictive + short-term reactive controller.

    ``capacity_replicas`` caps the total replica count the reactive path may
    reach (the K8s resource quota); reactive scale-ups that would exceed it
    are skipped -- cross-job rebalancing is the long-term optimizer's job.
    """

    def __init__(
        self,
        long_term: FaroAutoscaler,
        reactive: ReactiveConfig | None = None,
        capacity_replicas: int | None = None,
    ) -> None:
        self.long_term = long_term
        self.reactive = reactive or ReactiveConfig()
        self.tick_interval = self.reactive.interval
        if capacity_replicas is None:
            capacity_replicas = int(long_term.capacity.cpus)
        self.capacity_replicas = capacity_replicas
        self.name = long_term.name
        self._trigger = TriggerTracker(self.reactive.up_trigger_seconds)
        self._slos = {name: spec.slo for name, spec in long_term.jobs.items()}

    def reset(self) -> None:
        self.long_term.reset()
        self._trigger.clear()

    def _reactive_decision(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        decision = ScalingDecision()
        total_targets = sum(obs.target_replicas for obs in observations.values())
        headroom = self.capacity_replicas - total_targets
        for name, obs in observations.items():
            slo = self._slos.get(name)
            if slo is None:
                continue
            violating = obs.latency > slo.target
            if not self._trigger.update(name, violating, now):
                continue
            if headroom < self.reactive.step:
                continue
            decision.replicas[name] = obs.target_replicas + self.reactive.step
            headroom -= self.reactive.step
            self._trigger.clear(name)
            # Keep the long-term optimizer's warm start aligned with what is
            # actually deployed, so the next cycle starts from reality.
            self.long_term.note_replica_override(name, decision.replicas[name])
        return decision if decision.replicas else None

    def tick(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        long_decision = self.long_term.tick(now, observations)
        if long_decision is not None:
            # A fresh long-term plan supersedes reactive state.
            self._trigger.clear()
            return long_decision
        return self._reactive_decision(now, observations)
