"""FairShare: static equal division of cluster replicas (no autoscaling)."""

from __future__ import annotations

from repro.policy import AutoscalePolicy, JobObservation, ScalingDecision

__all__ = ["FairSharePolicy"]


class FairSharePolicy(AutoscalePolicy):
    """Every job statically gets ``floor(total_replicas / num_jobs)``.

    Stands in for systems without autoscaling (Clipper, TF-Serving).  The
    paper's counterintuitive finding (Fig. 12) is that static fair shares
    are *unfair* in outcome: jobs' resource needs vary over time, so equal
    allocations produce unequal SLO satisfaction.
    """

    name = "FairShare"
    tick_interval = 10.0

    def __init__(self, total_replicas: int, min_replicas: int = 1) -> None:
        if total_replicas < 1:
            raise ValueError(f"total_replicas must be >= 1, got {total_replicas}")
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {min_replicas}")
        self.total_replicas = total_replicas
        self.min_replicas = min_replicas
        self._applied = False

    def reset(self) -> None:
        self._applied = False

    def tick(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        if self._applied:
            return None
        self._applied = True
        share = max(self.total_replicas // max(len(observations), 1), self.min_replicas)
        return ScalingDecision(replicas={name: share for name in observations})
