"""Batch-service queueing approximations for adaptive request batching.

The paper (§7) lists intelligent request batching (Clipper, BATCH) as
orthogonal to -- and combinable with -- Faro.  This module provides the
queueing model behind the :mod:`repro.cluster.batching` extension:

A replica executes requests in batches of up to ``b``.  Inference batching
is sub-linear: a batch of ``b`` requests takes

    ``S(b) = base + per_item * b``        (setup + marginal per-item cost)

with ``base + per_item`` equal to the unbatched processing time, so larger
batches raise per-replica throughput (``b / S(b)``).  A request's latency
decomposes into

1. *formation wait*: time until its batch fills (or a timeout fires), and
2. *batch queueing + service*: the batch stream is modelled as an M/D/c
   queue with arrival rate ``lam / b`` and service time ``S(b)``.

Under Poisson arrivals a request joins a forming batch at a uniformly random
position, so its mean formation wait is ``(b - 1) / (2 * lam)``, capped by
the batching timeout.
"""

from __future__ import annotations

import math

from repro.queueing.mdc import mdc_latency_percentile

__all__ = [
    "batch_service_time",
    "batch_throughput",
    "batch_formation_wait",
    "batched_latency_percentile",
    "optimal_batch_size",
]


def batch_service_time(base: float, per_item: float, size: int) -> float:
    """Service time ``S(b) = base + per_item * b`` of one batch of ``size``."""
    if base < 0 or per_item <= 0:
        raise ValueError("base must be >= 0 and per_item > 0")
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    return base + per_item * size


def batch_throughput(base: float, per_item: float, size: int) -> float:
    """Requests per second one replica sustains at batch size ``size``.

    Monotonically increasing in ``size`` (towards ``1 / per_item``), which is
    the throughput gain that makes batching worthwhile.
    """
    return size / batch_service_time(base, per_item, size)


def batch_formation_wait(lam: float, size: int, timeout: float | None = None) -> float:
    """Mean time a request waits for its batch to fill.

    Under Poisson arrivals at rate ``lam`` the request occupies a uniformly
    random position in its batch, giving a mean wait of
    ``(size - 1) / (2 * lam)``; a batching ``timeout`` caps the wait (the
    router dispatches partial batches when the timeout fires).
    """
    if lam < 0:
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    if timeout is not None and timeout < 0:
        raise ValueError(f"timeout must be non-negative, got {timeout}")
    if size == 1:
        return 0.0
    if lam == 0.0:
        return timeout if timeout is not None else 0.0
    wait = (size - 1) / (2.0 * lam)
    if timeout is not None:
        wait = min(wait, timeout)
    return wait


def batched_latency_percentile(
    q: float,
    lam: float,
    servers: int,
    size: int,
    base: float,
    per_item: float,
    timeout: float | None = None,
) -> float:
    """``q``-quantile of end-to-end latency with batch size ``size``.

    Formation wait (mean, as a shift -- formation variance is small next to
    the queueing tail) plus the M/D/c latency of the batch stream.  Returns
    ``inf`` when even the batched queue is unstable.
    """
    if servers < 1:
        raise ValueError(f"server count must be >= 1, got {servers}")
    service = batch_service_time(base, per_item, size)
    if lam == 0.0:
        return batch_formation_wait(lam, size, timeout) + service
    batch_lam = lam / size
    queue_latency = mdc_latency_percentile(q, batch_lam, service, servers)
    if math.isinf(queue_latency):
        return math.inf
    return batch_formation_wait(lam, size, timeout) + queue_latency


def optimal_batch_size(
    q: float,
    lam: float,
    servers: int,
    base: float,
    per_item: float,
    max_size: int = 64,
    timeout: float | None = None,
) -> tuple[int, float]:
    """Batch size in ``[1, max_size]`` minimizing the ``q``-quantile latency.

    Returns ``(size, latency)``.  Small batches waste the setup cost under
    load; large batches pay formation wait at low load -- the optimum moves
    with ``lam``, which is why the batching router adapts it online.  When
    no size yields a stable queue the queue grows regardless, so the
    max-throughput choice (``max_size``) is returned with ``inf`` latency.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    best_size, best_latency = max_size, math.inf
    for size in range(1, max_size + 1):
        latency = batched_latency_percentile(q, lam, servers, size, base, per_item, timeout)
        if latency < best_latency:
            best_size, best_latency = size, latency
    return best_size, best_latency
