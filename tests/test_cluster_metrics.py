"""Metrics collector tests (per-minute aggregation, histories, percentiles)."""

import math

import numpy as np
import pytest

from repro.cluster.metrics import MetricsCollector
from repro.core.utility import SLO


def make_collector(slo=0.72, bin_seconds=15.0, prefix=None):
    return MetricsCollector(
        job_name="j",
        slo=SLO(slo),
        proc_time=0.18,
        bin_seconds=bin_seconds,
        history_prefix=prefix,
    )


class TestRecordAndMinuteStats:
    def test_empty_minute_full_utility(self):
        stats = make_collector().minute_stats(0)
        assert stats.arrivals == 0
        assert stats.utility == 1.0
        assert stats.violation_rate == 0.0

    def test_counts(self):
        collector = make_collector()
        collector.record(1.0, 0.2)
        collector.record(2.0, 0.9)   # violation
        collector.record(3.0, math.inf)  # drop (counts as violation)
        stats = collector.minute_stats(0)
        assert stats.arrivals == 3
        assert stats.drops == 1
        assert stats.violations == 2
        assert stats.violation_rate == pytest.approx(2 / 3)

    def test_minutes_are_isolated(self):
        collector = make_collector()
        collector.record(30.0, 0.2)
        collector.record(90.0, 0.9)
        assert collector.minute_stats(0).arrivals == 1
        assert collector.minute_stats(1).violations == 1

    def test_utility_uses_percentile_latency(self):
        collector = make_collector(slo=0.5)
        for _ in range(100):
            collector.record(5.0, 1.0)  # all at 2x SLO
        stats = collector.minute_stats(0)
        assert stats.utility == pytest.approx(0.5)

    def test_effective_utility_penalizes_drops(self):
        # p50 SLO so the latency percentile stays finite despite drops.
        collector = MetricsCollector("j", SLO(10.0, percentile=50), proc_time=0.18)
        for _ in range(90):
            collector.record(5.0, 0.1)
        for _ in range(10):
            collector.record(5.0, math.inf)
        stats = collector.minute_stats(0)
        # 10% drops -> availability 0.90 -> 50% credit.
        assert stats.utility == 1.0
        assert stats.effective_utility == pytest.approx(0.5)


class TestPercentiles:
    def test_p99_with_drops_is_inf(self):
        collector = make_collector()
        for _ in range(50):
            collector.record(1.0, 0.1)
        for _ in range(50):
            collector.record(1.0, math.inf)
        assert math.isinf(collector.window_latency_percentile(0.0, 60.0))

    def test_median_collector(self):
        collector = MetricsCollector("j", SLO(1.0, percentile=50), proc_time=0.1)
        for latency in (0.1, 0.2, 0.3, 0.4, 0.5):
            collector.record(1.0, latency)
        assert collector.window_latency_percentile(0.0, 60.0) == pytest.approx(0.3)

    def test_no_requests_zero(self):
        assert make_collector().window_latency_percentile(0.0, 60.0) == 0.0


class TestObservationFields:
    def test_rates_and_proc(self):
        collector = make_collector()
        for t in range(60):
            collector.record(float(t), 0.2, proc_time=0.18)
        fields = collector.observation_fields(0.0, 60.0)
        assert fields["arrival_rate"] == pytest.approx(1.0)
        assert fields["mean_proc_time"] == pytest.approx(0.18)
        assert fields["drop_rate"] == 0.0

    def test_defaults_when_idle(self):
        fields = make_collector().observation_fields(0.0, 60.0)
        assert fields["arrival_rate"] == 0.0
        assert fields["mean_proc_time"] == pytest.approx(0.18)


class TestRateHistory:
    def test_per_minute_rates(self):
        collector = make_collector()
        for t in np.linspace(0, 59.9, 120):  # 2 req/s in minute 0
            collector.record(float(t), 0.1)
        for t in np.linspace(60, 119.9, 60):  # 1 req/s in minute 1
            collector.record(float(t), 0.1)
        history = collector.rate_history(120.0, 2)
        assert history[0] == pytest.approx(2.0)
        assert history[1] == pytest.approx(1.0)

    def test_prefix_fills_negative_minutes(self):
        prefix = np.array([3.0, 4.0, 5.0])
        collector = make_collector(prefix=prefix)
        history = collector.rate_history(60.0, 4)
        # Minutes -3, -2, -1 come from the prefix; minute 0 has no data.
        assert history[0] == pytest.approx(3.0)
        assert history[1] == pytest.approx(4.0)
        assert history[2] == pytest.approx(5.0)
        assert history[3] == 0.0

    def test_trim_before(self):
        collector = make_collector()
        collector.record(10.0, 0.1)
        collector.record(200.0, 0.1)
        collector.trim_before(100.0)
        assert collector.minute_stats(0).arrivals == 0
        assert collector.minute_stats(3).arrivals == 1

    def test_invalid_minutes(self):
        with pytest.raises(ValueError):
            make_collector().rate_history(0.0, 0)
