"""Differential suite for the batched first-order solver (``method="pgd"``).

The contracts under test:

- :meth:`AllocationProblem.evaluate_perturbed` is **bit-for-bit** equal to
  the naive ``evaluate_many`` over the full perturbation matrix (that is
  what lets the solver and integer rounding evaluate all ``n`` coordinate
  moves from two interpolation rows).
- ``pgd``-then-round allocations are always feasible, deterministic, and
  never worse than greedy phase-1; on reference problems they are within
  1% of (in practice: well above) budget-matched COBYLA.
- The default ``method="cobyla"`` path is byte-identical to pre-PR digests
  -- the new primitives changed *how* candidate scans are computed, not a
  single bit of *what* they compute.
- The interpolation kernel's numba backend (when numba is importable) is
  bit-identical to the numpy reference.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import interp
from repro.core.batched_solver import PGDOptions, _demand_start, solve_pgd
from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    UtilityTableCache,
    solve_allocation,
)
from repro.core.optimizer import _greedy_phase1
from repro.core.utility import SLO

SLO_720 = SLO(target=0.72, percentile=99.0)


def make_jobs(n, scenarios=6, seed=0, varied=False):
    """Deterministic job set; ``varied=True`` adds priority/minimum spread."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        base = rng.uniform(5.0, 40.0)
        rates = tuple(np.maximum(rng.normal(base, base * 0.2, size=scenarios), 0.0))
        jobs.append(
            OptimizationJob(
                name=f"j{i}",
                proc_time=0.18,
                slo=SLO_720,
                rates=rates,
                priority=1.0 + (i % 3) if varied else 1.0,
                min_replicas=1 + (i % 2) if varied else 1,
            )
        )
    return jobs


def make_problem(objective="fairsum", n=6, replicas_per_job=3.0, varied=False, seed=0):
    return AllocationProblem(
        make_jobs(n, seed=seed, varied=varied),
        ClusterCapacity.of_replicas(int(replicas_per_job * n)),
        make_objective(objective),
        table_cache=UtilityTableCache(),
    )


# Randomized problem shapes for the hypothesis-driven properties.
problem_shapes = st.fixed_dictionaries(
    {
        "objective": st.sampled_from(
            ["sum", "fair", "fairsum", "penaltysum", "penaltyfairsum"]
        ),
        "n": st.integers(min_value=2, max_value=7),
        "replicas_per_job": st.floats(min_value=1.5, max_value=5.0),
        "varied": st.booleans(),
        "seed": st.integers(min_value=0, max_value=50),
    }
)


class TestEvaluatePerturbed:
    @settings(max_examples=25, deadline=None)
    @given(
        shape=problem_shapes,
        delta_sign=st.sampled_from([1.0, -1.0]),
        delta_mag=st.floats(min_value=0.25, max_value=2.0),
    )
    def test_bitwise_parity_with_naive_perturbation_matrix(
        self, shape, delta_sign, delta_mag
    ):
        problem = make_problem(**shape)
        n = problem.num_jobs
        rng = np.random.default_rng(shape["seed"] + 1)
        x = problem._mins_vec + rng.uniform(0.0, 3.0, size=n)
        deltas = np.full(n, delta_sign * delta_mag)
        drops = (
            rng.uniform(0.0, 0.4, size=n)
            if problem.objective.uses_drops
            else np.zeros(n)
        )
        base, scores = problem.evaluate_perturbed(x, deltas, drops)
        P = np.repeat(x[None, :], n, axis=0)
        P[np.arange(n), np.arange(n)] += deltas
        naive = problem.evaluate_many(P, drops[None, :])
        assert base == problem.evaluate(x, drops)
        assert np.array_equal(scores, naive)

    def test_parity_with_coldstart_blending(self):
        jobs = [
            OptimizationJob(
                name=f"j{i}",
                proc_time=0.18,
                slo=SLO_720,
                rates=(12.0, 20.0 + i),
                current_replicas=2,
                coldstart_weight=0.4,
            )
            for i in range(4)
        ]
        problem = AllocationProblem(
            jobs,
            ClusterCapacity.of_replicas(16),
            make_objective("fairsum"),
            table_cache=UtilityTableCache(),
        )
        x = np.array([1.5, 2.0, 3.0, 2.5])
        base, scores = problem.evaluate_perturbed(x, 1.0)
        P = np.repeat(x[None, :], 4, axis=0)
        P[np.arange(4), np.arange(4)] += 1.0
        assert base == problem.evaluate(x)
        assert np.array_equal(scores, problem.evaluate_many(P))

    def test_chunked_parity_beyond_eval_chunk(self):
        # Exercise the chunked objective reduction (n > _EVAL_CHUNK needs a
        # huge problem; instead shrink the chunk size via monkeypatching-free
        # indirect check: per-chunk results already covered, so just check a
        # mid-size n for block-boundary bookkeeping).
        problem = make_problem(n=7, varied=True)
        x = problem._mins_vec.astype(float) + 0.5
        base, scores = problem.evaluate_perturbed(x, 1.0)
        P = np.repeat(x[None, :], 7, axis=0)
        P[np.arange(7), np.arange(7)] += 1.0
        assert np.array_equal(scores, problem.evaluate_many(P))
        assert base == problem.evaluate(x)

    def test_shape_validation(self):
        problem = make_problem(n=3)
        with pytest.raises(ValueError, match="replica vector"):
            problem.evaluate_perturbed(np.ones((2, 3)), 1.0)
        with pytest.raises(ValueError, match="drop vector"):
            problem.evaluate_perturbed(np.ones(3), 1.0, np.zeros(4))


class TestPGDSolver:
    def test_registered_in_solve_allocation(self):
        problem = make_problem()
        allocation = solve_allocation(problem, method="pgd")
        assert allocation.method == "pgd"
        assert problem.is_feasible(allocation.replicas)
        assert allocation.nfev > 0
        assert allocation.post_nfev > 0

    def test_deterministic(self):
        a = solve_allocation(make_problem(varied=True), method="pgd")
        b = solve_allocation(make_problem(varied=True), method="pgd")
        assert np.array_equal(a.replicas, b.replicas)
        assert a.objective_value == b.objective_value
        assert a.nfev == b.nfev

    @settings(max_examples=20, deadline=None)
    @given(shape=problem_shapes)
    def test_feasible_and_never_worse_than_greedy_phase1(self, shape):
        problem = make_problem(**shape)
        allocation = solve_allocation(problem, method="pgd")
        assert problem.is_feasible(allocation.replicas)
        assert np.array_equal(allocation.replicas, allocation.replicas.astype(int))
        phase1 = _greedy_phase1(problem)
        phase1_value = problem.evaluate(phase1, np.zeros(problem.num_jobs))
        assert allocation.objective_value >= phase1_value - 1e-9

    @pytest.mark.parametrize(
        "objective,n", [("fairsum", 8), ("sum", 12), ("fair", 5), ("penaltysum", 6)]
    )
    def test_within_tolerance_of_cobyla(self, objective, n):
        """The ISSUE's quality contract: pgd >= COBYLA - 1% (differential)."""
        problem = make_problem(objective, n=n, varied=True)
        pgd = solve_allocation(problem, method="pgd")
        cobyla = solve_allocation(problem, method="cobyla", seed=0)
        tol = 0.01 * max(1.0, abs(cobyla.objective_value))
        assert pgd.objective_value >= cobyla.objective_value - tol

    def test_warm_start_accepted(self):
        problem = make_problem(varied=True)
        first = solve_allocation(problem, method="pgd")
        again = solve_allocation(problem, method="pgd", x0=first)
        assert problem.is_feasible(again.replicas)
        assert again.objective_value >= first.objective_value - 1e-9

    def test_solver_options_plumb_through(self):
        problem = make_problem()
        allocation = solve_allocation(
            problem,
            method="pgd",
            solver_options={"maxiter": 5, "multi_start": False},
        )
        assert problem.is_feasible(allocation.replicas)

    def test_unknown_solver_option_raises(self):
        with pytest.raises(ValueError, match="unknown pgd solver option"):
            solve_allocation(
                make_problem(), method="pgd", solver_options={"maxitr": 5}
            )

    def test_solver_options_rejected_for_other_methods(self):
        with pytest.raises(ValueError, match="only supported for method='pgd'"):
            solve_allocation(
                make_problem(), method="cobyla", solver_options={"maxiter": 5}
            )

    def test_invalid_option_values_raise(self):
        with pytest.raises(ValueError, match="maxiter"):
            PGDOptions(maxiter=0)
        with pytest.raises(ValueError, match="fd_step"):
            PGDOptions(fd_step=0.0)
        with pytest.raises(ValueError, match="snap_batch"):
            PGDOptions(snap_batch=0)

    def test_snap_false_returns_continuous_optimum(self):
        problem = make_problem()
        z, value, nfev = solve_pgd(problem, options={"snap": False})
        assert z.shape == (problem.num_jobs,)
        assert nfev > 0
        # The continuous point is feasible (projection invariant).
        assert problem.cpu_usage(z) <= problem.capacity.cpus + 1e-6
        assert np.all(z >= problem._mins_vec - 1e-9)

    def test_demand_start_is_feasible(self):
        problem = make_problem(varied=True, replicas_per_job=2.0)
        x = _demand_start(problem)
        assert problem.cpu_usage(x) <= problem.capacity.cpus + 1e-6
        assert np.all(x >= problem._mins_vec - 1e-9)

    def test_respects_min_replicas(self):
        problem = make_problem(varied=True)
        allocation = solve_allocation(problem, method="pgd")
        assert np.all(allocation.replicas >= problem._mins_vec)

    def test_pgd_through_faro_config(self):
        from repro.core.autoscaler import FaroConfig

        cfg = FaroConfig(solver="pgd", solver_options={"maxiter": 10})
        assert cfg.solver_options == {"maxiter": 10}

    def test_pgd_through_hierarchical(self):
        from repro.core.hierarchical import solve_hierarchical

        jobs = make_jobs(12, varied=True)
        result = solve_hierarchical(
            jobs,
            ClusterCapacity.of_replicas(36),
            make_objective("fairsum"),
            groups=3,
            method="pgd",
            seed=0,
            table_cache=UtilityTableCache(),
            solver_options={"maxiter": 20},
        )
        assert result.allocation.method == "hier-pgd-G3"
        # post_nfev is legitimately 0 here: fairsum has no drop refinement
        # and the snapped groups leave no capacity slack for rounding to
        # scan, so the post-processing spends no evaluation rows.
        assert result.allocation.post_nfev >= 0
        assert result.allocation.nfev > 0


class TestCobylaDigestPins:
    """Pre-PR byte-identity: the default solver path must not move one bit.

    Digests were captured on the commit *before* this PR introduced
    ``evaluate_perturbed``-backed rounding and the interp kernel extraction;
    they pin replicas (int64 bytes) + drops (rounded to 12 decimals).
    """

    EXPECTED = {
        ("fairsum", 8, 3.0): "15b78716885be677",
        ("sum", 12, 2.5): "2b7dc12abb539507",
        ("penaltysum", 6, 2.0): "d2cb907cf356eea2",
        ("fair", 5, 3.0): "dd40f4430419deb0",
    }

    @pytest.mark.parametrize("objective,n,reps", sorted(EXPECTED))
    def test_digest_unchanged(self, objective, n, reps):
        problem = make_problem(objective, n=n, replicas_per_job=reps, varied=True)
        allocation = solve_allocation(problem, method="cobyla", seed=0)
        h = hashlib.sha256()
        h.update(np.asarray(allocation.replicas, dtype=np.int64).tobytes())
        h.update(np.round(np.asarray(allocation.drops, dtype=float), 12).tobytes())
        assert h.hexdigest()[:16] == self.EXPECTED[(objective, n, reps)]


class TestInterpBackends:
    def test_default_backend_resolves(self):
        assert interp.get_backend() in ("numpy", "numba")

    def test_set_backend_validates(self):
        with pytest.raises(ValueError, match="unknown interp backend"):
            interp.set_backend("cuda")
        if not interp.numba_available():
            with pytest.raises(RuntimeError, match="numba is not importable"):
                interp.set_backend("numba")

    def test_numpy_backend_is_solver_default_fallback(self):
        # With numba absent, auto == numpy; with numba present the next test
        # asserts bit-identity, so either way results match the reference.
        interp.set_backend("numpy")
        try:
            a = solve_allocation(make_problem(varied=True), method="pgd")
        finally:
            interp.set_backend("auto")
        b = solve_allocation(make_problem(varied=True), method="pgd")
        assert np.array_equal(a.replicas, b.replicas) or interp.numba_available()

    @pytest.mark.skipif(
        not interp.numba_available(), reason="numba not installed"
    )
    def test_numba_bit_identity(self):
        problem = make_problem("penaltyfairsum", n=7, varied=True)
        rng = np.random.default_rng(3)
        R = problem._mins_vec + rng.uniform(0.0, 4.0, size=(40, 7))
        D = rng.uniform(0.0, 0.5, size=(40, 7))
        interp.set_backend("numpy")
        try:
            ref = problem.evaluate_many(R, D)
            interp.set_backend("numba")
            jit = problem.evaluate_many(R, D)
        finally:
            interp.set_backend("auto")
        assert np.array_equal(ref, jit)

    @pytest.mark.skipif(
        not interp.numba_available(), reason="numba not installed"
    )
    def test_numba_solver_bit_identity(self):
        interp.set_backend("numpy")
        try:
            a = solve_allocation(make_problem(varied=True), method="pgd")
            interp.set_backend("numba")
            b = solve_allocation(make_problem(varied=True), method="pgd")
        finally:
            interp.set_backend("auto")
        assert np.array_equal(a.replicas, b.replicas)
        assert a.objective_value == b.objective_value
