"""Per-device-class replica pools for the simulation backends.

Heterogeneity enters the simulators through one reduction: a job's mixed
pool of device-class replicas collapses to an *effective homogeneous pool*
via :func:`repro.hetero.latency.mixed_pool_stats` -- ``c`` servers at
effective processing time ``p_eff = c / sum_t n_t * speedup_t / p`` -- which
preserves the aggregate service rate exactly.  Every backend then runs its
existing homogeneous machinery (virtual-time routers, analytic flows) with
``p_eff`` in place of the model's reference processing time, so request,
flow, and hybrid fidelities all serve mixed fleets under the one quota
loop, with no forked code path.

:class:`DevicePoolManager` owns the fleet inventory and the deterministic
assignment of per-job replica targets to device classes:

- a policy's :attr:`~repro.policy.ScalingDecision.device_replicas` hint is
  honored when it names known classes, sums to the job's admitted target,
  and fits the inventory still unassigned when the job (in job order) is
  placed;
- otherwise the job fills classes fastest-for-its-model first (ties broken
  by fleet declaration order), the same rule every tick, so device-agnostic
  policies get a deterministic, greedy-best mapping for free.

Assignments are recomputed from scratch at every apply: the manager tracks
*shape*, not replica identity (churn between classes is modelled only
through the cold starts the backends already charge for count changes).
"""

from __future__ import annotations

from repro.hetero.latency import mixed_pool_stats
from repro.hetero.types import DeviceFleet

__all__ = ["DevicePoolManager"]


class DevicePoolManager:
    """Deterministic device-class bookkeeping for one simulated cluster."""

    def __init__(self, fleet: DeviceFleet, jobs) -> None:
        self.fleet = fleet
        self.job_names = [job.name for job in jobs]
        self._model = {job.name: job.model.name for job in jobs}
        self._ref_proc = {job.name: job.model.proc_time for job in jobs}
        # Per-job class preference: fastest for the job's model first,
        # declaration order breaking ties (sort is stable).
        self._order = {
            job.name: sorted(
                (cls.name for cls in fleet.classes),
                key=lambda name: -fleet.speedup_for(job.model.name, name),
            )
            for job in jobs
        }
        self._types = {
            job.name: {
                cls.name: cls.replica_type(fleet.speedup_for(job.model.name, cls.name))
                for cls in fleet.classes
            }
            for job in jobs
        }
        self.assignments: dict[str, dict[str, int]] = {
            name: {} for name in self.job_names
        }

    # ---------------------------------------------------------- assignment

    def _hint_valid(
        self, name: str, target: int, hint: dict[str, int] | None, remaining: dict[str, int]
    ) -> bool:
        if not hint:
            return False
        if any(cls not in remaining for cls in hint):
            return False
        if sum(hint.values()) != target:
            return False
        return all(count <= remaining[cls] for cls, count in hint.items())

    def assign(
        self,
        targets: dict[str, int],
        hints: dict[str, dict[str, int]] | None = None,
    ) -> dict[str, dict[str, int]]:
        """Map per-job replica targets onto the fleet inventory.

        Deterministic and recomputed from scratch: jobs place in job order,
        each taking its (valid) hint or filling fastest-first.  ``targets``
        must fit the fleet in total -- the quota loop guarantees that,
        since the quota *is* the fleet's total slot count.
        """
        hints = hints or {}
        remaining = self.fleet.counts()
        result: dict[str, dict[str, int]] = {}
        for name in self.job_names:
            target = int(targets.get(name, 0))
            hint = hints.get(name)
            if self._hint_valid(name, target, hint, remaining):
                alloc = {cls: int(n) for cls, n in hint.items() if n > 0}
                for cls, count in alloc.items():
                    remaining[cls] -= count
                result[name] = alloc
                continue
            alloc = {}
            left = target
            for cls in self._order[name]:
                if left == 0:
                    break
                take = min(left, remaining[cls])
                if take > 0:
                    alloc[cls] = take
                    remaining[cls] -= take
                    left -= take
            if left > 0:
                raise ValueError(
                    f"device fleet has no room for {left} of job {name!r}'s "
                    f"{target} replicas (inventory {self.fleet.counts()})"
                )
            result[name] = alloc
        self.assignments = result
        return result

    # ----------------------------------------------------------- reduction

    def effective_proc_time(self, name: str, counts: dict[str, int] | None = None) -> float:
        """Effective homogeneous processing time of a job's current pool.

        ``mixed_pool_stats`` over the job's per-class counts; an empty pool
        returns the reference processing time (there is nothing to serve
        with, and the backends handle zero replicas themselves).
        """
        if counts is None:
            counts = self.assignments.get(name, {})
        ref = self._ref_proc[name]
        pool = {
            self._types[name][cls]: count
            for cls, count in counts.items()
            if count > 0
        }
        if not pool:
            return ref
        servers, proc_eff = mixed_pool_stats(pool, ref)
        return proc_eff

    def metadata(self) -> dict:
        """Fleet description for result metadata."""
        return {
            "device_classes": {cls.name: cls.count for cls in self.fleet.classes},
        }
