"""Workload traces (paper §6 "Workloads").

The paper drives its evaluation with the top-9 Azure Functions 2019
invocation traces plus one Twitter 2018 stream trace, rescaled to 1-1600
requests/minute over 11 days (days 1-10 train the predictor, day 11 is the
evaluation day), and compressed into 4-minute windows for cluster runs.

Those production traces are not redistributable/offline, so
:mod:`repro.traces.azure` and :mod:`repro.traces.twitter` generate synthetic
equivalents with the structure the evaluation actually exercises: strong
diurnal cycles, day-to-day drift, heavy-tailed bursts and noise.  All
generators are deterministic given a seed.
"""

from repro.traces.azure import AzureTraceConfig, generate_azure_trace
from repro.traces.twitter import TwitterTraceConfig, generate_twitter_trace
from repro.traces.scaling import (
    compress_windows,
    rescale_trace,
    train_eval_split,
)
from repro.traces.library import JobTrace, standard_job_mix, standard_mix_source
from repro.traces.generators import (
    TraceSourceInfo,
    TraceSourceRegistry,
    get_trace_source_registry,
    register_trace_source,
)
from repro.traces.transforms import (
    TraceTransformInfo,
    TraceTransformRegistry,
    get_trace_transform_registry,
    register_trace_transform,
)
from repro.traces.io import (
    load_job_mix_json,
    load_trace_csv,
    save_job_mix_json,
    save_trace_csv,
)
from repro.traces.stats import (
    TraceStats,
    autocorrelation,
    burstiness,
    describe_trace,
    diurnal_strength,
    peak_to_mean,
)

__all__ = [
    "AzureTraceConfig",
    "generate_azure_trace",
    "TwitterTraceConfig",
    "generate_twitter_trace",
    "rescale_trace",
    "compress_windows",
    "train_eval_split",
    "JobTrace",
    "standard_job_mix",
    "standard_mix_source",
    "TraceSourceInfo",
    "TraceSourceRegistry",
    "register_trace_source",
    "get_trace_source_registry",
    "TraceTransformInfo",
    "TraceTransformRegistry",
    "register_trace_transform",
    "get_trace_transform_registry",
    "save_trace_csv",
    "load_trace_csv",
    "save_job_mix_json",
    "load_job_mix_json",
    "peak_to_mean",
    "burstiness",
    "autocorrelation",
    "diurnal_strength",
    "TraceStats",
    "describe_trace",
]

#: Minutes per day at the traces' native 1-minute resolution.
MINUTES_PER_DAY = 1440
