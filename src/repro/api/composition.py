"""Declarative scenario composition: typed Trace/Job/Cluster specs.

Scenarios used to be born imperatively: three opaque factories with the
paper's traces hardwired.  This module makes workload birth declarative,
mirroring the policy/backend registries:

- :class:`TraceSpec` -- one job's arrival process as a *pipeline*: a
  registered trace source (:mod:`repro.traces.generators`) plus an ordered
  list of registered transforms (:mod:`repro.traces.transforms`);
- :class:`JobSpec` -- a job: name, model (catalog name or inline profile),
  SLO (explicit target or paper-convention multiple), priority, replica
  floor, and its trace pipeline(s);
- :class:`ClusterSpec` -- the cluster: total replicas;
- :func:`custom_scenario` -- the ``custom`` scenario kind: builds a
  complete :class:`~repro.experiments.scenarios.Scenario` from those specs
  alone, so a JSON/YAML file -- no Python -- defines heterogeneous models,
  SLOs, and synthetic+replayed workloads end to end.

The three built-in kinds are sugar over this form:
:meth:`repro.api.ScenarioSpec.lower` re-expresses ``paper`` / ``mixed`` /
``large-scale`` parameters as an equivalent ``custom`` spec (via the
``lower_*`` functions here), and the lowered spec's simulated statistics
are pinned bit-identical to the legacy factories
(``tests/test_composition.py``).

All specs are frozen, validate eagerly, and round-trip losslessly through
``to_dict``/``from_dict``, so they embed directly in
:class:`~repro.api.spec.ScenarioSpec` parameters and spec files.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.spec import _check_keys, _normalize, _plain
from repro.cluster.job import InferenceJobSpec
from repro.cluster.models import RESNET18, RESNET34, ModelProfile
from repro.core.utility import SLO
from repro.experiments.scenarios import (
    CLUSTER_SIZES,
    Scenario,
    large_scale_scenario,
    mixed_model_scenario,
    paper_scenario,
)
from repro.hetero.types import DeviceClass, DeviceFleet
from repro.traces.generators import (
    check_unknown_params,
    get_trace_source_registry,
    signature_params,
)
from repro.traces.library import standard_mix_source
from repro.traces.transforms import get_trace_transform_registry

__all__ = [
    "MODEL_CATALOG",
    "TransformStep",
    "TraceSpec",
    "JobSpec",
    "ClusterSpec",
    "custom_scenario",
    "validate_custom_params",
    "lower_paper",
    "lower_mixed",
    "lower_large_scale",
    "lower_custom",
]

#: Named model profiles a spec file can reference by string.
MODEL_CATALOG: dict[str, ModelProfile] = {
    "resnet34": RESNET34,
    "resnet18": RESNET18,
}

#: Minutes per day at the traces' native resolution.
MINUTES_PER_DAY = 1440


# ------------------------------------------------------------- trace specs


@dataclass(frozen=True)
class TransformStep:
    """One transform application in a trace pipeline."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transform name must be non-empty")

        def despec(value: Any) -> Any:
            if isinstance(value, TraceSpec):
                return value.to_dict()
            if isinstance(value, (list, tuple)):
                return [despec(item) for item in value]
            return value

        params = {key: despec(value) for key, value in dict(self.params).items()}
        object.__setattr__(self, "params", _normalize(params))

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name}
        if self.params:
            data["params"] = _plain(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "TransformStep":
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(data, {"name", "params"}, "trace transform step")
        if "name" not in data:
            raise ValueError("trace transform step requires a 'name'")
        return cls(name=data["name"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class TraceSpec:
    """A job's arrival process as a value: source pipeline + transforms.

    ``build()`` materializes the per-minute series; ``validate()`` resolves
    every source/transform name and parameter against the registries
    (recursively, through ``superpose``/``splice`` nests) *without*
    generating any data -- the check a spec file gets at load time.
    """

    source: str
    params: dict[str, Any] = field(default_factory=dict)
    transforms: tuple[TransformStep, ...] = ()

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("trace source must be non-empty")
        object.__setattr__(self, "params", _normalize(self.params))
        steps = tuple(
            step if isinstance(step, TransformStep) else TransformStep.from_dict(step)
            for step in self.transforms
        )
        object.__setattr__(self, "transforms", steps)

    def validate(self) -> None:
        """Resolve names/parameters against the registries; no generation."""
        source_info = get_trace_source_registry().get(self.source)
        source_info.check_params(self.params)
        transform_registry = get_trace_transform_registry()
        for step in self.transforms:
            info = transform_registry.get(step.name)
            info.check_params(step.params)
            for nested_name in info.nested_params:
                nested = step.params.get(nested_name)
                if nested is None:
                    raise ValueError(
                        f"trace transform {step.name!r} requires a nested "
                        f"{nested_name!r} pipeline"
                    )
                # A nested param holds one pipeline (superpose/splice) or a
                # list of pipelines (mixture); both recurse.
                if isinstance(nested, (TraceSpec, Mapping, str)):
                    items: Sequence[Any] = [nested]
                elif isinstance(nested, Sequence):
                    items = nested
                else:
                    items = [nested]
                if not items:
                    raise ValueError(
                        f"trace transform {step.name!r} requires at least one "
                        f"nested {nested_name!r} pipeline"
                    )
                for item in items:
                    nested_spec = (
                        item
                        if isinstance(item, TraceSpec)
                        else TraceSpec.from_dict(item)
                    )
                    nested_spec.validate()

    def build(self) -> np.ndarray:
        """Generate the series: source output through each transform in order."""
        series = get_trace_source_registry().build(self.source, self.params)
        transform_registry = get_trace_transform_registry()
        for step in self.transforms:
            series = transform_registry.apply(step.name, series, step.params)
        return series

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"source": self.source, "params": _plain(self.params)}
        if self.transforms:
            data["transforms"] = [step.to_dict() for step in self.transforms]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "TraceSpec":
        if isinstance(data, str):
            return cls(source=data)
        _check_keys(data, {"source", "params", "transforms"}, "trace spec")
        if "source" not in data:
            raise ValueError("trace spec requires a 'source'")
        return cls(
            source=data["source"],
            params=dict(data.get("params", {})),
            transforms=tuple(
                TransformStep.from_dict(step) for step in data.get("transforms", ())
            ),
        )


# --------------------------------------------------------------- job specs


def _normalize_model(model: Any) -> str | dict[str, Any]:
    """Catalog name or inline :class:`ModelProfile` fields, validated."""
    if isinstance(model, ModelProfile):
        model = dataclasses.asdict(model)
    if isinstance(model, str):
        if model.lower() not in MODEL_CATALOG:
            raise ValueError(
                f"unknown model {model!r}; catalog: {sorted(MODEL_CATALOG)} "
                "(or pass an inline profile mapping)"
            )
        return model
    if isinstance(model, Mapping):
        fields = {f.name for f in dataclasses.fields(ModelProfile)}
        _check_keys(model, fields, "inline model profile")
        missing = {"name", "proc_time"} - set(model)
        if missing:
            raise ValueError(f"inline model profile is missing {sorted(missing)}")
        ModelProfile(**model)  # value validation (positive proc_time, ...)
        return _normalize(dict(model))
    raise ValueError(
        f"model must be a catalog name or a profile mapping, got {type(model).__name__}"
    )


def _normalize_slo(slo: Any) -> dict[str, Any] | None:
    """``None`` (paper default), a target, or a multiple-of-proc-time."""
    if slo is None:
        return None
    if isinstance(slo, SLO):
        slo = {"target": slo.target, "percentile": slo.percentile}
    if not isinstance(slo, Mapping):
        raise ValueError(f"slo must be a mapping, got {type(slo).__name__}")
    _check_keys(slo, {"target", "multiple", "percentile"}, "job SLO")
    if ("target" in slo) == ("multiple" in slo):
        raise ValueError("job SLO needs exactly one of 'target' or 'multiple'")
    percentile = slo.get("percentile", 99.0)
    if not 0.0 < float(percentile) <= 100.0:
        raise ValueError(f"SLO percentile must be in (0, 100], got {percentile}")
    if "target" in slo and float(slo["target"]) <= 0:
        raise ValueError(f"SLO target must be positive, got {slo['target']}")
    if "multiple" in slo and float(slo["multiple"]) <= 0:
        raise ValueError(f"SLO multiple must be positive, got {slo['multiple']}")
    return _normalize(dict(slo))


@dataclass(frozen=True)
class JobSpec:
    """One inference job as a value: model, SLO, and trace pipeline(s).

    ``trace`` is the job's full series; unless ``train_trace`` supplies a
    separate predictor-training series, the scenario's ``train_minutes``
    splits ``trace`` into train/eval halves (the paper's days-1-10 /
    day-11 convention, generalized).
    """

    name: str
    trace: TraceSpec
    model: str | dict[str, Any] = "resnet34"
    slo: dict[str, Any] | None = None
    priority: float = 1.0
    min_replicas: int = 1
    train_trace: TraceSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.priority <= 0:
            raise ValueError(f"priority must be positive, got {self.priority}")
        object.__setattr__(
            self,
            "min_replicas",
            _coerce_whole(self.min_replicas, "min_replicas", minimum=1, optional=False),
        )
        trace = (
            self.trace
            if isinstance(self.trace, TraceSpec)
            else TraceSpec.from_dict(self.trace)
        )
        object.__setattr__(self, "trace", trace)
        if self.train_trace is not None:
            train = (
                self.train_trace
                if isinstance(self.train_trace, TraceSpec)
                else TraceSpec.from_dict(self.train_trace)
            )
            object.__setattr__(self, "train_trace", train)
        object.__setattr__(self, "model", _normalize_model(self.model))
        object.__setattr__(self, "slo", _normalize_slo(self.slo))

    def validate(self) -> None:
        self.trace.validate()
        if self.train_trace is not None:
            self.train_trace.validate()

    def resolve_model(self) -> ModelProfile:
        if isinstance(self.model, str):
            return MODEL_CATALOG[self.model.lower()]
        return ModelProfile(**self.model)

    def to_inference_spec(self) -> InferenceJobSpec:
        model = self.resolve_model()
        if self.slo is None or "multiple" in self.slo:
            slo = self.slo or {}
            return InferenceJobSpec.with_default_slo(
                self.name,
                model,
                slo_multiple=float(slo.get("multiple", 4.0)),
                percentile=float(slo.get("percentile", 99.0)),
                priority=self.priority,
                min_replicas=self.min_replicas,
            )
        return InferenceJobSpec(
            name=self.name,
            model=model,
            slo=SLO(
                target=float(self.slo["target"]),
                percentile=float(self.slo.get("percentile", 99.0)),
            ),
            priority=self.priority,
            min_replicas=self.min_replicas,
        )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "model": _plain(self.model),
            "trace": self.trace.to_dict(),
        }
        if self.slo is not None:
            data["slo"] = _plain(self.slo)
        if self.priority != 1.0:
            data["priority"] = self.priority
        if self.min_replicas != 1:
            data["min_replicas"] = self.min_replicas
        if self.train_trace is not None:
            data["train_trace"] = self.train_trace.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        _check_keys(
            data,
            {"name", "model", "trace", "slo", "priority", "min_replicas", "train_trace"},
            "job spec",
        )
        missing = {"name", "trace"} - set(data)
        if missing:
            raise ValueError(f"job spec is missing {sorted(missing)}")
        return cls(
            name=data["name"],
            trace=TraceSpec.from_dict(data["trace"]),
            model=data.get("model", "resnet34"),
            slo=data.get("slo"),
            priority=float(data.get("priority", 1.0)),
            min_replicas=data.get("min_replicas", 1),
            train_trace=(
                TraceSpec.from_dict(data["train_trace"])
                if data.get("train_trace") is not None
                else None
            ),
        )


#: Per-device-class fields a spec file may set (name/count required).
_DEVICE_CLASS_KEYS = {
    "name",
    "count",
    "speedup",
    "cpus",
    "mem",
    "accels",
    "cost_per_hour",
}

#: DeviceClass fields whose defaults are omitted from ``to_dict``.
_DEVICE_CLASS_DEFAULTS = {
    "speedup": 1.0,
    "cpus": 1.0,
    "mem": 1.0,
    "accels": 0.0,
    "cost_per_hour": 0.0,
}


def _coerce_device_class(data: Any) -> DeviceClass:
    if isinstance(data, DeviceClass):
        return data
    if not isinstance(data, Mapping):
        raise ValueError(
            f"device class must be a mapping, got {type(data).__name__}"
        )
    _check_keys(data, _DEVICE_CLASS_KEYS, "device class")
    missing = {"name", "count"} - set(data)
    if missing:
        raise ValueError(f"device class is missing {sorted(missing)}")
    fields = dict(data)
    fields["count"] = _coerce_whole(
        fields["count"], f"device class {fields['name']!r} count",
        minimum=1, optional=False,
    )
    for key in _DEVICE_CLASS_DEFAULTS:
        if key in fields:
            fields[key] = float(fields[key])
    return DeviceClass(**fields)


@dataclass(frozen=True)
class ClusterSpec:
    """The cluster as a value: total replica capacity, optionally typed.

    The homogeneous form is a bare ``total_replicas`` -- unchanged, and
    byte-identical through ``to_dict``.  A heterogeneous cluster instead
    lists ``device_classes`` (name, count, per-resource footprint, default
    speedup) plus an optional per-(model, class) ``throughput`` matrix of
    speedups relative to the reference CPU processing time;
    ``total_replicas`` may then be omitted (it is the sum of class counts)
    or stated redundantly (it must match).  A single class with speedup 1
    *is* the homogeneous cluster -- not a separate code path.
    """

    total_replicas: int | None = None
    device_classes: tuple[DeviceClass, ...] = ()
    throughput: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        classes = tuple(_coerce_device_class(cls) for cls in self.device_classes)
        object.__setattr__(self, "device_classes", classes)
        if self.throughput and not classes:
            raise ValueError(
                "cluster spec has a 'throughput' matrix but no 'device_classes'"
            )
        matrix = {
            str(model): {str(name): float(v) for name, v in dict(row).items()}
            for model, row in dict(self.throughput).items()
        }
        object.__setattr__(self, "throughput", matrix)
        if classes:
            # DeviceFleet validates class names, matrix references, and
            # speedup positivity; build it once here to fail at load time.
            derived = self.to_fleet().total_count()
            total = _coerce_whole(self.total_replicas, "total_replicas", minimum=1)
            if total is not None and total != derived:
                raise ValueError(
                    f"total_replicas={total} does not match the "
                    f"{derived} slots the device classes provide"
                )
            object.__setattr__(self, "total_replicas", derived)
        else:
            object.__setattr__(
                self,
                "total_replicas",
                _coerce_whole(
                    self.total_replicas, "total_replicas", minimum=1, optional=False
                ),
            )

    def to_fleet(self) -> DeviceFleet | None:
        """The typed fleet, or None for the homogeneous single-pool form."""
        if not self.device_classes:
            return None
        return DeviceFleet(classes=self.device_classes, speedups=self.throughput)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"total_replicas": self.total_replicas}
        if self.device_classes:
            data["device_classes"] = [
                {
                    "name": cls.name,
                    "count": cls.count,
                    **{
                        key: getattr(cls, key)
                        for key, default in _DEVICE_CLASS_DEFAULTS.items()
                        if getattr(cls, key) != default
                    },
                }
                for cls in self.device_classes
            ]
        if self.throughput:
            data["throughput"] = {
                model: dict(row) for model, row in self.throughput.items()
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | int) -> "ClusterSpec":
        if isinstance(data, int):
            return cls(total_replicas=data)
        _check_keys(
            data, {"total_replicas", "device_classes", "throughput"}, "cluster spec"
        )
        if "total_replicas" not in data and not data.get("device_classes"):
            raise ValueError(
                "cluster spec requires 'total_replicas' or 'device_classes'"
            )
        return cls(
            total_replicas=data.get("total_replicas"),
            device_classes=tuple(data.get("device_classes", ())),
            throughput=dict(data.get("throughput", {})),
        )


# ------------------------------------------------------- the custom kind


def _coerce_whole(
    value: Any, name: str, minimum: int = 0, optional: bool = True
) -> int | None:
    """Whole-count parameter: accepts 10 or 10.0, rejects 10.5 and -1.

    JSON has one number type, so spec files legitimately deliver integral
    floats; silently truncating a fractional one would change semantics
    (replica counts, split points), and an uncast float would crash later
    as a slice index -- both must fail here, at validation time.
    """
    if value is None:
        if not optional:
            raise ValueError(f"{name} must be a whole number, not null")
        return None
    try:
        as_int = int(value)
    except (TypeError, ValueError, OverflowError) as exc:
        # OverflowError: json.loads happily yields Infinity.
        raise ValueError(f"{name} must be a whole number, got {value!r}") from exc
    if as_int != value:
        raise ValueError(f"{name} must be a whole number, got {value!r}")
    if as_int < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return as_int


def _coerce_rate_scale(value: Any) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"rate_scale must be a number, got {value!r}") from exc
    # json.loads yields Infinity/NaN for their literals; neither is a rate.
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"rate_scale must be a finite number >= 0, got {value}")
    return value


@dataclass(frozen=True)
class _ParsedCustom:
    """Typed result of parsing the ``custom`` kind's raw parameters."""

    jobs: tuple[JobSpec, ...]
    cluster: ClusterSpec
    train_minutes: int | None
    eval_offset_minutes: int
    duration_minutes: int | None
    history_prefix_minutes: int


def _parse_custom(
    jobs: Sequence[Any],
    cluster: Any,
    train_minutes: Any,
    eval_offset_minutes: Any,
    duration_minutes: Any,
    history_prefix_minutes: Any,
) -> _ParsedCustom:
    """Shared parse/validation for :func:`custom_scenario` and the
    load-time :func:`validate_custom_params` hook."""
    if not isinstance(jobs, Sequence) or isinstance(jobs, (str, bytes)):
        raise ValueError("custom scenario 'jobs' must be a list of job specs")
    job_specs = tuple(
        job if isinstance(job, JobSpec) else JobSpec.from_dict(job) for job in jobs
    )
    if not job_specs:
        raise ValueError("custom scenario needs at least one job")
    names = [job.name for job in job_specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate job names in custom scenario: {names}")
    if cluster is None:
        raise ValueError("custom scenario requires a 'cluster'")
    cluster_spec = (
        cluster if isinstance(cluster, ClusterSpec) else ClusterSpec.from_dict(cluster)
    )
    # Infeasible capacity fails here, at load time, not in a sweep worker
    # -- and against the *sum of replica floors*, which the built Scenario
    # only partially checks (one replica per job).
    floors = sum(job.min_replicas for job in job_specs)
    if cluster_spec.total_replicas < floors:
        raise ValueError(
            f"cluster of {cluster_spec.total_replicas} replicas cannot host "
            f"{len(job_specs)} job(s) whose min_replicas floors sum to {floors}"
        )
    # A throughput matrix row for a model no job uses is a typo, not a
    # forward declaration -- fail at load time like every other bad key.
    fleet = cluster_spec.to_fleet()
    if fleet is not None and fleet.speedups:
        model_names = {job.resolve_model().name for job in job_specs}
        unknown_models = set(fleet.speedups) - model_names
        if unknown_models:
            raise ValueError(
                f"cluster throughput matrix references model(s) "
                f"{sorted(unknown_models)} not used by any job; job models: "
                f"{sorted(model_names)}"
            )
    train_minutes = _coerce_whole(train_minutes, "train_minutes", minimum=1)
    if train_minutes is None and any(job.train_trace is None for job in job_specs):
        raise ValueError(
            "custom scenario requires 'train_minutes' (the train/eval "
            "split point) when a job has no explicit 'train_trace'"
        )
    for job in job_specs:
        job.validate()
    return _ParsedCustom(
        jobs=job_specs,
        cluster=cluster_spec,
        train_minutes=train_minutes,
        eval_offset_minutes=_coerce_whole(
            eval_offset_minutes, "eval_offset_minutes", optional=False
        ),
        # None means "no trim"; an explicit 0 is ambiguous (unlimited?
        # empty?) and must fail loudly instead of silently meaning None.
        duration_minutes=_coerce_whole(
            duration_minutes, "duration_minutes", minimum=1
        ),
        history_prefix_minutes=_coerce_whole(
            history_prefix_minutes, "history_prefix_minutes", optional=False
        ),
    )


def custom_scenario(
    jobs: Sequence[Any] = (),
    cluster: Any = None,
    name: str = "custom",
    train_minutes: int | None = None,
    eval_offset_minutes: int = 0,
    duration_minutes: int | None = None,
    history_prefix_minutes: int = 16,
    rate_scale: float = 1.0,
    metadata: Mapping[str, Any] | None = None,
) -> Scenario:
    """Build a :class:`Scenario` from Trace/Job/Cluster specs alone.

    Per job: its ``trace`` pipeline generates the full series, split at
    ``train_minutes`` into predictor-training and evaluation halves (or
    the job's ``train_trace`` pipeline supplies training data and the
    whole ``trace`` evaluates).  ``eval_offset_minutes`` skips into the
    evaluation series, ``duration_minutes`` trims it, all jobs are cut to
    the shortest evaluation window, and the ``history_prefix_minutes``
    immediately preceding the window seed the predictors' rate histories
    -- exactly the semantics of the legacy paper factories, which lower
    onto this kind (:func:`lower_paper` and friends).
    """
    parsed = _parse_custom(
        jobs,
        cluster,
        train_minutes,
        eval_offset_minutes,
        duration_minutes,
        history_prefix_minutes,
    )
    rate_scale = _coerce_rate_scale(rate_scale)
    eval_traces: dict[str, np.ndarray] = {}
    train_traces: dict[str, np.ndarray] = {}
    history_prefix: dict[str, np.ndarray] = {}
    for job in parsed.jobs:
        full = job.trace.build()
        if job.train_trace is not None:
            train = job.train_trace.build()
            eval_full = full
        else:
            cut = parsed.train_minutes
            if cut >= full.shape[0]:
                raise ValueError(
                    f"job {job.name!r}: trace of {full.shape[0]} minutes has "
                    f"no data after train_minutes={cut}"
                )
            train = full[:cut]
            eval_full = full[cut:]
        series = eval_full
        if parsed.eval_offset_minutes:
            series = series[parsed.eval_offset_minutes:]
        if parsed.duration_minutes is not None:
            series = series[: parsed.duration_minutes]
        if series.size == 0:
            raise ValueError(
                f"job {job.name!r} has an empty evaluation window (offset "
                f"{parsed.eval_offset_minutes} past {eval_full.shape[0]} minutes)"
            )
        eval_traces[job.name] = series
        train_traces[job.name] = train
        # The minutes immediately preceding the evaluation window seed the
        # predictors' rate histories, spanning the train/eval boundary when
        # the offset is small (same slice the legacy factories take).
        combined = np.concatenate([train, eval_full])
        boundary = train.shape[0] + parsed.eval_offset_minutes
        history_prefix[job.name] = combined[
            max(boundary - parsed.history_prefix_minutes, 0) : boundary
        ]
    minutes = min(series.shape[0] for series in eval_traces.values())
    eval_traces = {name_: series[:minutes] for name_, series in eval_traces.items()}
    return Scenario(
        name=name,
        jobs=[job.to_inference_spec() for job in parsed.jobs],
        eval_traces=eval_traces,
        train_traces=train_traces,
        total_replicas=parsed.cluster.total_replicas,
        duration_minutes=minutes,
        rate_scale=rate_scale,
        history_prefix=history_prefix,
        metadata=dict(metadata or {}),
        devices=parsed.cluster.to_fleet(),
    )


def validate_custom_params(params: Mapping[str, Any]) -> None:
    """Load-time validation hook: full parse, zero trace generation."""
    params = dict(params)
    _parse_custom(
        params.get("jobs", ()),
        params.get("cluster"),
        params.get("train_minutes"),
        params.get("eval_offset_minutes", 0),
        params.get("duration_minutes"),
        params.get("history_prefix_minutes", 16),
    )
    _coerce_rate_scale(params.get("rate_scale", 1.0))


# ----------------------------------------------------------------- lowering


def _resolved_defaults(
    factory, params: Mapping[str, Any], kind: str
) -> dict[str, Any]:
    """Factory defaults overlaid with the spec's explicit parameters.

    The name check is a backstop for direct ``lower_*`` calls;
    :meth:`repro.api.ScenarioSpec.lower` has already run it.
    """
    names, defaults, _ = signature_params(factory)
    check_unknown_params(params, names, f"scenario kind {kind!r}")
    return {**defaults, **params}


def _mix_job(
    index: int, days: int, seed: int, rate_hi: float, model: str
) -> dict[str, Any]:
    """Job ``index`` of the paper mix as a composed job spec (dict form)."""
    source, source_params = standard_mix_source(index, days, seed)
    return JobSpec(
        name=f"job{index:02d}-{source}",
        model=model,
        trace=TraceSpec(
            source=source,
            params=source_params,
            transforms=(
                TransformStep(name="rescale", params={"lo": 1.0, "hi": rate_hi}),
            ),
        ),
    ).to_dict()


def _lower_mix(
    name: str,
    num_jobs: int,
    days: int,
    seed: int,
    rate_hi: float,
    models: Sequence[str],
    total_replicas: int,
    duration_minutes: int | None,
    rate_scale: float,
    eval_offset_minutes: int,
    metadata: Mapping[str, Any],
) -> dict[str, Any]:
    if days < 2:
        raise ValueError(f"need >= 2 days for a train/eval split, got {days}")
    return {
        "name": name,
        "jobs": [
            _mix_job(index, days, seed, rate_hi, models[index])
            for index in range(num_jobs)
        ],
        "cluster": {"total_replicas": total_replicas},
        "train_minutes": (days - 1) * MINUTES_PER_DAY,
        "eval_offset_minutes": eval_offset_minutes,
        # The legacy factories treat any falsy duration (None or 0) as "no
        # trim"; the custom kind spells that None and rejects a bare 0.
        "duration_minutes": duration_minutes if duration_minutes else None,
        "rate_scale": rate_scale,
        "metadata": dict(metadata),
    }


def lower_paper(params: Mapping[str, Any]) -> dict[str, Any]:
    """``paper`` kind parameters -> equivalent ``custom`` parameters."""
    p = _resolved_defaults(paper_scenario, params, "paper")
    size = p["size"]
    if isinstance(size, str):
        if size not in CLUSTER_SIZES:
            raise ValueError(
                f"unknown size {size!r}; expected one of {list(CLUSTER_SIZES)}"
            )
        total, label = CLUSTER_SIZES[size], size
    else:
        total, label = int(size), str(size)
    num_jobs = int(p["num_jobs"])
    return _lower_mix(
        name=f"paper-{label}-{num_jobs}jobs",
        num_jobs=num_jobs,
        days=int(p["days"]),
        seed=int(p["seed"]),
        rate_hi=float(p["rate_hi"]),
        models=["resnet34"] * num_jobs,
        total_replicas=total,
        duration_minutes=p["duration_minutes"],
        rate_scale=float(p["rate_scale"]),
        eval_offset_minutes=int(p["eval_offset_minutes"]),
        metadata={"size": label},
    )


def lower_mixed(params: Mapping[str, Any]) -> dict[str, Any]:
    """``mixed`` kind parameters -> equivalent ``custom`` parameters."""
    p = _resolved_defaults(mixed_model_scenario, params, "mixed")
    num_jobs = int(p["num_jobs"])
    total = int(p["total_replicas"])
    models = ["resnet18" if index % 2 == 0 else "resnet34" for index in range(num_jobs)]
    return _lower_mix(
        name=f"mixed-{total}r-{num_jobs}jobs",
        num_jobs=num_jobs,
        days=int(p["days"]),
        seed=int(p["seed"]),
        rate_hi=1600.0,
        models=models,
        total_replicas=total,
        duration_minutes=p["duration_minutes"],
        rate_scale=float(p["rate_scale"]),
        eval_offset_minutes=int(p["eval_offset_minutes"]),
        metadata={"size": "mixed"},
    )


def lower_large_scale(params: Mapping[str, Any]) -> dict[str, Any]:
    """``large-scale`` kind parameters -> equivalent ``custom`` parameters."""
    p = _resolved_defaults(large_scale_scenario, params, "large-scale")
    num_jobs = int(p["num_jobs"])
    total = int(p["total_replicas"])
    return _lower_mix(
        name=f"scale-{num_jobs}jobs-{total}r",
        num_jobs=num_jobs,
        days=int(p["days"]),
        seed=int(p["seed"]),
        rate_hi=1600.0,
        models=["resnet34"] * num_jobs,
        total_replicas=total,
        duration_minutes=p["duration_minutes"],
        rate_scale=float(p["rate_scale"]),
        eval_offset_minutes=int(p["eval_offset_minutes"]),
        metadata={"size": f"{num_jobs}jobs"},
    )


def lower_custom(params: Mapping[str, Any]) -> dict[str, Any]:
    """The ``custom`` kind is already the composed form: lowering is identity."""
    return dict(params)
