"""Lint driver: collect files, run passes, apply baseline, format reports.

This is the engine behind ``repro-faro lint``.  The flow is:

1. :func:`collect_files` expands paths (or :func:`changed_files` in
   ``--changed`` mode) into a sorted list of ``.py`` files;
2. :func:`run_analysis` parses each file once into a
   :class:`~repro.analysis.findings.ModuleContext`, runs every registered
   file pass over it, runs project passes once against the repo root,
   drops findings covered by inline suppressions, and applies the
   checked-in baseline (:class:`Baseline`);
3. the resulting :class:`AnalysisReport` renders as text or JSON and
   maps to the process exit code (0 clean, 1 findings).

Baseline entries are matched by :meth:`Finding.fingerprint` -- pass id +
path + flagged-line text -- so they survive unrelated edits, and every
entry must carry a written justification: a grandfathered finding without
a reason is indistinguishable from a silenced bug.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.findings import (
    Finding,
    ModuleContext,
    ProjectContext,
)
from repro.analysis.registry import AnalysisPassRegistry, get_pass_registry

__all__ = [
    "AnalysisReport",
    "Baseline",
    "collect_files",
    "changed_files",
    "find_project_root",
    "run_analysis",
]


# ------------------------------------------------------------------ files


def collect_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    Hidden directories and ``__pycache__`` are skipped; a named file is
    taken as-is (so ``repro-faro lint one_file.py`` works on anything).
    """
    out: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts):
                    continue
                out.add(candidate.resolve())
        elif path.suffix == ".py":
            out.add(path.resolve())
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def changed_files(
    paths: Sequence[Path | str],
    *,
    base: str = "main",
    root: Path | None = None,
) -> list[Path]:
    """Files under ``paths`` that differ from ``git merge-base HEAD <base>``.

    The fast pre-commit mode: lints only what this branch touched.
    Untracked files count as changed.  Raises ``RuntimeError`` when git
    is unavailable or ``base`` does not resolve.
    """
    root = (root or find_project_root(paths) or Path.cwd()).resolve()

    def git(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args], cwd=root, capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(args)} failed: {proc.stderr.strip()}"
            )
        return proc.stdout

    merge_base = git("merge-base", "HEAD", base).strip()
    changed = set(git("diff", "--name-only", merge_base, "--").splitlines())
    changed.update(
        git("ls-files", "--others", "--exclude-standard").splitlines()
    )
    changed_abs = {(root / name).resolve() for name in changed if name}
    return [p for p in collect_files(paths) if p in changed_abs]


def find_project_root(paths: Sequence[Path | str]) -> Path | None:
    """Nearest ancestor holding the repo layout (tools/check_perf.py or .git)."""
    seeds = [Path(p).resolve() for p in paths] or [Path.cwd()]
    for seed in seeds:
        probe = seed if seed.is_dir() else seed.parent
        while True:
            if (probe / "tools" / "check_perf.py").exists() or (
                probe / ".git"
            ).exists():
                return probe
            if probe.parent == probe:
                break
            probe = probe.parent
    return None


# --------------------------------------------------------------- baseline


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is tolerated."""

    pass_id: str
    path: str
    fingerprint: str
    justification: str

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_id,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The checked-in grandfather list (``tools/lint_baseline.json``)."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, Mapping) or not isinstance(
            data.get("findings"), list
        ):
            raise ValueError(
                f"baseline {path} must be an object with a 'findings' list"
            )
        entries = []
        for raw in data["findings"]:
            missing = {"pass", "path", "fingerprint", "justification"} - set(raw)
            if missing:
                raise ValueError(
                    f"baseline {path} entry is missing {sorted(missing)}"
                )
            if not str(raw["justification"]).strip():
                raise ValueError(
                    f"baseline {path} entry for {raw['path']} has an empty "
                    "justification; every grandfathered finding must say why"
                )
            entries.append(
                BaselineEntry(
                    pass_id=raw["pass"],
                    path=raw["path"],
                    fingerprint=raw["fingerprint"],
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    pass_id=f.pass_id,
                    path=f.path,
                    fingerprint=f.fingerprint(),
                    justification=justification,
                )
                for f in findings
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "findings": [e.to_dict() for e in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def split(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """(new findings, grandfathered findings, stale baseline entries)."""
        by_print = {e.fingerprint: e for e in self.entries}
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            entry = by_print.get(finding.fingerprint())
            if entry is None:
                new.append(finding)
            else:
                grandfathered.append(finding)
                seen.add(entry.fingerprint)
        stale = [e for e in self.entries if e.fingerprint not in seen]
        return new, grandfathered, stale


# ----------------------------------------------------------------- report


@dataclass
class AnalysisReport:
    """Outcome of one lint run, ready to render or exit on."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    passes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "passes": list(self.passes),
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": [f.to_dict() for f in self.grandfathered],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
        }

    def format_text(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(f"{finding.location()}: [{finding.pass_id}] {finding.message}")
            if finding.snippet:
                lines.append(f"    {finding.snippet}")
        if self.stale_baseline:
            lines.append("")
            for entry in self.stale_baseline:
                lines.append(
                    f"note: stale baseline entry {entry.fingerprint} "
                    f"({entry.pass_id} in {entry.path}) no longer matches; "
                    "remove it from the baseline"
                )
        summary = (
            f"{len(self.findings)} finding(s) in {self.files} file(s), "
            f"{len(self.passes)} pass(es)"
        )
        extras = []
        if self.grandfathered:
            extras.append(f"{len(self.grandfathered)} baselined")
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed inline")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append("")
        lines.append(("OK: " if self.ok else "FAIL: ") + summary)
        return "\n".join(lines)


# ------------------------------------------------------------------- run


def run_analysis(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    registry: AnalysisPassRegistry | None = None,
    select: Sequence[str] | None = None,
    pass_options: Mapping[str, Mapping[str, Any]] | None = None,
    baseline: Baseline | None = None,
    changed_base: str | None = None,
    display_relative_to: Path | None = None,
) -> AnalysisReport:
    """Run the registered passes over ``paths`` and assemble a report.

    ``select`` restricts to the named pass ids; ``pass_options`` carries
    per-pass option mappings (validated against each pass's config type);
    ``changed_base`` switches file collection to :func:`changed_files`;
    ``display_relative_to`` controls how paths render (default: the
    detected project root, falling back to absolute paths).
    """
    registry = registry or get_pass_registry()
    pass_options = dict(pass_options or {})
    root = (root or find_project_root(paths) or Path.cwd()).resolve()
    rel_base = (display_relative_to or root).resolve()

    if select is not None:
        infos = [registry.get(name) for name in select]
    else:
        infos = list(registry)
    for name in pass_options:
        registry.get(name)  # unknown pass ids in options fail loudly

    if changed_base is not None:
        files = changed_files(paths, base=changed_base, root=root)
    else:
        files = collect_files(paths)

    def display(path: Path) -> str:
        try:
            return path.relative_to(rel_base).as_posix()
        except ValueError:
            return str(path)

    raw: list[Finding] = []
    suppressed = 0
    contexts: list[ModuleContext] = []
    for path in files:
        try:
            context = ModuleContext.from_file(path, display_path=display(path))
        except SyntaxError as exc:
            raw.append(
                Finding(
                    pass_id="parse-error",
                    path=display(path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        contexts.append(context)
        raw.extend(context.parse_findings)
        for info in infos:
            if info.scope != "file":
                continue
            options = registry.parse_options(
                info.name, pass_options.get(info.name)
            )
            for finding in info.fn(context, options) or ():
                if context.is_suppressed(finding):
                    suppressed += 1
                else:
                    raw.append(finding)

    project = ProjectContext(root=root, contexts=contexts)
    for info in infos:
        if info.scope != "project":
            continue
        options = registry.parse_options(info.name, pass_options.get(info.name))
        raw.extend(info.fn(project, options) or ())

    raw.sort(key=lambda f: (f.path, f.line, f.pass_id, f.message))

    if baseline is not None:
        new, grandfathered, stale = baseline.split(raw)
    else:
        new, grandfathered, stale = raw, [], []

    return AnalysisReport(
        findings=new,
        grandfathered=grandfathered,
        stale_baseline=stale,
        suppressed=suppressed,
        files=len(files),
        passes=tuple(info.name for info in infos),
    )
