"""CLI smoke tests (repro.cli): exit codes and output shape."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces import load_trace_csv, save_job_mix_json, standard_job_mix


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "faro-fairsum"
        assert args.simulator == "flow"


class TestRun:
    def test_run_fairshare(self, capsys):
        code = main(["run", "--policy", "fairshare", "--jobs", "3", "--size", "9",
                     "--minutes", "12", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lost cluster utility" in out
        assert "SLO violation rate" in out

    def test_run_with_chart(self, capsys):
        code = main(["run", "--policy", "aiad", "--jobs", "3", "--size", "9",
                     "--minutes", "12", "--chart"])
        assert code == 0
        assert "Cluster utility over time" in capsys.readouterr().out


class TestCompare:
    def test_compare_two_policies(self, capsys):
        code = main(["compare", "--policies", "fairshare,aiad", "--jobs", "3",
                     "--size", "9", "--minutes", "12", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FairShare" in out or "fairshare" in out
        assert "lower is better" in out

    def test_compare_empty_policies(self, capsys):
        code = main(["compare", "--policies", " , ", "--jobs", "2", "--size", "6"])
        assert code == 2
        assert "at least one policy" in capsys.readouterr().err


class TestTraces:
    def test_generate_then_describe(self, tmp_path, capsys):
        out = tmp_path / "mix.json"
        code = main(["traces", "generate", "--jobs", "2", "--days", "2",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        code = main(["traces", "describe", "--mix", str(out)])
        assert code == 0
        table = capsys.readouterr().out
        assert "peak/mean" in table
        assert "job00-azure" in table

    def test_generate_requires_out(self, capsys):
        code = main(["traces", "generate", "--jobs", "2"])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_export_roundtrip(self, tmp_path):
        mix_path = tmp_path / "mix.json"
        jobs = standard_job_mix(num_jobs=2, days=2, seed=0)
        save_job_mix_json(mix_path, jobs)
        csv_path = tmp_path / "trace.csv"
        code = main(["traces", "export", "--mix", str(mix_path),
                     "--job", jobs[0].name, "--out", str(csv_path)])
        assert code == 0
        np.testing.assert_array_equal(load_trace_csv(csv_path), jobs[0].rates_per_min)

    def test_export_unknown_job(self, tmp_path, capsys):
        mix_path = tmp_path / "mix.json"
        save_job_mix_json(mix_path, standard_job_mix(num_jobs=1, days=2))
        code = main(["traces", "export", "--mix", str(mix_path),
                     "--job", "ghost", "--out", str(tmp_path / "x.csv")])
        assert code == 2
        assert "unknown job" in capsys.readouterr().err

    def test_export_requires_job_and_out(self, capsys):
        code = main(["traces", "export", "--jobs", "1"])
        assert code == 2


class TestForecast:
    def test_ar_forecast(self, capsys):
        code = main(["forecast", "--model", "ar", "--days", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rolling RMSE" in out
        assert "coverage" in out

    def test_unknown_model(self, capsys):
        code = main(["forecast", "--model", "crystal-ball"])
        assert code == 2
        assert "unknown forecaster" in capsys.readouterr().err

    def test_nhits_tiny(self, capsys):
        code = main(["forecast", "--model", "nhits", "--days", "2", "--epochs", "1"])
        assert code == 0
        assert "model=nhits" in capsys.readouterr().out

    def test_prophet(self, capsys):
        code = main(["forecast", "--model", "prophet", "--days", "3"])
        assert code == 0
        assert "model=prophet" in capsys.readouterr().out
