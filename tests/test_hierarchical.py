"""Hierarchical (grouped) optimization tests (paper §3.4, Fig. 7)."""

import numpy as np
import pytest

from repro.core.hierarchical import _distribute, aggregate_group, solve_hierarchical
from repro.core.objectives import make_objective
from repro.core.optimizer import ClusterCapacity, OptimizationJob
from repro.core.utility import SLO


def make_jobs(count, base_rate=4.0):
    return [
        OptimizationJob(
            name=f"j{i}",
            proc_time=0.18,
            slo=SLO(0.72),
            rates=(base_rate + (i % 5),),
        )
        for i in range(count)
    ]


class TestAggregate:
    def test_rates_sum(self, rng):
        jobs = make_jobs(4)
        group = aggregate_group(jobs, rng, scenario_count=8)
        expected = sum(job.rates[0] for job in jobs)
        assert np.allclose(group.rates, expected)

    def test_proc_time_mean(self, rng):
        jobs = make_jobs(3)
        group = aggregate_group(jobs, rng)
        assert group.proc_time == pytest.approx(0.18)

    def test_min_replicas_sum(self, rng):
        jobs = make_jobs(3)
        group = aggregate_group(jobs, rng)
        assert group.min_replicas == 3

    def test_empty_group_rejected(self, rng):
        with pytest.raises(ValueError):
            aggregate_group([], rng)


class TestDistribute:
    def test_budget_conserved(self):
        jobs = make_jobs(4)
        split = _distribute(jobs, 13)
        assert sum(split) == 13

    def test_minimums_respected(self):
        jobs = make_jobs(3)
        split = _distribute(jobs, 3)
        assert all(count >= 1 for count in split)

    def test_proportional_to_demand(self):
        heavy = OptimizationJob(name="h", proc_time=0.18, slo=SLO(0.72), rates=(40.0,))
        light = OptimizationJob(name="l", proc_time=0.18, slo=SLO(0.72), rates=(2.0,))
        split = _distribute([heavy, light], 10)
        assert split[0] > split[1]


class TestSolveHierarchical:
    def test_degenerates_to_flat_when_groups_exceed_jobs(self):
        jobs = make_jobs(4)
        result = solve_hierarchical(
            jobs, ClusterCapacity.of_replicas(16), make_objective("sum"), groups=10, seed=0
        )
        assert result.group_members == [[0], [1], [2], [3]]

    def test_respects_capacity(self):
        jobs = make_jobs(12)
        result = solve_hierarchical(
            jobs, ClusterCapacity.of_replicas(30), make_objective("sum"), groups=3, seed=0
        )
        assert result.allocation.replicas.sum() <= 30
        assert np.all(result.allocation.replicas >= 1)

    def test_all_jobs_assigned_to_exactly_one_group(self):
        jobs = make_jobs(17)
        result = solve_hierarchical(
            jobs, ClusterCapacity.of_replicas(60), make_objective("sum"), groups=5, seed=0
        )
        flat = sorted(i for members in result.group_members for i in members)
        assert flat == list(range(17))

    def test_grouping_faster_than_flat_at_scale(self):
        jobs = make_jobs(60)
        capacity = ClusterCapacity.of_replicas(180)
        flat = solve_hierarchical(jobs, capacity, make_objective("sum"), groups=60, seed=0)
        grouped = solve_hierarchical(jobs, capacity, make_objective("sum"), groups=5, seed=0)
        assert grouped.allocation.solve_time < flat.allocation.solve_time

    def test_grouped_objective_close_to_flat(self):
        # Fig. 7b: grouping costs only a few percent of objective value.
        jobs = make_jobs(40)
        capacity = ClusterCapacity.of_replicas(160)
        flat = solve_hierarchical(jobs, capacity, make_objective("sum"), groups=40, seed=0)
        grouped = solve_hierarchical(jobs, capacity, make_objective("sum"), groups=10, seed=0)
        assert grouped.allocation.objective_value >= 0.9 * flat.allocation.objective_value

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            solve_hierarchical(
                make_jobs(4), ClusterCapacity.of_replicas(8), make_objective("sum"), groups=0
            )

    def test_deterministic_given_seed(self):
        jobs = make_jobs(20)
        capacity = ClusterCapacity.of_replicas(60)
        a = solve_hierarchical(jobs, capacity, make_objective("sum"), groups=4, seed=7)
        b = solve_hierarchical(jobs, capacity, make_objective("sum"), groups=4, seed=7)
        assert np.array_equal(a.allocation.replicas, b.allocation.replicas)

    def test_refinement_never_hurts_objective(self):
        # Heterogeneous loads make random grouping coarse; the bounded
        # transfer refinement must only improve the flat objective.
        jobs = [
            OptimizationJob(
                name=f"j{i}",
                proc_time=0.18,
                slo=SLO(0.72),
                rates=(1.0 + 4.0 * (i % 7),),
            )
            for i in range(24)
        ]
        capacity = ClusterCapacity.of_replicas(50)
        raw = solve_hierarchical(
            jobs, capacity, make_objective("sum"), groups=4, refine_moves=0, seed=1
        )
        refined = solve_hierarchical(
            jobs, capacity, make_objective("sum"), groups=4, refine_moves=12, seed=1
        )
        assert refined.allocation.objective_value >= raw.allocation.objective_value - 1e-9
        assert refined.allocation.replicas.sum() <= 50
