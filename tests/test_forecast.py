"""Forecaster tests: base utilities, classical baselines, N-HiTS, LSTM."""

import numpy as np
import pytest

from repro.forecast import (
    ARForecaster,
    ARMAForecaster,
    DeepARLiteForecaster,
    EWMAForecaster,
    LSTMForecaster,
    NaiveForecaster,
    NHiTSConfig,
    NHiTSForecaster,
    SeasonalNaiveForecaster,
    StandardScaler,
    coverage,
    mae,
    rmse,
)
from repro.forecast.base import sliding_windows
from repro.forecast.lstm import LSTMConfig
from repro.forecast.nhits import interpolation_matrix


def sine_series(n=2000, period=144, level=100.0, amp=40.0, noise=5.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.maximum(
        level + amp * np.sin(2 * np.pi * t / period) + rng.normal(0, noise, n), 0.0
    )


class TestScalerAndWindows:
    def test_scaler_roundtrip(self):
        series = np.array([1.0, 5.0, 9.0])
        scaler = StandardScaler().fit(series)
        assert np.allclose(scaler.inverse(scaler.transform(series)), series)

    def test_scaler_constant_series(self):
        scaler = StandardScaler().fit(np.full(10, 3.0))
        assert scaler.std == 1.0

    def test_scaler_unfitted(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros(2))

    def test_windows_shapes(self):
        x, y = sliding_windows(np.arange(20.0), 5, 3)
        assert x.shape == (13, 5) and y.shape == (13, 3)
        assert np.allclose(x[0], [0, 1, 2, 3, 4])
        assert np.allclose(y[0], [5, 6, 7])

    def test_windows_too_short(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(5.0), 4, 3)


class TestMetrics:
    def test_rmse(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_mae(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_coverage_full(self):
        samples = np.vstack([np.zeros(4), np.full(4, 10.0)])
        assert coverage(samples, np.full(4, 5.0), 0, 100) == 1.0

    def test_coverage_none(self):
        samples = np.vstack([np.zeros(4), np.ones(4)])
        assert coverage(samples, np.full(4, 5.0), 0, 100) == 0.0


class TestClassicalBaselines:
    def test_naive_repeats_last(self):
        f = NaiveForecaster().fit(np.arange(10.0))
        assert np.all(f.predict(np.array([1.0, 7.0]), 3) == 7.0)

    def test_seasonal_naive(self):
        series = np.tile(np.array([1.0, 2.0, 3.0]), 5)
        f = SeasonalNaiveForecaster(period=3).fit(series)
        prediction = f.predict(series, 3)
        assert np.allclose(prediction, [1.0, 2.0, 3.0])

    def test_ewma_constant_series(self):
        f = EWMAForecaster(alpha=0.5).fit(np.full(20, 4.0))
        assert np.allclose(f.predict(np.full(10, 4.0), 2), 4.0)

    def test_ar_learns_ar1(self):
        # x_t = 0.8 x_{t-1} + noise: AR fit should recover phi ~ 0.8.
        rng = np.random.default_rng(1)
        x = np.zeros(3000)
        for t in range(1, 3000):
            x[t] = 0.8 * x[t - 1] + rng.normal(0, 0.1)
        f = ARForecaster(order=2).fit(x)
        assert f.coef[-1] == pytest.approx(0.8, abs=0.08)

    def test_ar_beats_naive_on_sine(self):
        series = sine_series()
        f = ARForecaster(order=16).fit(series[:1500])
        horizon = 12
        errors_ar, errors_naive = [], []
        for start in range(1500, 1900, 37):
            history, truth = series[:start], series[start : start + horizon]
            errors_ar.append(rmse(f.predict(history, horizon), truth))
            errors_naive.append(rmse(np.full(horizon, history[-1]), truth))
        assert np.mean(errors_ar) < np.mean(errors_naive)

    def test_ar_too_short_series(self):
        with pytest.raises(ValueError):
            ARForecaster(order=8).fit(np.arange(5.0))

    def test_ar_sample_paths_nonnegative(self):
        f = ARForecaster(order=4).fit(sine_series(500))
        paths = f.sample_paths(sine_series(500)[:100], 6, 20)
        assert paths.shape == (20, 6)
        assert np.all(paths >= 0.0)

    def test_arma_fits_and_predicts(self):
        series = sine_series(800)
        f = ARMAForecaster(ar_order=4, ma_order=2).fit(series)
        prediction = f.predict(series[:400], 5)
        assert prediction.shape == (5,)
        assert np.all(np.isfinite(prediction))

    def test_arma_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ARMAForecaster().predict(np.zeros(10), 2)


class TestInterpolationMatrix:
    def test_single_knot_broadcasts(self):
        m = interpolation_matrix(1, 5)
        assert np.allclose(m, 1.0)

    def test_identity_when_equal(self):
        m = interpolation_matrix(4, 4)
        assert np.allclose(m, np.eye(4))

    def test_rows_sum_to_one(self):
        m = interpolation_matrix(3, 10)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_endpoint_alignment(self):
        m = interpolation_matrix(3, 7)
        values = m @ np.array([0.0, 1.0, 2.0])
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(2.0)


class TestNHiTS:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NHiTSConfig(input_size=10, kernels=(3,))
        with pytest.raises(ValueError):
            NHiTSConfig(loss="nll", probabilistic=False)

    def test_unfitted_raises(self):
        f = NHiTSForecaster(NHiTSConfig(input_size=8, horizon=4))
        with pytest.raises(RuntimeError):
            f.predict(np.zeros(8), 4)

    def test_training_reduces_loss(self):
        series = sine_series(1200)
        config = NHiTSConfig(input_size=16, horizon=8, epochs=6, kernels=(4, 1))
        f = NHiTSForecaster(config).fit(series)
        assert f.loss_history[-1] < f.loss_history[0]

    def test_beats_naive_on_seasonal_signal(self):
        series = sine_series(2500)
        config = NHiTSConfig(input_size=16, horizon=8, epochs=8)
        f = NHiTSForecaster(config).fit(series[:2000])
        horizon = 8
        errors_model, errors_naive = [], []
        for start in range(2000, 2400, 31):
            history, truth = series[start - 16 : start], series[start : start + horizon]
            errors_model.append(rmse(f.predict(history, horizon), truth))
            errors_naive.append(rmse(np.full(horizon, history[-1]), truth))
        assert np.mean(errors_model) < np.mean(errors_naive)

    def test_probabilistic_outputs(self):
        series = sine_series(1000)
        f = NHiTSForecaster(NHiTSConfig(input_size=16, horizon=8, epochs=4)).fit(series)
        mu, sigma = f.predict_distribution(series[:500], 8)
        assert mu.shape == (8,) and sigma.shape == (8,)
        assert np.all(sigma > 0)

    def test_sample_paths_cover_truth(self):
        series = sine_series(2000)
        f = NHiTSForecaster(NHiTSConfig(input_size=16, horizon=8, epochs=8)).fit(
            series[:1600]
        )
        covs = []
        for start in range(1600, 1900, 41):
            history, truth = series[start - 16 : start], series[start : start + 8]
            paths = f.sample_paths(history, 8, 100)
            covs.append(coverage(paths, truth, 5, 95))
        assert np.mean(covs) > 0.5

    def test_horizon_extension_tiles(self):
        series = sine_series(1000)
        f = NHiTSForecaster(NHiTSConfig(input_size=16, horizon=8, epochs=2)).fit(series)
        long_pred = f.predict(series[:500], 20)
        assert long_pred.shape == (20,)

    def test_short_history_padded(self):
        series = sine_series(1000)
        f = NHiTSForecaster(NHiTSConfig(input_size=16, horizon=8, epochs=2)).fit(series)
        prediction = f.predict(np.array([50.0, 60.0]), 8)
        assert prediction.shape == (8,)
        assert np.all(prediction >= 0)

    def test_deterministic_given_seed(self):
        series = sine_series(800)
        config = NHiTSConfig(input_size=16, horizon=8, epochs=3, seed=5)
        a = NHiTSForecaster(config).fit(series).predict(series[:300], 8)
        b = NHiTSForecaster(config).fit(series).predict(series[:300], 8)
        assert np.allclose(a, b)


class TestLSTMForecasters:
    def test_lstm_fit_predict(self):
        series = sine_series(900)
        config = LSTMConfig(input_size=12, horizon=6, epochs=3, max_windows=256)
        f = LSTMForecaster(config).fit(series)
        prediction = f.predict(series[:400], 6)
        assert prediction.shape == (6,)
        assert f.loss_history[-1] < f.loss_history[0]

    def test_deepar_distribution(self):
        series = sine_series(900)
        config = LSTMConfig(input_size=12, horizon=6, epochs=3, max_windows=256)
        f = DeepARLiteForecaster(config).fit(series)
        mu, sigma = f.predict_distribution(series[:400], 6)
        assert np.all(sigma > 0)
        paths = f.sample_paths(series[:400], 6, 25)
        assert paths.shape == (25, 6)
        assert np.all(paths >= 0)
