"""Budget-constrained allocation planners for the cloud mode.

Three planners share the :class:`BudgetProblem` formulation (maximize
priority-weighted utility subject to total hourly cost <= budget):

- :func:`solve_budget_allocation` -- Faro's approach: greedy
  marginal-utility-per-dollar with swap repair, on the relaxed latency
  objective (same reasoning as :mod:`repro.hetero.allocation`).
- :func:`mark_greedy_plan` -- the Mark/Barista heuristic (paper §8): each
  job *independently* picks the instance type with the lowest
  cost-per-request at saturation, provisions enough replicas for its SLO,
  and the total is clipped to the budget afterwards.
- :func:`even_split_plan` -- FairShare transplanted to dollars: every job
  receives an equal slice of the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.instances import InstanceType
from repro.core.latency import RELAXED_MDC, LatencyModel, replicas_for_slo
from repro.core.utility import SLO, inverse_utility
from repro.hetero.latency import mixed_pool_latency

__all__ = [
    "CloudJob",
    "BudgetProblem",
    "BudgetPlan",
    "solve_budget_allocation",
    "mark_greedy_plan",
    "even_split_plan",
]


@dataclass(frozen=True)
class CloudJob:
    """One inference job deployed on rented instances."""

    name: str
    slo: SLO
    proc_time: float
    arrival_rate: float
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.proc_time <= 0:
            raise ValueError(f"proc_time must be positive, got {self.proc_time}")
        if self.arrival_rate < 0:
            raise ValueError(f"arrival_rate must be non-negative, got {self.arrival_rate}")
        if self.priority <= 0:
            raise ValueError(f"priority must be positive, got {self.priority}")


@dataclass
class BudgetPlan:
    """Planner output: per-job instance counts, utilities, and hourly cost."""

    counts: dict[str, dict[str, int]]
    utilities: dict[str, float]
    total_utility: float
    cost_per_hour: float

    def replicas(self, job_name: str) -> int:
        """Total instance count (all types) assigned to ``job_name``."""
        return sum(self.counts[job_name].values())


class BudgetProblem:
    """Allocation instance: jobs, an instance catalog, and an hourly budget."""

    def __init__(
        self,
        jobs: list[CloudJob],
        catalog: list[InstanceType],
        budget_per_hour: float,
        latency_model: LatencyModel = RELAXED_MDC,
        alpha: float = 1.0,
    ) -> None:
        if not jobs:
            raise ValueError("at least one job is required")
        if not catalog:
            raise ValueError("at least one instance type is required")
        if budget_per_hour <= 0:
            raise ValueError(f"budget must be positive, got {budget_per_hour}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names: {names}")
        self.jobs = list(jobs)
        self.catalog = list(catalog)
        self.budget = budget_per_hour
        self.latency_model = latency_model
        self.alpha = alpha
        self.cheapest = min(catalog, key=lambda t: t.cost_per_hour)
        if self.cheapest.cost_per_hour * len(jobs) > budget_per_hour:
            raise ValueError(
                f"budget {budget_per_hour}/h cannot fund one "
                f"{self.cheapest.name} per job ({len(jobs)} jobs)"
            )

    def job_utility(self, job: CloudJob, counts: dict[InstanceType, int]) -> float:
        """Relaxed inverse utility of ``job`` on the given instance pool."""
        latency = mixed_pool_latency(
            job.slo.quantile, job.arrival_rate, job.proc_time, counts, self.latency_model
        )
        if math.isinf(latency):
            return 0.0
        return inverse_utility(latency, job.slo.target, alpha=self.alpha)

    def plan_cost(self, counts: dict[str, dict[InstanceType, int]]) -> float:
        return sum(
            itype.cost_per_hour * n for pools in counts.values() for itype, n in pools.items()
        )

    def _finish(self, counts: dict[str, dict[InstanceType, int]]) -> BudgetPlan:
        utilities = {
            job.name: self.job_utility(job, counts[job.name]) for job in self.jobs
        }
        return BudgetPlan(
            counts={
                name: {itype.name: n for itype, n in pools.items() if n > 0}
                for name, pools in counts.items()
            },
            utilities=utilities,
            total_utility=sum(job.priority * utilities[job.name] for job in self.jobs),
            cost_per_hour=self.plan_cost(counts),
        )


def solve_budget_allocation(
    problem: BudgetProblem, tol: float = 1e-9, repair_passes: int = 4
) -> BudgetPlan:
    """Faro-style budget allocation: greedy utility-per-dollar + swap repair."""
    counts: dict[str, dict[InstanceType, int]] = {
        job.name: {problem.cheapest: 1} for job in problem.jobs
    }
    spent = problem.plan_cost(counts)
    utilities = {job.name: problem.job_utility(job, counts[job.name]) for job in problem.jobs}
    while True:
        best: tuple[float, CloudJob, InstanceType] | None = None
        for job in problem.jobs:
            if utilities[job.name] >= 1.0 - 1e-12:
                continue
            for itype in problem.catalog:
                if spent + itype.cost_per_hour > problem.budget + 1e-9:
                    continue
                trial = dict(counts[job.name])
                trial[itype] = trial.get(itype, 0) + 1
                gain = job.priority * (problem.job_utility(job, trial) - utilities[job.name])
                score = gain / itype.cost_per_hour
                if gain > tol and (best is None or score > best[0]):
                    best = (score, job, itype)
        if best is None:
            break
        _, job, itype = best
        counts[job.name][itype] = counts[job.name].get(itype, 0) + 1
        spent += itype.cost_per_hour
        utilities[job.name] = problem.job_utility(job, counts[job.name])
    _budget_swap_repair(problem, counts, tol, repair_passes)
    return problem._finish(counts)


def _budget_swap_repair(
    problem: BudgetProblem,
    counts: dict[str, dict[InstanceType, int]],
    tol: float,
    max_passes: int,
) -> None:
    """Replace one instance by a different type while utility improves."""
    for _ in range(max_passes):
        improved = False
        for job in problem.jobs:
            pools = counts[job.name]
            current = problem.job_utility(job, pools)
            spent = problem.plan_cost(counts)
            for old_type in [t for t, n in pools.items() if n > 0]:
                for new_type in problem.catalog:
                    if new_type == old_type:
                        continue
                    if (
                        spent - old_type.cost_per_hour + new_type.cost_per_hour
                        > problem.budget + 1e-9
                    ):
                        continue
                    trial = dict(pools)
                    trial[old_type] -= 1
                    if sum(trial.values()) == 0:
                        continue
                    trial[new_type] = trial.get(new_type, 0) + 1
                    gain = problem.job_utility(job, trial) - current
                    if gain > tol:
                        pools.clear()
                        pools.update({t: n for t, n in trial.items() if n > 0})
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            return


def mark_greedy_plan(problem: BudgetProblem) -> BudgetPlan:
    """Mark/Barista-style plan: independent per-job cost-per-request greedy.

    Each job picks the instance type minimizing cost-per-request at
    saturation and provisions the replica count its SLO needs (via the
    M/D/c capacity planner).  Budget is only enforced *afterwards* by
    trimming replicas from the most expensive job pools -- reproducing the
    myopia the paper attributes to single-job policies in constrained
    settings.
    """
    counts: dict[str, dict[InstanceType, int]] = {}
    for job in problem.jobs:
        best = min(problem.catalog, key=lambda t: t.cost_per_request(job.proc_time))
        need = replicas_for_slo(
            problem.latency_model,
            job.slo.quantile,
            job.arrival_rate,
            best.proc_time(job.proc_time),
            job.slo.target,
            max_replicas=1024,
        )
        counts[job.name] = {best: max(need, 1)}
    # Clip to budget: first drop replicas from the costliest pools (keeping
    # one per job), then downgrade remaining instances to the cheapest type.
    while problem.plan_cost(counts) > problem.budget + 1e-9:
        candidates = [
            (itype.cost_per_hour, name, itype)
            for name, pools in counts.items()
            for itype, n in pools.items()
            if n > 0 and sum(pools.values()) > 1
        ]
        if not candidates:
            break
        _, name, itype = max(candidates)
        counts[name][itype] -= 1
    while problem.plan_cost(counts) > problem.budget + 1e-9:
        downgrades = [
            (itype.cost_per_hour, name, itype)
            for name, pools in counts.items()
            for itype, n in pools.items()
            if n > 0 and itype.cost_per_hour > problem.cheapest.cost_per_hour
        ]
        if not downgrades:
            break
        _, name, itype = max(downgrades)
        counts[name][itype] -= 1
        counts[name][problem.cheapest] = counts[name].get(problem.cheapest, 0) + 1
    return problem._finish(counts)


def even_split_plan(problem: BudgetProblem) -> BudgetPlan:
    """FairShare in dollars: each job gets an equal slice of the budget.

    Within its slice a job buys its best-value instance type (lowest
    cost-per-request), always at least one of the cheapest type.
    """
    slice_budget = problem.budget / len(problem.jobs)
    counts: dict[str, dict[InstanceType, int]] = {}
    for job in problem.jobs:
        best = min(problem.catalog, key=lambda t: t.cost_per_request(job.proc_time))
        affordable = int(slice_budget // best.cost_per_hour)
        if affordable >= 1:
            counts[job.name] = {best: affordable}
        else:
            counts[job.name] = {problem.cheapest: 1}
    return problem._finish(counts)
