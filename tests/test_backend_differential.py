"""Cross-backend differential suite: byte-identity pins and Table 7 parity.

Three layers of protection around the backend refactor:

- **Byte-identity pins**: ``repro.api.run`` report digests for
  request/flow specs were captured on the pre-refactor engine and are
  asserted here, so the harness extraction, the event-driven lifecycle,
  and the vectorized request path provably changed nothing -- down to the
  last bit of every serialized statistic.  Tiny specs run in tier-1;
  the shipped ``specs/`` files run under the ``slow`` marker.
- **Ranking agreement** (Table 7's methodology): the request-level and
  flow simulators must agree on how policies *rank*, which is the claim
  the paper's matched-simulation comparisons rest on.
- **Hybrid pins**: the new backend's behaviour is pinned by digest so
  future refactors inherit the same guarantee, and it must run end-to-end
  through spec files, the CLI, and the sharded sweep executor.
"""

import hashlib
import json

import pytest

from repro import api

#: sha256 of ``json.dumps(api.run(spec).to_dict(), sort_keys=True)``,
#: captured on the pre-refactor engine (commit 96ea3bf).  These values are
#: the refactor's acceptance contract: do not regenerate them to make a
#: failing test pass -- a mismatch means results changed.
PRE_REFACTOR_DIGESTS = {
    "tiny-request": "70feaffc9d5282337eb2a8ffb39a34f67f3ec7dceae5502ab5b28d9c72d6d47b",
    "tiny-flow": "aaf99e6c53c9bd246f014dc2d39d30371da6b12ad58b6089cb79f3051a43c08b",
    "tiny-overrides": "fbfa91075dfd88373d5b0b0dcb88c18c16d41e00b5cec4646e8b2a888c312f57",
    "specs/quickstart.yaml": "e4f09a3b1f115e8cdd332dbaa2032dc70d2f78f9c0616cb4ee6424cb81c7bffb",
    "specs/mixed_sweep.json": "7311b8d6918687b303fd8e5b6137a9b20d256854df03d6afbd2c7a9b6f86fc4e",
    "specs/paper_headline.json": "6c2ffdf3b6333099f0c5cc49538ed7aab8f4adc39297fde0e0e69d0afee32965",
}

#: Behaviour pin for the new hybrid backend (captured at introduction, this
#: PR): seed/ordering changes in the hybrid split show up here.
HYBRID_DIGEST = "9e983e6687899d876aa91b6a1bfa44f5e1aa31b21bd748df3d09671c7009b9d2"

#: Behaviour pin for hybrid mid-run fidelity promotion (captured at
#: introduction).  The promotion rule is required to be a deterministic
#: function of the spec -- promotion times, router seeds, and arrival
#: streams included -- so any change to the hysteresis controller, seed
#: derivation, or minute stitching shows up here.
HYBRID_PROMOTION_DIGEST = (
    "00cdf9235a83b23d4f800fd7ac3aec43b247b94f145e683e68ce07333980336b"
)


def report_digest(spec) -> str:
    report = api.run(spec)
    text = json.dumps(report.to_dict(), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def tiny_spec(name: str, simulator: str, **settings) -> api.ExperimentSpec:
    defaults = dict(
        trials=2,
        seed=0,
        predictor_profile={"epochs": 1, "max_windows": 64},
    )
    defaults.update(settings)
    return api.ExperimentSpec.compare(
        name,
        [
            api.ScenarioSpec(
                kind="paper",
                params={"size": 8, "num_jobs": 2, "duration_minutes": 8,
                        "days": 2, "rate_hi": 300.0},
                name="tiny-SO",
            ),
            api.ScenarioSpec(
                kind="mixed",
                params={"total_replicas": 8, "num_jobs": 2,
                        "duration_minutes": 6, "days": 2},
                name="tiny-mixed",
            ),
        ],
        ["fairshare", "aiad", "faro-fairsum"],
        simulator=simulator,
        **defaults,
    )


# ----------------------------------------------------- byte-identity pins


class TestPreRefactorByteIdentity:
    def test_tiny_request_spec_pinned(self):
        assert (
            report_digest(tiny_spec("tiny-request", "request"))
            == PRE_REFACTOR_DIGESTS["tiny-request"]
        )

    def test_tiny_flow_spec_pinned(self):
        assert (
            report_digest(tiny_spec("tiny-flow", "flow"))
            == PRE_REFACTOR_DIGESTS["tiny-flow"]
        )

    def test_tiny_sim_overrides_pinned(self):
        base = tiny_spec("tiny-overrides", "request")
        spec = api.ExperimentSpec(
            name="tiny-overrides",
            scenarios=base.scenarios,
            policies=base.policies,
            trials=1,
            seed=3,
            simulator="request",
            predictor_profile={"epochs": 1, "max_windows": 64},
            sim_overrides={"cold_start_range": [5.0, 9.0], "queue_threshold": 40},
        )
        assert report_digest(spec) == PRE_REFACTOR_DIGESTS["tiny-overrides"]

    def test_vectorize_off_is_bit_identical(self):
        """The batch-offer path cannot change results, only speed."""
        spec = tiny_spec("novec", "request", trials=1)
        plain = report_digest(spec)
        disabled = api.ExperimentSpec(
            name="novec",
            scenarios=spec.scenarios,
            policies=spec.policies,
            trials=1,
            seed=0,
            simulator="request",
            predictor_profile={"epochs": 1, "max_windows": 64},
            backend_options={"vectorize": False},
        )
        report = api.run(disabled)
        text = json.dumps(report.to_dict(), sort_keys=True)
        # backend_options appears in the serialized spec, so compare stats
        # only: the simulated numbers must match exactly.
        assert (
            json.loads(text)["stats"]
            == json.loads(
                json.dumps(api.run(spec).to_dict(), sort_keys=True)
            )["stats"]
        )
        assert plain == report_digest(spec)  # and the pin itself holds


@pytest.mark.slow
class TestShippedSpecByteIdentity:
    """Every shipped spec file, bit-for-bit against the pre-refactor engine."""

    @pytest.mark.parametrize(
        "path",
        [
            "specs/quickstart.yaml",
            "specs/mixed_sweep.json",
            "specs/paper_headline.json",
        ],
    )
    def test_shipped_spec_pinned(self, path):
        spec = api.ExperimentSpec.from_file(path)
        assert report_digest(spec) == PRE_REFACTOR_DIGESTS[path]


# ------------------------------------------------------ ranking agreement


class TestRankingAgreement:
    """Table 7's methodology: fidelities agree on policy rankings."""

    POLICIES = ("fairshare", "aiad", "faro-fairsum")

    def _report(self, simulator):
        spec = api.ExperimentSpec.compare(
            f"rank-{simulator}",
            api.ScenarioSpec(
                kind="paper",
                params={"size": 5, "num_jobs": 2, "duration_minutes": 16,
                        "days": 2, "rate_hi": 400.0},
                name="rank",
            ),
            list(self.POLICIES),
            simulator=simulator,
            trials=1,
            seed=0,
            predictor_profile={"epochs": 1, "max_windows": 64},
        )
        return api.run(spec)

    def test_request_and_flow_agree_on_ranking(self):
        request = self._report("request")
        flow = self._report("flow")

        def ranking(report):
            cells = report.stats["rank"]
            return sorted(cells, key=lambda label: cells[label].lost_utility_mean)

        request_ranking = ranking(request)
        flow_ranking = ranking(flow)
        # The oversubscribed setup separates the policies clearly; both
        # fidelities must produce the same order (the paper's Table 7
        # observation, scaled down).
        assert request_ranking == flow_ranking
        assert request.best_policy("rank") == flow.best_policy("rank")


# ------------------------------------------------------------ hybrid e2e


def hybrid_spec(trials: int = 2) -> api.ExperimentSpec:
    return api.ExperimentSpec.compare(
        "hybrid-pin",
        api.ScenarioSpec(
            kind="paper",
            params={"size": 8, "num_jobs": 3, "duration_minutes": 8,
                    "days": 2, "rate_hi": 300.0},
            name="tiny-hybrid",
        ),
        ["fairshare", "aiad"],
        simulator="hybrid",
        backend_options={"auto_request_jobs": 1},
        trials=trials,
        seed=0,
        predictor_profile={"epochs": 1, "max_windows": 64},
    )


class TestHybridEndToEnd:
    def test_hybrid_behaviour_pinned(self):
        assert report_digest(hybrid_spec()) == HYBRID_DIGEST

    def test_hybrid_runs_from_spec_file_and_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = hybrid_spec(trials=1).to_file(tmp_path / "hybrid.json")
        report_path = tmp_path / "report.json"
        code = main(["run", "--spec", str(path), "--report", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "hybrid simulator" in out  # report.describe() names it
        data = json.loads(report_path.read_text())
        assert data["spec"]["simulator"] == "hybrid"
        assert data["spec"]["backend_options"] == {"auto_request_jobs": 1}

    def test_hybrid_flagged_jobs_see_request_level_dynamics(self):
        report = api.run(hybrid_spec(trials=1))
        result = report.get("tiny-hybrid", "fairshare").results[0]
        assert len(result.metadata["request_jobs"]) == 1
        assert len(result.metadata["flow_jobs"]) == 2


@pytest.mark.slow
class TestHybridSweep:
    def test_hybrid_sharded_sweep_matches_serial(self):
        spec = hybrid_spec(trials=4)
        serial = api.run(spec)
        parallel = api.run_parallel(spec, workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )


# ------------------------------------------------- hybrid mid-run promotion


def promotion_spec(trials: int = 2, policies=("fairshare", "faro-fairsum")):
    """An undersized paper scenario whose jobs come under SLO pressure
    within the first minute, driving the promotion controller."""
    return api.ExperimentSpec.compare(
        "hybrid-promotion-pin",
        api.ScenarioSpec(
            kind="paper",
            params={"size": 5, "num_jobs": 2, "duration_minutes": 10,
                    "days": 2, "rate_hi": 600.0},
            name="tiny-promo",
        ),
        list(policies),
        simulator="hybrid",
        backend_options={"promote_headroom": 0.2, "demote_headroom": 0.7,
                         "min_dwell_ticks": 2},
        trials=trials,
        seed=0,
        predictor_profile={"epochs": 1, "max_windows": 64},
    )


class TestHybridPromotion:
    def test_promotion_behaviour_pinned(self):
        """The whole promotion schedule is deterministic and digest-pinned."""
        assert report_digest(promotion_spec()) == HYBRID_PROMOTION_DIGEST

    def test_promotions_actually_fire(self):
        report = api.run(promotion_spec(trials=1, policies=("fairshare",)))
        result = report.get("tiny-promo", "fairshare").results[0]
        dispatch = result.metadata["dispatch"]
        assert dispatch["promotions"] > 0
        events = result.metadata["fidelity_events"]
        assert all(e["time"] % 60.0 == 0.0 for e in events)  # minute boundaries
        assert dispatch["vector_requests"] > 0  # promoted routers vectorize

    def test_promotion_sharded_sweep_matches_serial(self):
        spec = promotion_spec(trials=2, policies=("fairshare",))
        serial = api.run(spec)
        parallel = api.run_parallel(spec, workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )
