"""Cluster facade: all jobs' routers + quota + metrics behind one API.

Mirrors the paper's deployment shape (§5): one Ray cluster (router +
replica pool) per inference job, all sharing a Kubernetes resource quota.
The autoscaler talks to this facade exactly like Faro talks to Ray Serve:
it reads per-job observations and applies :class:`ScalingDecision`s
(replica targets via the Serve API, drop directives via the router).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.job import InferenceJobSpec
from repro.cluster.kubernetes import ResourceQuota
from repro.cluster.metrics import MetricsCollector
from repro.cluster.router import JobRouter
from repro.policy import JobObservation, ScalingDecision

__all__ = ["RayServeCluster"]


class RayServeCluster:
    """All jobs of one experiment plus shared admission control."""

    def __init__(
        self,
        jobs: list[InferenceJobSpec],
        quota: ResourceQuota,
        initial_replicas: dict[str, int] | None = None,
        queue_threshold: int = 50,
        cold_start_range: tuple[float, float] = (50.0, 70.0),
        metrics_bin_seconds: float = 15.0,
        history_minutes: int = 15,
        history_prefix: dict[str, "np.ndarray"] | None = None,
        seed: int = 0,
        allow_empty: bool = False,
    ) -> None:
        if not jobs and not allow_empty:
            raise ValueError("at least one job is required")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.jobs = {job.name: job for job in jobs}
        self.quota = quota
        self.history_minutes = history_minutes
        # Construction knobs are kept so jobs can attach mid-run
        # (:meth:`add_job`, hybrid fidelity promotion) with the same
        # settings the initial pool got.
        self.queue_threshold = queue_threshold
        self.cold_start_range = cold_start_range
        self.metrics_bin_seconds = metrics_bin_seconds
        initial_replicas = initial_replicas or {}
        self.routers: dict[str, JobRouter] = {}
        self.metrics: dict[str, MetricsCollector] = {}
        self.targets: dict[str, int] = {}
        for index, job in enumerate(jobs):
            count = int(initial_replicas.get(job.name, job.min_replicas))
            router = JobRouter(
                job_name=job.name,
                model=job.model,
                initial_replicas=count,
                queue_threshold=queue_threshold,
                cold_start_range=cold_start_range,
                seed=seed + 1000 * index,
            )
            self.routers[job.name] = router
            prefix = (history_prefix or {}).get(job.name)
            self.metrics[job.name] = MetricsCollector(
                job_name=job.name,
                slo=job.slo,
                proc_time=job.model.proc_time,
                bin_seconds=metrics_bin_seconds,
                history_prefix=prefix,
            )
            self.targets[job.name] = count

    # ----------------------------------------------------------- topology

    def add_job(self, job: InferenceJobSpec, count: int, seed: int) -> JobRouter:
        """Attach ``job`` mid-run with ``count`` ready replicas.

        Used by the hybrid backend's fidelity promotion.  The router is
        built fresh with the caller-supplied ``seed`` (the caller owns
        making it deterministic); an existing metrics collector from a
        previous request-fidelity span of the same job is reused, so
        already-recorded minutes stay reportable across demote/re-promote
        cycles.
        """
        if job.name in self.routers:
            raise ValueError(f"job {job.name!r} is already attached")
        self.jobs[job.name] = job
        router = JobRouter(
            job_name=job.name,
            model=job.model,
            initial_replicas=count,
            queue_threshold=self.queue_threshold,
            cold_start_range=self.cold_start_range,
            seed=seed,
        )
        self.routers[job.name] = router
        if job.name not in self.metrics:
            self.metrics[job.name] = MetricsCollector(
                job_name=job.name,
                slo=job.slo,
                proc_time=job.model.proc_time,
                bin_seconds=self.metrics_bin_seconds,
            )
        self.targets[job.name] = count
        return router

    def remove_job(self, name: str) -> None:
        """Detach a job (hybrid fidelity demotion).

        The metrics collector is intentionally kept: minutes the job spent
        at request fidelity remain part of the run's evaluation series.
        """
        del self.jobs[name]
        del self.routers[name]
        del self.targets[name]

    # ------------------------------------------------------------ serving

    def offer(self, job_name: str, arrival: float) -> float:
        """Route one request; records the outcome and returns its latency."""
        router = self.routers[job_name]
        latency = router.offer(arrival)
        self.metrics[job_name].record(arrival, latency)
        return latency

    def offer_many(self, job_name: str, arrivals: "np.ndarray") -> "np.ndarray":
        """Route one chunk of requests and record all outcomes.

        Bit-identical to calling :meth:`offer` per arrival in order (see
        :meth:`JobRouter.offer_many` and
        :meth:`~repro.cluster.metrics.MetricsCollector.record_many`), but
        routes and records in two batch passes instead of 2N calls.
        """
        latencies = self.routers[job_name].offer_many(arrivals)
        self.metrics[job_name].record_many(arrivals, latencies)
        return latencies

    def offer_chunk(self, job_name: str, chunk: list) -> None:
        """Route one chunk, list or float array (the simulators' hot call).

        Chooses per chunk: when the router's batch fast path can engage
        (checked without touching numpy), the chunk is routed and recorded
        in two vectorized passes; otherwise it runs the exact per-request
        loop with no list/array round-trips -- so a chunk that cannot be
        batched costs what it always did.  Either way the outcome is
        bit-identical to sequential :meth:`offer` calls.
        """
        router = self.routers[job_name]
        if len(chunk) >= router._MIN_FAST_PREFIX:
            self.offer_many(job_name, np.asarray(chunk, dtype=float))
            return
        offer = router.offer
        record = self.metrics[job_name].record
        for arrival in chunk:
            record(arrival, offer(arrival))

    def total_replicas(self) -> int:
        return sum(router.replica_count for router in self.routers.values())

    # ------------------------------------------------------------ control

    def observations(self, now: float, window: float = 60.0) -> dict[str, JobObservation]:
        """Build per-job observations over the trailing ``window`` seconds."""
        observations = {}
        for name, job in self.jobs.items():
            collector = self.metrics[name]
            fields = collector.observation_fields(max(now - window, 0.0), now)
            history = collector.rate_history(now, self.history_minutes)
            router = self.routers[name]
            observations[name] = JobObservation(
                job_name=name,
                arrival_rate=fields["arrival_rate"],
                rate_history=tuple(history),
                mean_proc_time=fields["mean_proc_time"],
                latency=fields["latency"],
                slo_violation_rate=fields["slo_violation_rate"],
                current_replicas=router.ready_replica_count(now),
                target_replicas=self.targets[name],
                queue_length=router.queue_length(now),
                drop_rate=fields["drop_rate"],
            )
        return observations

    def reconcile(self, now: float) -> dict[str, int]:
        """Kubernetes-style reconciliation: recreate failed replicas.

        Any job whose live replica count dropped below its target (e.g.
        after fault injection) is scaled back to target; recreated pods pay
        a fresh cold start.  Returns the per-job number of recreated pods.
        """
        recreated = {}
        for name, router in self.routers.items():
            deficit = self.targets[name] - router.replica_count
            if deficit > 0:
                router.scale_to(self.targets[name], now)
                recreated[name] = deficit
        return recreated

    def apply(self, decision: ScalingDecision, now: float) -> dict[str, int]:
        """Admit a scaling decision through the quota and apply it.

        Returns the admitted per-job replica targets.
        """
        current = {name: self.targets[name] for name in self.jobs}
        cpu_per = {name: job.model.cpu_per_replica for name, job in self.jobs.items()}
        mem_per = {name: job.model.mem_per_replica for name, job in self.jobs.items()}
        admitted = self.quota.admit(current, decision.replicas, cpu_per, mem_per)
        for name, target in admitted.items():
            floor = self.jobs[name].min_replicas
            target = max(target, floor)
            if target != self.routers[name].replica_count:
                self.routers[name].scale_to(target, now)
            self.targets[name] = target
        for name, rate in decision.drop_rates.items():
            if name in self.routers:
                self.routers[name].drop_rate = float(rate)
        return admitted
