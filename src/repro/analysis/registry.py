"""Analysis-pass registry: the catalog of static-analysis rules.

Every rule the linter can run -- the built-in determinism and contract
passes, user plugins -- is registered here under a stable pass id together
with a *typed* options dataclass and the checker callable, exactly
mirroring how :class:`repro.api.PolicyRegistry` treats autoscaling
policies and :class:`repro.sim.SimBackendRegistry` treats simulators: one
lookup does resolution, option validation, and execution.

Registering a pass::

    from dataclasses import dataclass
    from repro.analysis import register_pass

    @dataclass(frozen=True)
    class MyOptions:
        max_widgets: int = 3

    @register_pass("widget-budget", description="No more than N widgets.",
                   config_type=MyOptions)
    def check_widgets(context, options):
        for node in ast.walk(context.tree):
            ...
            yield context.finding("widget-budget", node, "too many widgets")

File passes receive ``(ModuleContext, options)`` per linted file and
return/yield findings.  A pass registered with ``scope="project"``
instead receives ``(ProjectContext, options)`` once per lint run -- that
is how cross-file rules like the perf-gate pairing check run.  The pass
id is also the token the inline suppression syntax names:
``# repro: allow(widget-budget) -- reason``.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields, is_dataclass
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "AnalysisPassInfo",
    "AnalysisPassRegistry",
    "register_pass",
    "get_pass_registry",
]

#: File passes: ``(ModuleContext, options) -> Iterable[Finding]``.
#: Project passes: ``(ProjectContext, options) -> Iterable[Finding]``.
PassFn = Callable[[Any, Any], Any]

_SCOPES = ("file", "project")


@dataclass(frozen=True)
class AnalysisPassInfo:
    """One registered pass: id, scope, options schema, checker."""

    name: str
    description: str
    fn: PassFn
    scope: str = "file"
    config_type: type | None = None

    def option_fields(self) -> list[tuple[str, Any]]:
        """(field name, default) pairs of the options schema, for docs/CLI."""
        if self.config_type is None:
            return []
        out = []
        for f in fields(self.config_type):
            if f.default is not MISSING:
                default = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = None
            out.append((f.name, default))
        return out


class AnalysisPassRegistry:
    """Pass id -> :class:`AnalysisPassInfo`, case-insensitive, registration order."""

    def __init__(self) -> None:
        self._entries: dict[str, AnalysisPassInfo] = {}

    # ------------------------------------------------------------ register

    def register(
        self,
        name: str,
        *,
        description: str = "",
        scope: str = "file",
        config_type: type | None = None,
    ) -> Callable[[PassFn], PassFn]:
        """Decorator registering a checker callable as pass ``name``."""

        def decorator(fn: PassFn) -> PassFn:
            self.add(
                AnalysisPassInfo(
                    name=name,
                    description=description,
                    fn=fn,
                    scope=scope,
                    config_type=config_type,
                )
            )
            return fn

        return decorator

    def add(self, info: AnalysisPassInfo) -> None:
        """Register ``info``; rejects duplicates and malformed ids."""
        if not info.name or info.name != info.name.strip():
            raise ValueError(f"invalid pass id {info.name!r}")
        if info.scope not in _SCOPES:
            raise ValueError(
                f"pass {info.name!r} has unknown scope {info.scope!r}; "
                f"expected one of {_SCOPES}"
            )
        if info.config_type is not None and not is_dataclass(info.config_type):
            raise TypeError(
                f"config_type for {info.name!r} must be a dataclass, "
                f"got {info.config_type!r}"
            )
        key = info.name.lower()
        if key in self._entries:
            raise ValueError(f"pass id {key!r} is already registered")
        self._entries[key] = info

    def unregister(self, name: str) -> None:
        """Remove a pass (plugins/tests); unknown ids raise ValueError."""
        info = self.get(name)
        del self._entries[info.name.lower()]

    # ------------------------------------------------------------- lookup

    def get(self, name: str) -> AnalysisPassInfo:
        info = self._entries.get(str(name).lower())
        if info is None:
            known = ", ".join(sorted(self._entries))
            raise ValueError(f"unknown analysis pass {name!r}; registered: {known}")
        return info

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._entries

    def __iter__(self) -> Iterator[AnalysisPassInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self, scope: str | None = None) -> tuple[str, ...]:
        return tuple(
            info.name for info in self if scope is None or info.scope == scope
        )

    def infos(self, scope: str | None = None) -> tuple[AnalysisPassInfo, ...]:
        return tuple(info for info in self if scope is None or info.scope == scope)

    # -------------------------------------------------------------- build

    def parse_options(self, name: str, options: Mapping[str, Any] | Any = None):
        """Validate ``options`` against the pass's config type.

        Accepts a mapping, an already-constructed config instance, or
        ``None``; unknown keys raise ``ValueError`` so typos fail loudly.
        """
        info = self.get(name)
        if info.config_type is None:
            if options:
                raise ValueError(
                    f"pass {info.name!r} accepts no options, got {dict(options)!r}"
                )
            return None
        if isinstance(options, info.config_type):
            return options
        data = dict(options or {})
        known = {f.name for f in fields(info.config_type)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown option(s) {sorted(unknown)} for pass {info.name!r}; "
                f"accepted: {sorted(known)}"
            )
        return info.config_type(**data)

    def run(
        self,
        name: str,
        target: Any,
        options: Mapping[str, Any] | Any = None,
    ) -> list:
        """Run one pass over a module/project context, returning findings."""
        info = self.get(name)
        config = self.parse_options(name, options)
        return list(info.fn(target, config) or ())


#: Process-wide default registry; ``repro.analysis`` populates it with the
#: built-in passes at import time, plugins extend it via
#: :func:`register_pass`.
_DEFAULT_REGISTRY = AnalysisPassRegistry()


def get_pass_registry() -> AnalysisPassRegistry:
    """The process-wide default :class:`AnalysisPassRegistry`."""
    return _DEFAULT_REGISTRY


def register_pass(
    name: str,
    *,
    description: str = "",
    scope: str = "file",
    config_type: type | None = None,
) -> Callable[[PassFn], PassFn]:
    """Register an analysis pass on the default registry (decorator)."""
    return _DEFAULT_REGISTRY.register(
        name, description=description, scope=scope, config_type=config_type
    )
