"""Cross-cutting property-based tests (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.models import ModelProfile
from repro.cluster.router import JobRouter
from repro.core.objectives import make_objective
from repro.core.optimizer import AllocationProblem, ClusterCapacity, OptimizationJob
from repro.core.utility import SLO
from repro.experiments.metrics import kendall_tau_distance
from repro.queueing.mdc import mdc_latency_percentile


class TestQueueingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        lam=st.floats(min_value=0.1, max_value=50.0),
        proc=st.floats(min_value=0.01, max_value=0.5),
        servers=st.integers(min_value=1, max_value=32),
    )
    def test_latency_at_least_service_time(self, lam, proc, servers):
        latency = mdc_latency_percentile(0.99, lam, proc, servers)
        assert latency >= proc or math.isinf(latency)

    @settings(max_examples=30, deadline=None)
    @given(
        lam=st.floats(min_value=0.5, max_value=20.0),
        proc=st.floats(min_value=0.05, max_value=0.3),
    )
    def test_adding_server_never_hurts(self, lam, proc):
        values = [mdc_latency_percentile(0.99, lam, proc, c) for c in range(1, 12)]
        finite = [v for v in values if math.isfinite(v)]
        assert all(a >= b - 1e-9 for a, b in zip(finite, finite[1:]))


class TestOptimizerProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=0.1, max_value=30.0), min_size=2, max_size=5
        ),
        capacity=st.integers(min_value=6, max_value=30),
    )
    def test_greedy_allocation_always_feasible(self, rates, capacity):
        from repro.core.optimizer import solve_allocation

        jobs = [
            OptimizationJob(
                name=f"j{i}", proc_time=0.18, slo=SLO(0.72), rates=(rate,)
            )
            for i, rate in enumerate(rates)
        ]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(capacity), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="greedy")
        assert problem.is_feasible(allocation.replicas)
        assert all(r >= 1 for r in allocation.replicas)

    @settings(max_examples=20, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=40.0),
        drop=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_dropping_traffic_never_lowers_raw_utility(self, rate, drop):
        # U(lam(1-d)) >= U(lam): shedding load can only help latency.
        job = OptimizationJob(name="j", proc_time=0.18, slo=SLO(0.72), rates=(rate,))
        problem = AllocationProblem(
            [job], ClusterCapacity.of_replicas(8), make_objective("penaltysum")
        )
        with_drop = problem.job_utility(0, 3, drop)
        without = problem.job_utility(0, 3, 0.0)
        assert with_drop >= without - 1e-9


class TestRouterConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        n_requests=st.integers(min_value=1, max_value=300),
        replicas=st.integers(min_value=1, max_value=6),
        threshold=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_arrivals_partition_into_served_and_dropped(
        self, n_requests, replicas, threshold, seed
    ):
        rng = np.random.default_rng(seed)
        model = ModelProfile(name="m", proc_time=0.1, proc_jitter=0.0)
        router = JobRouter(
            "j", model, initial_replicas=replicas, queue_threshold=threshold, seed=seed
        )
        t = 0.0
        served_latencies = []
        for _ in range(n_requests):
            t += float(rng.exponential(0.05))
            latency = router.offer(t)
            if math.isfinite(latency):
                served_latencies.append(latency)
        totals = router.totals
        assert totals.arrivals == n_requests
        assert totals.served + totals.dropped == n_requests
        assert totals.served == len(served_latencies)
        assert all(l >= 0.05 for l in served_latencies)  # >= half min proc time

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_queue_never_exceeds_threshold(self, seed):
        model = ModelProfile(name="m", proc_time=0.5, proc_jitter=0.0)
        router = JobRouter("j", model, initial_replicas=1, queue_threshold=5, seed=seed)
        for _ in range(50):
            router.offer(0.0)
        assert router.queue_length(0.0) <= 5


class TestKendallTauProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list("abcdef")))
    def test_distance_to_self_is_zero(self, perm):
        assert kendall_tau_distance(perm, perm) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list("abcde")), st.permutations(list("abcde")))
    def test_symmetric(self, a, b):
        assert kendall_tau_distance(a, b) == pytest.approx(kendall_tau_distance(b, a))

    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list("abcde")))
    def test_reversal_is_max(self, perm):
        assert kendall_tau_distance(perm, list(reversed(perm))) == 1.0
