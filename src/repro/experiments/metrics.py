"""Experiment-level metrics: rankings and their agreement.

The paper compares its matched simulator against the cluster deployment by
ranking all nine policies on lost utility and computing the Kendall-tau
distance between the rankings (Table 7): 0 means identical order, 1 means
fully reversed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["kendall_tau_distance", "rank_policies"]


def kendall_tau_distance(order_a: Sequence, order_b: Sequence) -> float:
    """Normalized Kendall-tau distance between two rankings of the same items.

    Counts discordant pairs / total pairs: 0.0 for identical rankings,
    1.0 for exact reversal.
    """
    items_a, items_b = list(order_a), list(order_b)
    if sorted(map(str, items_a)) != sorted(map(str, items_b)):
        raise ValueError("rankings must contain the same items")
    n = len(items_a)
    if n < 2:
        return 0.0
    position_b = {str(item): index for index, item in enumerate(items_b)}
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if position_b[str(items_a[i])] > position_b[str(items_a[j])]:
                discordant += 1
    return discordant / (n * (n - 1) / 2)


def rank_policies(scores: dict[str, float], ascending: bool = True) -> list[str]:
    """Policies ranked by score (ascending = lower is better, e.g. lost utility)."""
    ordered = sorted(scores.items(), key=lambda kv: kv[1], reverse=not ascending)
    return [name for name, _ in ordered]
