"""Pass ``perf-gate``: every emitted perf baseline is actually gated.

The perf-regression story only works if ``tools/check_perf.py`` knows
about every baseline the benches emit: a ``benchmarks/bench_*.py`` that
writes ``results/BENCH_<name>.json`` without the gate reading it is a
baseline that silently stops guarding anything.  This project-scoped
pass cross-references the two directions:

- every ``BENCH_<name>.json`` literal appearing in *code* (docstrings are
  ignored) of a ``benchmarks/bench_*.py`` must also appear in
  ``tools/check_perf.py``;

the inverse direction -- a checked-in ``results/BENCH_*.json`` whose
emitting bench module has vanished -- is a *runtime* concern and is
enforced by ``tools/check_perf.py`` itself (it fails when a baseline has
no emitter), so drift is caught whichever half goes missing first.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding, ProjectContext
from repro.analysis.registry import register_pass

__all__ = ["PerfGateOptions", "check_perf_gate", "bench_baseline_names"]

PASS_ID = "perf-gate"

_BENCH_NAME_RE = re.compile(r"BENCH_\w+\.json")


@dataclass(frozen=True)
class PerfGateOptions:
    """Where benches and the gate live, relative to the project root."""

    bench_glob: str = "benchmarks/bench_*.py"
    gate_path: str = "tools/check_perf.py"


def _docstring_constants(tree: ast.Module) -> set[int]:
    """ids of Constant nodes that are docstrings (excluded from emission scan)."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


def bench_baseline_names(path: Path) -> dict[str, int]:
    """``BENCH_*.json`` names a bench module emits, with their first line.

    Only string constants *outside docstrings* count: a doc mention of a
    baseline is narrative, a code literal is an emission/reference.
    Unparseable files yield nothing (syntax errors are not this pass's
    business).
    """
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return {}
    doc_ids = _docstring_constants(tree)
    names: dict[str, int] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in doc_ids
        ):
            for match in _BENCH_NAME_RE.findall(node.value):
                names.setdefault(match, node.lineno)
    return names


def check_perf_gate(
    project: ProjectContext, options: PerfGateOptions | None
) -> list[Finding]:
    options = options or PerfGateOptions()
    gate_file = project.root / options.gate_path
    if not gate_file.exists():
        # Not a repo checkout with the perf-gate layout (e.g. linting a
        # loose directory); nothing to cross-reference.
        return []
    gated = set(_BENCH_NAME_RE.findall(gate_file.read_text()))

    findings: list[Finding] = []
    for bench in sorted(project.root.glob(options.bench_glob)):
        for name, line in sorted(bench_baseline_names(bench).items()):
            if name not in gated:
                rel = bench.relative_to(project.root)
                findings.append(
                    Finding(
                        pass_id=PASS_ID,
                        path=str(rel),
                        line=line,
                        message=(
                            f"{rel} emits results/{name} but "
                            f"{options.gate_path} never reads it; wire the "
                            "baseline into the perf gate or it guards nothing"
                        ),
                        snippet=name,
                    )
                )
    return findings


register_pass(
    PASS_ID,
    description=(
        "benchmarks/bench_*.py baselines (results/BENCH_*.json) that "
        "tools/check_perf.py never gates."
    ),
    scope="project",
    config_type=PerfGateOptions,
)(check_perf_gate)
