"""Forecaster interface and input scaling."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Forecaster", "StandardScaler", "sliding_windows"]


class StandardScaler:
    """Standardize series by training mean/std; inverse for predictions."""

    def __init__(self) -> None:
        self.mean = 0.0
        self.std = 1.0
        self._fitted = False

    def fit(self, series: np.ndarray) -> "StandardScaler":
        series = np.asarray(series, dtype=float)
        if series.size == 0:
            raise ValueError("cannot fit scaler on an empty series")
        self.mean = float(series.mean())
        self.std = float(series.std())
        if self.std < 1e-12:
            self.std = 1.0
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(values, dtype=float) - self.mean) / self.std

    def inverse(self, values: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(values, dtype=float) * self.std + self.mean


def sliding_windows(
    series: np.ndarray, input_size: int, horizon: int
) -> tuple[np.ndarray, np.ndarray]:
    """All (input, target) windows of a 1-D series.

    Returns ``X`` of shape (n, input_size) and ``Y`` of shape (n, horizon).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    n = series.shape[0] - input_size - horizon + 1
    if n <= 0:
        raise ValueError(
            f"series of length {series.shape[0]} too short for "
            f"input {input_size} + horizon {horizon}"
        )
    inputs = np.stack([series[i : i + input_size] for i in range(n)])
    targets = np.stack(
        [series[i + input_size : i + input_size + horizon] for i in range(n)]
    )
    return inputs, targets


class Forecaster(ABC):
    """Common interface for all workload forecasters.

    A forecaster is fit on a 1-D arrival-rate history and then queried with
    an arbitrary recent history window.  ``sample_paths`` is the
    probabilistic interface the autoscaler consumes; point forecasters
    default to sampling around the point forecast using the residual
    standard deviation estimated during fitting.
    """

    #: Residual standard deviation estimated at fit time (original units).
    residual_std: float = 0.0

    @abstractmethod
    def fit(self, series: np.ndarray) -> "Forecaster":
        """Train on a historical series (original units)."""

    @abstractmethod
    def predict(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Point forecast of the next ``horizon`` values."""

    def sample_paths(
        self,
        history: np.ndarray,
        horizon: int,
        num_samples: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sampled future trajectories, shape (num_samples, horizon).

        Default implementation adds i.i.d. Gaussian noise with the fitted
        residual standard deviation to the point forecast; probabilistic
        models override this with true distributional samples.
        """
        rng = rng or np.random.default_rng(0)
        point = self.predict(history, horizon)
        noise = rng.normal(0.0, max(self.residual_std, 1e-12), size=(num_samples, horizon))
        return np.maximum(point[None, :] + noise, 0.0)

    def _estimate_residual_std(self, series: np.ndarray, input_size: int, horizon: int) -> None:
        """Fill :attr:`residual_std` from one-shot backtesting on ``series``."""
        series = np.asarray(series, dtype=float)
        usable = series.shape[0] - input_size - horizon + 1
        if usable <= 1:
            self.residual_std = float(series.std())
            return
        step = max(usable // 64, 1)
        errors = []
        for start in range(0, usable, step):
            history = series[start : start + input_size]
            target = series[start + input_size : start + input_size + horizon]
            prediction = self.predict(history, horizon)
            errors.append(prediction - target)
        stacked = np.concatenate(errors)
        self.residual_std = float(np.sqrt(np.mean(stacked**2)))
