"""VM instance catalog for the budget-limited cloud mode.

Each :class:`InstanceType` hosts exactly one model replica (the paper's
deployment shape: one Ray Serve replica per worker pod, one pod per
allocation unit).  ``speedup`` scales the job's reference processing time
and ``cost_per_hour`` is the on-demand price.  The bundled catalog uses
representative 2024 on-demand prices for general/compute/GPU instances;
only the price *ratios* matter to the planners.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InstanceType", "VM_GENERAL", "VM_COMPUTE", "VM_GPU", "DEFAULT_CATALOG"]


@dataclass(frozen=True)
class InstanceType:
    """One rentable VM flavor hosting a single model replica."""

    name: str
    cost_per_hour: float
    speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.cost_per_hour <= 0:
            raise ValueError(f"cost_per_hour must be positive, got {self.cost_per_hour}")
        if self.speedup <= 0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")

    def proc_time(self, reference_proc_time: float) -> float:
        """Per-request processing time of a job on this instance."""
        if reference_proc_time <= 0:
            raise ValueError(f"processing time must be positive, got {reference_proc_time}")
        return reference_proc_time / self.speedup

    def max_throughput(self, reference_proc_time: float) -> float:
        """Saturation throughput (requests/second) of one replica."""
        return 1.0 / self.proc_time(reference_proc_time)

    def cost_per_request(self, reference_proc_time: float) -> float:
        """Dollar cost per request at saturation -- Mark/Barista's ranking key."""
        return self.cost_per_hour / (3600.0 * self.max_throughput(reference_proc_time))


#: General-purpose VM (m5.large-class): reference speed.
VM_GENERAL = InstanceType(name="vm-general", cost_per_hour=0.096, speedup=1.0)

#: Compute-optimized VM (c5.xlarge-class): ~1.6x on CPU inference.
VM_COMPUTE = InstanceType(name="vm-compute", cost_per_hour=0.17, speedup=1.6)

#: GPU VM (g4dn.xlarge-class): ~6x on ResNet-class models.
VM_GPU = InstanceType(name="vm-gpu", cost_per_hour=0.526, speedup=6.0)

#: Default catalog used by the examples and benches.
DEFAULT_CATALOG = [VM_GENERAL, VM_COMPUTE, VM_GPU]
