"""Analytic flow simulator tests and request-level agreement."""

import numpy as np
import pytest

from repro.cluster.job import InferenceJobSpec
from repro.cluster.kubernetes import ResourceQuota
from repro.cluster.models import ModelProfile
from repro.sim.analytic import FlowSimulation
from repro.sim.simulation import Simulation, SimulationConfig
from tests.test_simulation import StaticPolicy


def run_flow(trace_rpm, replicas, minutes=10, proc=0.18, policy=None):
    model = ModelProfile(name="m", proc_time=proc, proc_jitter=0.0)
    job = InferenceJobSpec.with_default_slo("svc", model)
    traces = {"svc": np.full(minutes, float(trace_rpm))}
    sim = FlowSimulation(
        [job],
        traces,
        policy or StaticPolicy({"svc": replicas}),
        ResourceQuota.of_replicas(max(replicas, 1)),
        config=SimulationConfig(
            duration_minutes=minutes, seed=0, cold_start_range=(0.0, 0.0)
        ),
        initial_replicas={"svc": replicas},
    )
    return sim.run()


class TestFlowBehaviour:
    def test_overprovisioned_clean(self):
        result = run_flow(trace_rpm=120, replicas=4)
        assert result.jobs["svc"].slo_violation_rate < 0.01

    def test_underprovisioned_violates_and_drops(self):
        result = run_flow(trace_rpm=600, replicas=1)
        svc = result.jobs["svc"]
        assert svc.slo_violation_rate > 0.5
        assert svc.drops.sum() > 0

    def test_metadata_marks_simulator(self):
        result = run_flow(trace_rpm=100, replicas=2)
        assert result.metadata["simulator"] == "analytic-flow"

    def test_arrivals_match_trace(self):
        result = run_flow(trace_rpm=300, replicas=4, minutes=5)
        assert result.jobs["svc"].total_arrivals == pytest.approx(1500, rel=0.01)


class TestAgreementWithRequestLevel:
    """The flow model should agree with the DES on coarse outcomes."""

    @pytest.mark.parametrize("rpm,replicas", [(120, 4), (300, 2), (600, 1), (900, 3)])
    def test_violation_rates_close(self, rpm, replicas):
        model = ModelProfile(name="m", proc_time=0.18, proc_jitter=0.0)
        job = InferenceJobSpec.with_default_slo("svc", model)
        traces = {"svc": np.full(12, float(rpm))}
        config = SimulationConfig(duration_minutes=12, seed=1, cold_start_range=(0.0, 0.0))
        quota = ResourceQuota.of_replicas(max(replicas, 1))
        request = Simulation(
            [job], traces, StaticPolicy({"svc": replicas}), quota,
            config=config, initial_replicas={"svc": replicas},
        ).run()
        flow = FlowSimulation(
            [job], traces, StaticPolicy({"svc": replicas}), quota,
            config=config, initial_replicas={"svc": replicas},
        ).run()
        a = request.jobs["svc"].slo_violation_rate
        b = flow.jobs["svc"].slo_violation_rate
        assert abs(a - b) < 0.15

    def test_more_replicas_never_worse_in_either_simulator(self):
        # Both simulators must agree on the coarse structure (the property
        # behind the paper's Table 7 methodology): under a fixed overload,
        # adding replicas does not increase lost utility.
        model = ModelProfile(name="m", proc_time=0.18, proc_jitter=0.0)
        job = InferenceJobSpec.with_default_slo("svc", model)
        traces = {"svc": np.full(10, 700.0)}
        config = SimulationConfig(duration_minutes=10, seed=2, cold_start_range=(0.0, 0.0))

        def lost(sim_cls, replicas):
            quota = ResourceQuota.of_replicas(replicas)
            result = sim_cls(
                [job], traces, StaticPolicy({"svc": replicas}), quota,
                config=config, initial_replicas={"svc": replicas},
            ).run()
            return result.avg_lost_cluster_utility

        for sim_cls in (Simulation, FlowSimulation):
            losses = [lost(sim_cls, r) for r in (1, 3, 5)]
            assert losses[0] >= losses[1] - 0.05
            assert losses[1] >= losses[2] - 0.05
        # And the two simulators agree on the overloaded point's severity.
        assert abs(lost(Simulation, 1) - lost(FlowSimulation, 1)) < 0.2
