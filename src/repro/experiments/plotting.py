"""Terminal-friendly ASCII charts for experiment reports.

The benches and CLI run in environments without display servers, so the
figures the paper renders with matplotlib are reproduced as ASCII: line
charts for timelines (Fig. 11-style), horizontal bars for policy
comparisons (Fig. 10-style) and five-number boxplots for fairness spreads
(Fig. 12-style).  All functions return plain strings; nothing is printed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_timeline", "ascii_bars", "ascii_boxplot"]

_MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    """Map ``value`` in [lo, hi] to an integer cell in [0, steps - 1]."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(int(frac * steps), steps - 1)


def ascii_timeline(
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 14,
    title: str = "",
) -> str:
    """Multi-series line chart; x is the sample index, y auto-scales.

    Each series gets a marker from ``*o+x#@%&`` (cycled); the legend maps
    markers back to names.  Series are downsampled by bucket-averaging to
    ``width`` columns.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 8 or height < 3:
        raise ValueError(f"chart too small: width={width}, height={height}")
    arrays = {}
    for name, values in series.items():
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"series {name!r} must be a non-empty 1-D array")
        arrays[name] = arr
    finite = np.concatenate([a[np.isfinite(a)] for a in arrays.values()])
    if finite.size == 0:
        raise ValueError("all series values are non-finite")
    lo, hi = float(np.min(finite)), float(np.max(finite))
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, arr) in enumerate(arrays.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        # Bucket-average the series into `width` columns.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        for col in range(width):
            chunk = arr[edges[col] : max(edges[col + 1], edges[col] + 1)]
            chunk = chunk[np.isfinite(chunk)]
            if chunk.size == 0:
                continue
            row = height - 1 - _scale(float(np.mean(chunk)), lo, hi, height)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:10.3g} +" + "-" * width)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(arrays)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_bars(
    labels: list[str],
    values: list[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label, bars scaled to ``width``."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels for {len(values)} values")
    if not labels:
        raise ValueError("at least one bar is required")
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    if any(v < 0 or not math.isfinite(v) for v in values):
        raise ValueError("bar values must be finite and non-negative")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / peak * width)), 1 if value > 0 else 0)
        lines.append(f"{label:>{label_width}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def ascii_boxplot(
    groups: dict[str, np.ndarray],
    width: int = 60,
    title: str = "",
) -> str:
    """Five-number-summary boxplots on a shared scale.

    Rendered as ``|---[  =  ]---|`` (whiskers at min/max, box at the
    quartiles, ``=`` at the median), one row per group -- the ASCII
    analogue of the paper's Fig. 12 fairness boxplots.
    """
    if not groups:
        raise ValueError("at least one group is required")
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    summaries = {}
    for name, values in groups.items():
        arr = np.asarray(values, dtype=float)
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            raise ValueError(f"group {name!r} has no finite values")
        summaries[name] = np.percentile(arr, [0, 25, 50, 75, 100])
    lo = min(s[0] for s in summaries.values())
    hi = max(s[-1] for s in summaries.values())
    if hi == lo:
        hi = lo + 1.0
    label_width = max(len(name) for name in summaries)
    lines = [title] if title else []
    lines.append(
        " " * (label_width + 1) + f"{lo:<10.3g}" + " " * max(width - 20, 0) + f"{hi:>10.3g}"
    )
    for name, (mn, q1, med, q3, mx) in summaries.items():
        row = [" "] * width
        c_mn = _scale(mn, lo, hi, width)
        c_q1 = _scale(q1, lo, hi, width)
        c_med = _scale(med, lo, hi, width)
        c_q3 = _scale(q3, lo, hi, width)
        c_mx = _scale(mx, lo, hi, width)
        for col in range(c_mn, c_mx + 1):
            row[col] = "-"
        for col in range(c_q1, c_q3 + 1):
            row[col] = " "
        row[c_mn] = "|"
        row[c_mx] = "|"
        row[c_q1] = "["
        row[c_q3] = "]"
        row[c_med] = "="
        lines.append(f"{name:>{label_width}} {''.join(row)}")
    return "\n".join(lines)
