"""Fast analytic (fluid/flow) cluster simulator.

Where :class:`repro.sim.simulation.Simulation` routes individual Poisson
requests, this simulator advances each job's queue *analytically* per
control tick: deterministic fluid inflow/outflow for backlog dynamics plus
M/D/c formulas for the stochastic waiting tail when the queue is near
empty.  It is two to three orders of magnitude faster, which makes the
large sweeps tractable (Fig. 15's cluster-size sweep, Table 8's 100-job
run), and plays the role of the paper's "matched simulation" in the
Table 7 ranking comparison against the request-level simulator.

Policies interact with it through exactly the same observation/decision
interface, so every autoscaler implementation is reused unchanged --
mirroring how the paper's simulator reuses the deployment code.  The
control loop is the shared :class:`~repro.sim.harness.SimHarness`; replica
cold starts and drains run on the event-driven
:class:`~repro.sim.lifecycle.ReplicaLifecycle`, and
``SimulationConfig.faults`` is honoured with the same per-replica fault
process the request-level simulator uses (failures remove serving
capacity; the reconcile step recreates pods behind a fresh cold start).
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.job import InferenceJobSpec
from repro.core.penalty import penalty_multiplier
from repro.core.utility import inverse_utility
from repro.policy import JobObservation, ScalingDecision
from repro.queueing.mdc import mdc_latency_percentile
from repro.queueing.mmc import erlang_c
from repro.sim.faults import make_fault_injector
from repro.sim.harness import SimHarness, SimulationConfig, admit_decision
from repro.sim.lifecycle import ReplicaLifecycle
from repro.sim.recorder import JobSeries, SimulationResult

__all__ = ["FlowSimulation"]


class _FlowJob:
    """Analytic state of one job."""

    def __init__(
        self,
        spec: InferenceJobSpec,
        trace: np.ndarray,
        queue_threshold: int,
        cold_start_range: tuple[float, float],
        rng: np.random.Generator,
    ) -> None:
        self.spec = spec
        self.trace = trace
        self.queue_threshold = queue_threshold
        self.rng = rng
        self.lifecycle = ReplicaLifecycle(cold_start_range, rng)
        self.queue = 0.0
        self.drop_rate = 0.0
        self.target = 0
        #: Effective service time of the job's replica pool.  Homogeneous
        #: runs never reassign it (it stays the model's reference time);
        #: heterogeneous runs push the mixed-pool effective time after each
        #: device assignment.
        self.proc_time = spec.model.proc_time

    # ----------------------------------------------------------- scaling

    @property
    def running(self) -> int:
        """Replicas past their cold start (serving capacity)."""
        return self.lifecycle.ready

    @running.setter
    def running(self, value: int) -> None:
        self.lifecycle.ready = int(value)

    @property
    def existing(self) -> int:
        """Replicas that exist (running or still cold-starting)."""
        return self.lifecycle.total

    def scale_to(self, target: int, now: float) -> None:
        self.target = target
        self.lifecycle.scale_to(target, now)

    def fail(self, count: int, now: float) -> int:
        """Fault injection: lose ``count`` running replicas, then let the
        reconcile step recreate them behind a fresh cold start."""
        killed = self.lifecycle.fail(count)
        if killed:
            self.lifecycle.scale_to(self.target, now)
        return killed

    # ------------------------------------------------------------- flow

    def step(self, now: float, dt: float, lam: float) -> dict:
        """Advance one tick; returns per-tick aggregates.

        ``lam`` is the offered arrival rate in requests/second.
        """
        self.lifecycle.advance(now)
        spec = self.spec
        p = self.proc_time
        arrivals = lam * dt
        explicit_drops = arrivals * self.drop_rate
        kept_rate = lam * (1.0 - self.drop_rate)
        inflow = kept_rate * dt
        service_rate = self.running / p if self.running else 0.0
        capacity = service_rate * dt

        queue_start = self.queue
        processed = min(queue_start + inflow, capacity)
        queue_end = queue_start + inflow - processed
        tail_drops = 0.0
        if queue_end > self.queue_threshold:
            tail_drops = queue_end - self.queue_threshold
            queue_end = float(self.queue_threshold)
        self.queue = queue_end

        accepted = max(inflow - tail_drops, 0.0)
        drops = explicit_drops + tail_drops
        queue_mid = 0.5 * (queue_start + queue_end)

        if self.running == 0:
            latency_p = math.inf
            violation_fraction = 1.0
        else:
            wait_det = queue_mid / service_rate
            slo = spec.slo.target
            rho = kept_rate * p / self.running
            if rho < 1.0 and queue_mid < 1.0:
                latency_p = mdc_latency_percentile(
                    spec.slo.quantile, kept_rate, p, self.running
                )
                violation_fraction = self._stochastic_violation(kept_rate, slo)
            else:
                latency_p = wait_det + p
                violation_fraction = self._deterministic_violation(
                    queue_start, queue_end, kept_rate, service_rate, dt, slo
                )
        violations = violation_fraction * accepted + drops
        return {
            "arrivals": arrivals,
            "drops": drops,
            "violations": min(violations, arrivals),
            "latency_p": latency_p,
        }

    def _stochastic_violation(self, lam: float, slo: float) -> float:
        """P(latency > slo) for a stable, empty-queue M/D/c job.

        Uses the exponential M/M/c waiting tail halved in time (the same
        half-wait approximation as the latency estimator):
        ``P(W > t) ~= C * exp(-2 (c mu - lam) t)``.
        """
        p = self.proc_time
        if slo <= p:
            return 1.0
        if lam <= 0.0:
            return 0.0
        mu = 1.0 / p
        offered = lam * p
        if offered >= self.running:
            return 1.0
        wait_prob = erlang_c(self.running, offered)
        drain = self.running * mu - lam
        return float(min(wait_prob * math.exp(-2.0 * drain * (slo - p)), 1.0))

    def _deterministic_violation(
        self,
        queue_start: float,
        queue_end: float,
        lam: float,
        service_rate: float,
        dt: float,
        slo: float,
    ) -> float:
        """Fraction of this tick's arrivals whose fluid wait exceeds the SLO.

        The queue evolves linearly within the tick; an arrival at offset
        ``tau`` waits ``Q(tau) / service_rate`` plus one service time.
        """
        p = self.proc_time
        budget = (slo - p) * service_rate  # queue length that still meets SLO
        if budget <= 0:
            return 1.0
        slope = (queue_end - queue_start) / dt
        if abs(slope) < 1e-12:
            return 1.0 if queue_start > budget else 0.0
        crossing = (budget - queue_start) / slope
        if slope > 0:
            # Queue grows: arrivals after the crossing violate.
            fraction = 1.0 - min(max(crossing / dt, 0.0), 1.0)
        else:
            # Queue drains: arrivals before the crossing violate.
            fraction = min(max(crossing / dt, 0.0), 1.0)
        return fraction


# Shared analytic accounting, used verbatim by :class:`FlowSimulation` and
# the hybrid backend's analytic half (:mod:`repro.sim.hybrid`) -- one
# implementation, so the two fidelities cannot drift.

def new_flow_buckets(names, minutes: int) -> dict[str, dict]:
    """Fresh per-minute accumulators for the analytic jobs ``names``."""
    return {
        name: {
            "arrivals": np.zeros(minutes),
            "drops": np.zeros(minutes),
            "violations": np.zeros(minutes),
            "lat_sum": np.zeros(minutes),
            "lat_weight": np.zeros(minutes),
            "lat_max": np.zeros(minutes),
            "replicas": np.zeros(minutes, dtype=int),
        }
        for name in names
    }


def accumulate_flow_tick(bucket: dict, minute: int, stats: dict) -> None:
    """Fold one tick's :meth:`_FlowJob.step` aggregates into a bucket."""
    bucket["arrivals"][minute] += stats["arrivals"]
    bucket["drops"][minute] += stats["drops"]
    bucket["violations"][minute] += stats["violations"]
    if math.isfinite(stats["latency_p"]):
        bucket["lat_sum"][minute] += stats["latency_p"] * stats["arrivals"]
        bucket["lat_weight"][minute] += stats["arrivals"]
        bucket["lat_max"][minute] = max(bucket["lat_max"][minute], stats["latency_p"])
    else:
        bucket["lat_max"][minute] = math.inf


def flow_observation(
    name: str,
    flow: _FlowJob,
    minute: int,
    history_rpm: dict[str, np.ndarray],
    last_tick: dict[str, dict],
) -> JobObservation:
    """Build one analytic job's observation at trace ``minute``."""
    start = minute - 14
    if start >= 0:
        window = flow.trace[start : minute + 1]
    else:
        prefix = history_rpm.get(name, np.zeros(0))
        pad = prefix[len(prefix) + start :] if len(prefix) + start >= 0 else prefix
        window = np.concatenate([pad, flow.trace[: minute + 1]])
    tick_stats = last_tick.get(name, {})
    arrivals = tick_stats.get("arrivals", 0.0)
    violations = tick_stats.get("violations", 0.0)
    return JobObservation(
        job_name=name,
        arrival_rate=flow.trace[minute] / 60.0,
        rate_history=tuple(window / 60.0),
        mean_proc_time=flow.proc_time,
        latency=tick_stats.get("latency_p", 0.0),
        slo_violation_rate=violations / arrivals if arrivals else 0.0,
        current_replicas=flow.running,
        target_replicas=flow.target,
        queue_length=int(flow.queue),
        drop_rate=flow.drop_rate,
    )


def collect_flow_series(name: str, flow: _FlowJob, bucket: dict, minutes: int) -> JobSeries:
    """Assemble one analytic job's per-minute evaluation series."""
    spec = flow.spec
    latency = np.zeros(minutes)
    utility = np.zeros(minutes)
    effective = np.zeros(minutes)
    for m in range(minutes):
        if math.isinf(bucket["lat_max"][m]):
            latency[m] = math.inf
        elif bucket["lat_weight"][m] > 0:
            mean_component = bucket["lat_sum"][m] / bucket["lat_weight"][m]
            latency[m] = 0.5 * (mean_component + bucket["lat_max"][m])
        else:
            latency[m] = 0.0
        arrivals = bucket["arrivals"][m]
        if arrivals <= 0:
            utility[m] = 1.0
            effective[m] = 1.0
            continue
        utility[m] = inverse_utility(latency[m], spec.slo.target)
        drop_fraction = min(bucket["drops"][m] / arrivals, 1.0)
        effective[m] = penalty_multiplier(drop_fraction) * utility[m]
    return JobSeries(
        name=name,
        arrivals=np.round(bucket["arrivals"]).astype(int),
        drops=np.round(bucket["drops"]).astype(int),
        violations=np.minimum(
            np.round(bucket["violations"]), np.round(bucket["arrivals"])
        ).astype(int),
        latency_p=latency,
        utility=utility,
        effective_utility=effective,
        replicas=bucket["replicas"],
    )


class FlowSimulation(SimHarness):
    """Analytic counterpart of :class:`repro.sim.simulation.Simulation`."""

    fidelity_label = "analytic-flow"

    # ------------------------------------------------------------- hooks

    def _setup(self) -> None:
        rng = np.random.default_rng(self.config.seed)
        self._history_rpm = {
            name: values * self.config.rate_scale
            for name, values in self.history_prefix.items()
        }
        self.state: dict[str, _FlowJob] = {}
        for job in self.jobs:
            flow = _FlowJob(
                spec=job,
                trace=self.traces[job.name] * self.config.rate_scale,
                queue_threshold=self.config.queue_threshold,
                cold_start_range=self.config.cold_start_range,
                rng=np.random.default_rng(rng.integers(2**31)),
            )
            count = int(self.initial_replicas.get(job.name, job.min_replicas))
            flow.running = count
            flow.target = count
            self.state[job.name] = flow
        self._push_device_assignment()
        self._fault_injector = (
            make_fault_injector(self.config.faults) if self.config.faults else None
        )

    def _push_device_assignment(
        self, hints: dict[str, dict[str, int]] | None = None
    ) -> None:
        """Re-place replica targets onto device classes; push each job's
        effective processing time.  No-op on homogeneous runs."""
        if self.device_pool is None:
            return
        targets = {name: flow.target for name, flow in self.state.items()}
        self.device_pool.assign(targets, hints)
        for name, flow in self.state.items():
            flow.proc_time = self.device_pool.effective_proc_time(name)

    def _reset(self) -> None:
        if self._fault_injector is not None:
            self._fault_injector.reset()
        self._acc = new_flow_buckets(self.state, self.duration_minutes)
        self._last_tick: dict[str, dict] = {}

    def advance(self, now: float, tick: float, end_time: float) -> float:
        dt = min(tick, end_time - now)
        minutes = self.duration_minutes
        minute = min(int(now // 60.0), minutes - 1)
        for name, flow in self.state.items():
            lam = flow.trace[minute] / 60.0
            stats = flow.step(now, dt, lam)
            self._last_tick[name] = stats
            accumulate_flow_tick(self._acc[name], minute, stats)
        now += dt
        if self._fault_injector is not None:
            for name, flow in self.state.items():
                kills = self._fault_injector.sample(name, flow.existing, dt)
                if kills:
                    flow.fail(kills, now)
        return now

    def observations(self, now: float) -> dict[str, JobObservation]:
        minute = min(int(now // 60.0), self.duration_minutes - 1)
        return {
            name: flow_observation(
                name, flow, minute, self._history_rpm, self._last_tick
            )
            for name, flow in self.state.items()
        }

    def apply(self, decision: ScalingDecision, now: float) -> None:
        current = {name: flow.target for name, flow in self.state.items()}
        admitted = admit_decision(self.quota, self.jobs, current, decision)
        for name, target in admitted.items():
            flow = self.state[name]
            target = max(target, flow.spec.min_replicas)
            if target != flow.existing:
                flow.scale_to(target, now)
            flow.target = target
        self._push_device_assignment(decision.device_replicas)
        for name, rate in decision.drop_rates.items():
            if name in self.state:
                self.state[name].drop_rate = float(rate)

    def end_of_chunk(self, now: float) -> None:
        minute_after = min(int(now // 60.0), self.duration_minutes - 1)
        for name, flow in self.state.items():
            self._acc[name]["replicas"][minute_after] = flow.target

    # ------------------------------------------------------------ collect

    def collect(self) -> SimulationResult:
        series = {
            name: collect_flow_series(
                name, self.state[name], bucket, self.duration_minutes
            )
            for name, bucket in self._acc.items()
        }
        metadata = self.base_metadata()
        if self._fault_injector is not None:
            metadata["failures_injected"] = dict(self._fault_injector.failures_injected)
            metadata["total_failures"] = self._fault_injector.total_failures
        return SimulationResult(
            jobs=series,
            policy_name=getattr(self.policy, "name", "policy"),
            metadata=metadata,
        )
