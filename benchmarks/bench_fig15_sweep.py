"""Fig. 15: cluster-size sweep from heavily oversubscribed to
undersubscribed (matched simulation).

Paper shape: at sizes >= right-sized (36+), all Faro variants and Mark
reach cluster utility near the maximum (10); in constrained clusters Faro
beats Mark and the rest; in the smallest clusters Faro-Sum/PenaltySum
lead the *Fair* variants.
"""

import numpy as np

from benchmarks.conftest import BENCH_MINUTES, BENCH_PROFILE, write_result
from repro.experiments import paper_scenario
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials

SIZES = (16, 24, 32, 36, 48, 64)
POLICIES = ("oneshot", "aiad", "mark", "faro-fair", "faro-sum", "faro-fairsum")


def test_fig15_size_sweep(benchmark):
    def run():
        utilities = {}
        for size in SIZES:
            scenario = paper_scenario(size, duration_minutes=BENCH_MINUTES, seed=0)
            for policy in POLICIES:
                stats = run_trials(
                    scenario,
                    policy,
                    trials=1,
                    simulator="flow",
                    seed=0,
                    predictor_profile=BENCH_PROFILE,
                )
                utilities[(size, policy)] = (
                    stats.results[0].num_jobs - stats.lost_utility_mean
                )
        return utilities

    utilities = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for policy in POLICIES:
        series = " ".join(f"{utilities[(size, policy)]:5.2f}" for size in SIZES)
        rows.append((policy, "", series))
    rows.insert(0, ("cluster size ->", "", " ".join(f"{s:5d}" for s in SIZES)))
    text = format_table(
        ["policy (avg cluster utility)", "paper", "measured across sizes"],
        rows,
        title="== Fig. 15: over- to under-subscribed sweep (flow sim) ==",
    )
    write_result("fig15_sweep", text)

    # Undersubscribed: Faro variants near max utility (10 jobs).
    for policy in ("faro-sum", "faro-fairsum"):
        assert utilities[(64, policy)] > 9.0
    # Utility grows with cluster size for Faro.
    faro_curve = [utilities[(size, "faro-fairsum")] for size in SIZES]
    assert faro_curve[0] < faro_curve[-1]
    # Constrained region: Faro above Oneshot/AIAD.
    for size in (16, 24, 32):
        assert utilities[(size, "faro-sum")] >= utilities[(size, "oneshot")] - 0.2
        assert utilities[(size, "faro-sum")] >= utilities[(size, "aiad")] - 0.2
