"""Pass ``spawn-safety``: only picklable callables cross process boundaries.

The sweep executor runs shards on a ``spawn`` ``ProcessPoolExecutor``:
workers import a fresh interpreter and unpickle their payloads, so a
lambda, a function defined inside another function, or a bound local
closure submitted to the pool fails at runtime -- on some platforms only
when the pool is actually exercised, which is exactly the kind of bug
that survives a single-process test run.  This pass flags, at every
``*.submit(...)`` / ``*.map(...)`` call whose receiver looks like an
executor or pool (and any ``ProcessPoolExecutor(initializer=...)``):

- ``lambda`` expressions passed as the callable or initializer;
- names bound to a nested ``def``/``lambda`` in the enclosing function
  scope (module-level functions pickle fine and are not flagged).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding, ModuleContext
from repro.analysis.registry import register_pass

__all__ = ["SpawnSafetyOptions", "check_spawn_safety"]

PASS_ID = "spawn-safety"


@dataclass(frozen=True)
class SpawnSafetyOptions:
    """What counts as a process-pool dispatch site."""

    #: Method names that take a callable destined for another process.
    methods: tuple[str, ...] = ("submit", "map", "apply_async", "starmap")
    #: Receiver-name substrings identifying executors/pools.
    receiver_hints: tuple[str, ...] = ("pool", "executor")


def _receiver_is_pool(node: ast.expr, hints: tuple[str, ...]) -> bool:
    if isinstance(node, ast.Name):
        lowered = node.id.lower()
        return any(h in lowered for h in hints)
    if isinstance(node, ast.Attribute):
        lowered = node.attr.lower()
        return any(h in lowered for h in hints) or _receiver_is_pool(
            node.value, hints
        )
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return "executor" in name.lower() or "pool" in name.lower()
    return False


def check_spawn_safety(
    context: ModuleContext, options: SpawnSafetyOptions | None
) -> list[Finding]:
    options = options or SpawnSafetyOptions()
    findings: list[Finding] = []

    def local_callables(fn: ast.AST) -> set[str]:
        """Names bound to nested defs/lambdas within ``fn`` (not ``fn`` itself)."""
        names: set[str] = set()
        for child in ast.walk(fn):
            if child is fn:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)
            elif isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Lambda
            ):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def check_callable_arg(arg: ast.expr, locals_: set[str], what: str) -> None:
        if isinstance(arg, ast.Lambda):
            findings.append(
                context.finding(
                    PASS_ID,
                    arg,
                    f"lambda passed as {what} cannot pickle into a spawn "
                    "worker; use a module-level function",
                )
            )
        elif isinstance(arg, ast.Name) and arg.id in locals_:
            findings.append(
                context.finding(
                    PASS_ID,
                    arg,
                    f"{arg.id!r} is defined inside the enclosing function; "
                    f"a nested callable passed as {what} cannot pickle into "
                    "a spawn worker -- move it to module level",
                )
            )

    def scan(scope: ast.AST, locals_: set[str]) -> None:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan(child, local_callables(child))
                continue
            if isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in options.methods
                    and _receiver_is_pool(func.value, options.receiver_hints)
                    and child.args
                ):
                    check_callable_arg(
                        child.args[0], locals_, f"a pool {func.attr}() payload"
                    )
                for kw in child.keywords:
                    if kw.arg == "initializer":
                        check_callable_arg(kw.value, locals_, "a pool initializer")
            scan(child, locals_)

    scan(context.tree, set())
    return findings


register_pass(
    PASS_ID,
    description=(
        "Lambdas and function-local callables handed to process pools "
        "(spawn workers cannot unpickle them)."
    ),
    config_type=SpawnSafetyOptions,
)(check_spawn_safety)
