"""Synthetic Azure-Functions-like invocation traces.

Shahrad et al. (ATC'20) characterize Azure Functions workloads as having
strong diurnal periodicity, weekly structure, wide per-function scale
differences, and bursty noise.  :func:`generate_azure_trace` produces a
per-minute invocation-count series with exactly those ingredients:

- a diurnal base built from one or two sinusoidal harmonics with a
  per-function phase (functions peak at different times of day),
- slow day-to-day amplitude drift,
- multiplicative lognormal noise,
- occasional bursts with geometric decay (flash crowds / retries).

Different ``shape`` presets vary the harmonic mix so that a "top 9" set of
functions has visibly different temporal patterns, like the paper's job mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AzureTraceConfig", "generate_azure_trace"]

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class AzureTraceConfig:
    """Parameters of the synthetic Azure-like trace generator."""

    days: int = 11
    base_level: float = 400.0
    diurnal_amplitude: float = 0.6
    second_harmonic: float = 0.25
    phase_minutes: float = 0.0
    daily_drift: float = 0.08
    noise_sigma: float = 0.15
    burst_rate_per_day: float = 3.0
    burst_magnitude: float = 1.5
    burst_decay: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError(f"days must be >= 1, got {self.days}")
        if self.base_level <= 0:
            raise ValueError(f"base_level must be positive, got {self.base_level}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.noise_sigma < 0 or self.burst_rate_per_day < 0:
            raise ValueError("noise and burst rates must be non-negative")
        if not 0.0 < self.burst_decay < 1.0:
            raise ValueError("burst_decay must be in (0, 1)")


def generate_azure_trace(config: AzureTraceConfig | None = None) -> np.ndarray:
    """Per-minute invocation counts for ``config.days`` days (>= 0 floats)."""
    config = config or AzureTraceConfig()
    rng = np.random.default_rng(config.seed)
    minutes = config.days * MINUTES_PER_DAY
    t = np.arange(minutes, dtype=float)

    day_phase = 2.0 * np.pi * (t + config.phase_minutes) / MINUTES_PER_DAY
    diurnal = 1.0 + config.diurnal_amplitude * np.sin(day_phase)
    diurnal += config.second_harmonic * np.sin(2.0 * day_phase + 1.3)

    day_index = t // MINUTES_PER_DAY
    drift = 1.0 + config.daily_drift * np.sin(2.0 * np.pi * day_index / 7.0 + 0.7)

    noise = np.exp(rng.normal(0.0, config.noise_sigma, size=minutes))

    bursts = np.zeros(minutes)
    expected_bursts = config.burst_rate_per_day * config.days
    count = rng.poisson(expected_bursts)
    starts = rng.integers(0, minutes, size=count)
    for start in starts:
        magnitude = config.burst_magnitude * rng.exponential(1.0)
        step = int(start)
        while magnitude > 0.01 and step < minutes:
            bursts[step] += magnitude
            magnitude *= config.burst_decay
            step += 1

    series = config.base_level * diurnal * drift * noise + config.base_level * bursts
    return np.maximum(series, 0.0)
