"""Fault isolation and crash-resume behaviour of the sharded executor.

Mirrors the philosophy of :mod:`repro.sim.faults`: failures are injected
deterministically (here via ``inject_fail`` shard ids, which cross the
spawn boundary in the worker payload) so recovery behaviour is testable.
A failing shard must surface in ``RunReport.failures`` without killing the
sweep, and an interrupted sweep must resume from its journal without
recomputing finished shards -- ending bit-identical to an uninterrupted
run.
"""

import json
import pickle

import pytest

from repro import api
from repro.api.parallel import SweepJournal, plan_shards
from repro.cli import main as cli_main


def tiny_spec(trials=2):
    return api.ExperimentSpec.compare(
        "tiny-faults",
        [
            api.ScenarioSpec(
                kind="paper",
                params={
                    "size": 8,
                    "num_jobs": 2,
                    "duration_minutes": 8,
                    "days": 2,
                    "rate_hi": 300.0,
                },
                name="tiny-paper",
            )
        ],
        ["fairshare", "aiad"],
        trials=trials,
        simulator="flow",
        predictor_profile={"epochs": 1, "max_windows": 64},
    )


class TestFaultIsolation:
    def test_failed_shard_is_reported_not_fatal(self, tmp_path):
        spec = tiny_spec()
        shards = plan_shards(spec, 2)
        victim = shards[1]
        report = api.run_parallel(
            spec, workers=2, inject_fail=[victim.shard_id]
        )
        assert [f.shard_id for f in report.failures] == [victim.shard_id]
        failure = report.failures[0]
        assert failure.policy == spec.policies[victim.policy_index].display_label
        assert failure.trials == victim.trial_indices()
        assert "injected fault" in failure.error
        # The healthy cell completed and is present.
        healthy_label = spec.policies[shards[0].policy_index].display_label
        assert healthy_label in report.stats["tiny-paper"]
        assert failure.policy not in report.stats["tiny-paper"]
        # Failures serialize; clean reports omit the key entirely.
        assert report.to_dict()["failures"][0]["shard_id"] == victim.shard_id
        assert "failures" not in api.run(spec).to_dict()
        assert report.sweep.shards_failed == 1

    def test_unknown_inject_fail_rejected(self):
        with pytest.raises(ValueError, match="unknown shards"):
            api.run_parallel(tiny_spec(), workers=1, inject_fail=["nope"])

    def test_missing_cache_file_fails_fast(self, tmp_path):
        """A typo'd --cache must error before any shard runs, not silently
        sweep cold (only *content* problems are best-effort)."""
        with pytest.raises(ValueError, match="does not exist"):
            api.run_parallel(
                tiny_spec(), workers=1, cache_path=tmp_path / "nope.pkl"
            )

    def test_duplicate_scenario_specs_fail_before_any_shard(self):
        """Identical/same-named scenario specs abort in validation -- the
        sharded path must not discover the collision hours in, at merge."""
        unnamed = api.ScenarioSpec(kind="paper", params={"size": 8, "num_jobs": 2})
        dup_identical = api.ExperimentSpec.compare(
            "dup-a", [unnamed, unnamed], ["fairshare"]
        )
        with pytest.raises(ValueError, match="identical parameters"):
            api.run_parallel(dup_identical, workers=1)
        dup_named = api.ExperimentSpec.compare(
            "dup-b",
            [
                api.ScenarioSpec(kind="paper", name="same"),
                api.ScenarioSpec(kind="mixed", name="same"),
            ],
            ["fairshare"],
        )
        with pytest.raises(ValueError, match="duplicate scenario name"):
            api.run_parallel(dup_named, workers=1)

    def test_cli_sweep_exit_code_on_failures(self, tmp_path, monkeypatch, capsys):
        spec = tiny_spec()
        spec_path = spec.to_file(tmp_path / "spec.json")
        victim = plan_shards(spec, 2)[0].shard_id

        real = api.run_parallel

        def with_fault(spec_arg, **kwargs):
            return real(spec_arg, **kwargs, inject_fail=[victim])

        monkeypatch.setattr(api, "run_parallel", with_fault)
        code = cli_main(
            [
                "sweep",
                "--spec",
                str(spec_path),
                "--workers",
                "2",
                "--journal",
                str(tmp_path / "journal"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED shards" in out and victim in out


class TestResume:
    def test_crash_then_resume_completes_without_recompute(self, tmp_path):
        spec = tiny_spec()
        journal = tmp_path / "journal"
        serial = api.run(spec)
        shards = plan_shards(spec, 2)
        victim = shards[0]

        interrupted = api.run_parallel(
            spec, workers=2, journal=journal, inject_fail=[victim.shard_id]
        )
        assert interrupted.sweep.shards_failed == 1
        assert interrupted.sweep.shards_run == len(shards) - 1

        resumed = api.run_parallel(spec, workers=2, journal=journal, resume=True)
        # Only the crashed shard is recomputed; the rest load from disk.
        assert resumed.sweep.shards_run == 1
        assert resumed.sweep.shards_resumed == len(shards) - 1
        assert resumed.sweep.shards_failed == 0
        assert json.dumps(resumed.to_dict()) == json.dumps(serial.to_dict())

    def test_cli_sweep_default_journal_lifecycle(self, tmp_path):
        """Clean success removes the default journal (idempotent command);
        an explicit --journal is kept for the user."""
        spec = tiny_spec()
        spec_path = spec.to_file(tmp_path / "spec.json")
        args = [
            "sweep",
            "--spec",
            str(spec_path),
            "--workers",
            "2",
            "--report",
            str(tmp_path / "report.json"),
        ]
        assert cli_main(args) == 0
        assert not (tmp_path / "spec.json.journal").exists()
        # The exact same command runs again without complaint.
        assert cli_main(args) == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert set(report["stats"]["tiny-paper"]) == {"fairshare", "aiad"}
        # Explicit journals survive success and support --resume.
        kept = ["--journal", str(tmp_path / "kept")]
        assert cli_main(args + kept) == 0
        assert (tmp_path / "kept" / "meta.json").exists()
        assert cli_main(args + kept + ["--resume"]) == 0

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="requires a journal"):
            api.run_parallel(tiny_spec(), workers=1, resume=True)
        with pytest.raises(ValueError, match="requires a journal"):
            api.run(tiny_spec(), resume=True)

    def test_dirty_journal_without_resume_rejected(self, tmp_path):
        spec = tiny_spec()
        journal = tmp_path / "journal"
        api.run_parallel(spec, workers=1, journal=journal)
        with pytest.raises(ValueError, match="resume"):
            api.run_parallel(spec, workers=1, journal=journal)

    def test_foreign_nonempty_directory_not_adopted(self, tmp_path):
        """A populated directory without meta.json is someone else's data;
        adopting it would end with cleanup deleting their files."""
        journal = tmp_path / "journal"
        journal.mkdir()
        (journal / "precious.txt").write_text("not yours")
        with pytest.raises(ValueError, match="refusing to adopt"):
            api.run_parallel(tiny_spec(), workers=1, journal=journal)
        assert (journal / "precious.txt").exists()

    def test_journal_of_other_spec_rejected(self, tmp_path):
        journal = tmp_path / "journal"
        api.run_parallel(tiny_spec(), workers=1, journal=journal)
        with pytest.raises(ValueError, match="different spec"):
            api.run_parallel(
                tiny_spec(trials=3), workers=1, journal=journal, resume=True
            )

    def test_truncated_checkpoint_never_trusted(self, tmp_path):
        """Atomic write leaves no partial shard files for resume to read."""
        spec = tiny_spec()
        journal_dir = tmp_path / "journal"
        api.run_parallel(spec, workers=1, journal=journal_dir)
        shard_files = sorted(journal_dir.glob("shard-*.pkl"))
        assert len(shard_files) == len(plan_shards(spec, 1))
        assert not list(journal_dir.glob("*.tmp"))
        journal = SweepJournal(journal_dir, spec)
        for path in shard_files:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            # Entries are digest-wrapped so a foreign spec's journal can
            # never be silently merged.
            assert payload["spec_digest"] == journal.digest
            assert payload["outcome"].stats.trial_indices is not None

    def test_journal_roundtrip(self, tmp_path):
        spec = tiny_spec()
        journal = SweepJournal(tmp_path / "j", spec)
        assert journal.open(resume=False, trials_per_shard=2) == 2
        shards = plan_shards(spec, 2)
        assert journal.load_completed(shards) == {}
        # Reopening for resume against the same spec reuses the recorded
        # granularity, whatever the new run would have auto-picked.
        assert SweepJournal(tmp_path / "j", spec).open(resume=True, trials_per_shard=1) == 2

    def test_resume_with_different_workers_reuses_checkpoints(self, tmp_path):
        """Shard ids embed trial ranges, so the journal pins granularity:
        resuming with another --workers must not silently recompute."""
        spec = tiny_spec(trials=4)
        journal = tmp_path / "journal"
        serial = api.run(spec)
        first = api.run_parallel(spec, workers=8, journal=journal)
        assert first.sweep.shards_total == 8  # 2 cells x 4 single-trial shards
        resumed = api.run_parallel(spec, workers=2, journal=journal, resume=True)
        assert resumed.sweep.shards_resumed == 8
        assert resumed.sweep.shards_run == 0
        assert json.dumps(resumed.to_dict()) == json.dumps(serial.to_dict())
        # An *explicit* conflicting granularity is an error, not a shrug.
        with pytest.raises(ValueError, match="trials_per_shard"):
            api.run_parallel(
                spec, workers=2, journal=journal, resume=True, trials_per_shard=4
            )

    def test_corrupt_cache_file_degrades_to_cold_not_failed(self, tmp_path):
        """Warm-up is best-effort: a truncated cache must not fail shards."""
        spec = tiny_spec()
        bad_cache = tmp_path / "tables.pkl"
        bad_cache.write_bytes(b"\x80\x05truncated")
        report = api.run_parallel(spec, workers=2, cache_path=bad_cache)
        assert not report.failures
        assert json.dumps(report.to_dict()) == json.dumps(api.run(spec).to_dict())
