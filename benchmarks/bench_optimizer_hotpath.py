"""Allocation hot path: solve time vs job count, cold vs warm table cache.

The planner's own latency is what keeps the control loop viable at scale
(paper §3.4 solves "in well under a second"; Fig. 7 hierarchical speedups).
This micro-benchmark pins the perf trajectory of the optimizer hot path:

- **cold**: every solve rebuilds utility tables (``UtilityTableCache``
  disabled) -- the pre-cache behaviour of one autoscaler cycle.
- **warm**: tables come from a primed shared cache, as in steady-state
  repeated cycles.  Cache hits are bit-for-bit identical to rebuilds, so
  solver results must not change.
- **warm+x0** (COBYLA row): additionally warm-starts from the previous
  allocation, the steady-state autoscaler configuration.
- **pgd** rows break the COBYLA wall: the batched first-order solver
  (:mod:`repro.core.batched_solver`) at 200 and 1000 jobs, each carrying a
  COBYLA quality differential (in-bench at 200; the 1000-job point embeds a
  one-time converged reference, since a converged COBYLA solve there takes
  minutes) plus the quality/speedup constants the perf gate enforces.

Results are appended to ``results/optimizer_hotpath.txt`` and emitted as
machine-readable ``results/BENCH_optimizer.json`` so future PRs can regress
against them.
"""

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.core.hierarchical import solve_hierarchical
from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    UtilityTableCache,
    solve_allocation,
)
from repro.core.utility import SLO
from repro.experiments.report import format_table


def make_jobs(n, scenarios=140, seed=0):
    """Autoscaler-shaped jobs: ~(samples x horizon) predicted-rate scenarios."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        base = rng.uniform(5.0, 40.0)
        rates = tuple(np.maximum(rng.normal(base, base * 0.2, size=scenarios), 0.0))
        jobs.append(
            OptimizationJob(name=f"j{i}", proc_time=0.18, slo=SLO(0.72), rates=rates)
        )
    return jobs


def _timed(fn, reps):
    started = time.perf_counter()
    result = None
    for _ in range(reps):
        result = fn()
    return (time.perf_counter() - started) / reps, result


#: One-time converged-COBYLA reference for the 1000-job pgd point, measured
#: on the baseline machine.  Same problem construction as
#: :func:`bench_pgd_flat`: ``make_jobs(1000, scenarios=35, seed=0)``,
#: capacity 3000 replicas, fairsum objective, ``max_replicas_per_job=64``,
#: warm table cache, ``maxiter=1200`` (>= num_vars + 2, so pyprima does not
#: clamp the budget).  COBYLA at this scale takes minutes per solve --
#: re-measuring it in-bench would dwarf every other point -- so the 1000-job
#: pgd point carries these constants and the perf gate checks pgd against
#: them.  Refresh by re-running a converged COBYLA solve on the baseline
#: machine if the problem construction above ever changes.
COBYLA_REF_1K = {
    "cobyla_ms": 326960.0,
    "cobyla_objective": -435.659166,
    "cobyla_nfev": 1200,
    "cobyla_post_nfev": 655655,
    "cobyla_maxiter": 1200,
}

#: Gate constants embedded in each pgd point (the perf gate reads them from
#: the emitted JSON, so bench and gate cannot drift apart): pgd's objective
#: must be within 1% of COBYLA's and its warm solve at least 10x faster.
PGD_QUALITY_TOL = 0.01
PGD_MIN_SPEEDUP = 10.0


def bench_pgd_flat(n, scenarios=35, cap=64, reps=2, cobyla_maxiter=None, cobyla_ref=None):
    """Flat pgd solve at planner scale, with a COBYLA quality differential.

    ``cobyla_maxiter`` runs a truncated-but-unclamped COBYLA on the same
    problem in-bench (only viable at a few hundred jobs); ``cobyla_ref``
    embeds a one-time converged measurement instead (the 1000-job wall).
    Exactly one of the two should be given.
    """
    jobs = make_jobs(n, scenarios=scenarios)
    capacity = ClusterCapacity.of_replicas(3 * n)
    objective = make_objective("fairsum")

    def build(cache):
        return AllocationProblem(
            jobs, capacity, objective, table_cache=cache, max_replicas_per_job=cap
        )

    def solve(cache, x0=None):
        return solve_allocation(build(cache), method="pgd", x0=x0)

    cold_s, cold = _timed(lambda: solve(UtilityTableCache(maxsize=0)), reps)
    shared = UtilityTableCache()
    solve(shared)  # prime
    warm_s, warm = _timed(lambda: solve(shared), reps)
    ws_s, ws = _timed(lambda: solve(shared, x0=warm), reps)
    assert np.array_equal(cold.replicas, warm.replicas)
    assert abs(cold.objective_value - warm.objective_value) <= 1e-9
    point = {
        "solver": "pgd",
        "jobs": n,
        "scenarios": scenarios,
        "max_replicas_per_job": cap,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "warmstart_ms": ws_s * 1e3,
        "speedup": cold_s / warm_s,
        "cold_nfev": cold.nfev,
        "warmstart_nfev": ws.nfev,
        "post_nfev": warm.post_nfev,
        "objective": warm.objective_value,
        "gated_quality_tol": PGD_QUALITY_TOL,
        "gated_speedup": PGD_MIN_SPEEDUP,
    }
    if cobyla_maxiter is not None:
        started = time.perf_counter()
        cob = solve_allocation(build(shared), method="cobyla", maxiter=cobyla_maxiter)
        point["cobyla_ms"] = (time.perf_counter() - started) * 1e3
        point["cobyla_objective"] = cob.objective_value
        point["cobyla_maxiter"] = cobyla_maxiter
    elif cobyla_ref is not None:
        point.update(cobyla_ref)
        point["cobyla_reference"] = (
            "one-time converged measurement (see COBYLA_REF_1K); "
            "not re-measured in-bench"
        )
    return point


def bench_flat(n, scenarios, method, maxiter, reps=3):
    jobs = make_jobs(n, scenarios=scenarios)
    capacity = ClusterCapacity.of_replicas(3 * n)
    objective = make_objective("fairsum")

    def solve(cache, x0=None):
        problem = AllocationProblem(jobs, capacity, objective, table_cache=cache)
        return solve_allocation(problem, method=method, x0=x0, maxiter=maxiter)

    cold_s, cold = _timed(lambda: solve(UtilityTableCache(maxsize=0)), reps)
    shared = UtilityTableCache()
    solve(shared)  # prime
    warm_s, warm = _timed(lambda: solve(shared), reps)
    ws_s, ws = _timed(lambda: solve(shared, x0=warm), reps)
    assert np.array_equal(cold.replicas, warm.replicas)
    assert abs(cold.objective_value - warm.objective_value) <= 1e-9
    return {
        "solver": method,
        "jobs": n,
        "scenarios": scenarios,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "warmstart_ms": ws_s * 1e3,
        "speedup": cold_s / warm_s,
        "cold_nfev": cold.nfev,
        "warmstart_nfev": ws.nfev,
    }


def bench_hierarchical(n, scenarios, maxiter=100, reps=2, seed=7):
    jobs = make_jobs(n, scenarios=scenarios)
    capacity = ClusterCapacity.of_replicas(int(3.2 * n))
    objective = make_objective("fairsum")

    def solve(cache):
        return solve_hierarchical(
            jobs, capacity, objective, groups=10, maxiter=maxiter, seed=seed,
            table_cache=cache,
        )

    cold_s, cold = _timed(lambda: solve(UtilityTableCache(maxsize=0)), reps)
    shared = UtilityTableCache()
    solve(shared)  # prime
    warm_s, warm = _timed(lambda: solve(shared), reps)
    assert np.array_equal(cold.allocation.replicas, warm.allocation.replicas)
    assert abs(cold.allocation.objective_value - warm.allocation.objective_value) <= 1e-9
    return {
        "solver": "hier-cobyla-G10",
        "jobs": n,
        "scenarios": scenarios,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "speedup": cold_s / warm_s,
    }


def run_hotpath():
    points = [
        bench_flat(10, 140, "cobyla", maxiter=1000),
        bench_flat(50, 140, "cobyla", maxiter=100),
        bench_flat(20, 560, "greedy", maxiter=0),
        bench_flat(50, 280, "greedy", maxiter=0),
        bench_hierarchical(100, 140),
        bench_hierarchical(200, 140),
        # The COBYLA wall: at 200 jobs a truncated (maxiter=300, unclamped)
        # COBYLA already takes seconds; at 1000 jobs a converged solve takes
        # minutes (embedded reference).  pgd solves both flat.
        bench_pgd_flat(200, cobyla_maxiter=300),
        bench_pgd_flat(1000, cobyla_ref=COBYLA_REF_1K),
    ]
    return points


def test_optimizer_hotpath(benchmark):
    points = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)

    rows = []
    for p in points:
        extra = (
            f" warm+x0={p['warmstart_ms']:.0f}ms nfev {p['cold_nfev']}->{p['warmstart_nfev']}"
            if "warmstart_ms" in p
            else ""
        )
        invariant = "cache hit == rebuild, bit-for-bit"
        if "cobyla_objective" in p:
            invariant = (
                f"cobyla={p['cobyla_ms']/1e3:.1f}s obj={p['cobyla_objective']:.2f} "
                f"vs pgd obj={p['objective']:.2f}"
            )
        rows.append(
            (
                f"{p['solver']}/{p['jobs']} jobs",
                invariant,
                f"cold={p['cold_ms']:.0f}ms warm={p['warm_ms']:.0f}ms "
                f"({p['speedup']:.1f}x){extra}",
            )
        )
    text = format_table(
        ["solver/scale", "invariant", "measured"],
        rows,
        title="== Optimizer hot path: cold vs warm utility-table cache ==",
    )
    write_result("optimizer_hotpath", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_optimizer.json").write_text(
        json.dumps({"points": points}, indent=2) + "\n"
    )

    # Where table construction is the dominant cycle cost (batched-eval
    # greedy; hierarchical solves at >= 100 jobs), the warm cache must be
    # at least 5x faster -- with solver results unchanged (asserted
    # bit-for-bit inside the bench helpers above).
    greedy = [p for p in points if p["solver"] == "greedy"]
    hier = [p for p in points if p["solver"].startswith("hier")]
    assert max(p["speedup"] for p in greedy) >= 5.0
    assert max(p["speedup"] for p in hier) >= 5.0
    # Warm starts never cost extra COBYLA iterations.
    for p in points:
        if "warmstart_nfev" in p and p["solver"] == "cobyla":
            assert p["warmstart_nfev"] <= p["cold_nfev"]
    # The ISSUE's pgd contract on every emitted point: objective within
    # gated_quality_tol of COBYLA's (relative to max(1, |cobyla|)) and the
    # warm solve at least gated_speedup faster than the COBYLA differential
    # (in-bench at 200 jobs, the embedded converged reference at 1000).
    pgd_points = [p for p in points if p["solver"] == "pgd"]
    assert pgd_points, "pgd points missing from the hot-path bench"
    for p in pgd_points:
        tol = p["gated_quality_tol"] * max(1.0, abs(p["cobyla_objective"]))
        assert p["objective"] >= p["cobyla_objective"] - tol
        assert p["cobyla_ms"] / p["warm_ms"] >= p["gated_speedup"]
