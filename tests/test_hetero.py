"""Heterogeneous (CPU/GPU-mix) extension tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import MDC, replicas_for_slo
from repro.core.utility import SLO
from repro.hetero import (
    CPU_SMALL,
    GPU_T4,
    GPU_V100,
    HeteroAllocation,
    HeteroCapacity,
    HeteroJob,
    HeteroProblem,
    ReplicaType,
    mixed_pool_latency,
    mixed_pool_stats,
    solve_hetero_allocation,
)

SLO_720 = SLO(target=0.72, percentile=99.0)


def job(name="job", rate=20.0, proc=0.18, priority=1.0, slo=SLO_720):
    return HeteroJob(name=name, slo=slo, proc_time=proc, arrival_rate=rate, priority=priority)


class TestReplicaType:
    def test_proc_time_scales_by_speedup(self):
        assert GPU_T4.proc_time(0.18) == pytest.approx(0.045)
        assert CPU_SMALL.proc_time(0.18) == pytest.approx(0.18)

    @pytest.mark.parametrize("speedup", [0.0, -1.0])
    def test_invalid_speedup(self, speedup):
        with pytest.raises(ValueError):
            ReplicaType(name="bad", speedup=speedup)

    def test_must_consume_resources(self):
        with pytest.raises(ValueError):
            ReplicaType(name="free", speedup=1.0, cpus=0.0, mem=0.0, accels=0.0)

    def test_invalid_proc_time(self):
        with pytest.raises(ValueError):
            GPU_T4.proc_time(0.0)


class TestHeteroCapacity:
    def test_fits(self):
        cap = HeteroCapacity(cpus=8, mem=16, accels=2)
        assert cap.fits(8, 16, 2)
        assert not cap.fits(8.5, 1, 0)
        assert not cap.fits(1, 1, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HeteroCapacity(cpus=-1, mem=1)


class TestMixedPoolStats:
    def test_homogeneous_pool(self):
        servers, proc = mixed_pool_stats({CPU_SMALL: 4}, 0.18)
        assert servers == 4
        assert proc == pytest.approx(0.18)

    def test_pure_gpu_pool(self):
        servers, proc = mixed_pool_stats({GPU_T4: 2}, 0.18)
        assert servers == 2
        assert proc == pytest.approx(0.045)

    def test_mixed_pool_preserves_total_rate(self):
        counts = {CPU_SMALL: 3, GPU_T4: 1}
        servers, proc = mixed_pool_stats(counts, 0.18)
        assert servers == 4
        # total rate = 3/0.18 + 4/0.18; effective rate = servers / proc.
        expected_rate = 3 / 0.18 + 4 / 0.18
        assert servers / proc == pytest.approx(expected_rate)

    def test_empty_pool(self):
        servers, proc = mixed_pool_stats({}, 0.18)
        assert servers == 0
        assert math.isinf(proc)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            mixed_pool_stats({CPU_SMALL: -1}, 0.18)


class TestMixedPoolLatency:
    def test_matches_homogeneous_mdc(self):
        lam, proc = 15.0, 0.18
        direct = MDC.estimate(0.99, lam, proc, 5)
        pooled = mixed_pool_latency(0.99, lam, proc, {CPU_SMALL: 5})
        assert pooled == pytest.approx(direct)

    def test_gpu_pool_is_faster(self):
        lam, proc = 15.0, 0.18
        cpu = mixed_pool_latency(0.99, lam, proc, {CPU_SMALL: 4})
        gpu = mixed_pool_latency(0.99, lam, proc, {GPU_T4: 4})
        assert gpu < cpu

    def test_empty_pool_is_inf(self):
        assert math.isinf(mixed_pool_latency(0.99, 1.0, 0.18, {}))

    def test_adding_any_replica_never_hurts(self):
        lam, proc = 25.0, 0.18
        base = mixed_pool_latency(0.99, lam, proc, {CPU_SMALL: 5})
        more = mixed_pool_latency(0.99, lam, proc, {CPU_SMALL: 5, GPU_T4: 1})
        assert more <= base


class TestHeteroProblemValidation:
    def test_rejects_duplicate_jobs(self):
        with pytest.raises(ValueError):
            HeteroProblem(
                [job("a"), job("a")], [CPU_SMALL], HeteroCapacity(cpus=8, mem=8)
            )

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            HeteroProblem([], [CPU_SMALL], HeteroCapacity(cpus=8, mem=8))
        with pytest.raises(ValueError):
            HeteroProblem([job()], [], HeteroCapacity(cpus=8, mem=8))

    def test_rejects_unusable_catalog(self):
        # GPU-only catalog but no accelerators in the cluster.
        with pytest.raises(ValueError):
            HeteroProblem([job()], [GPU_T4], HeteroCapacity(cpus=8, mem=8, accels=0))


class TestSolveHomogeneousReduction:
    def test_matches_capacity_planning(self):
        # With only CPU replicas the greedy solve should meet the SLO using
        # (close to) the replicas_for_slo count.
        j = job(rate=20.0)
        need = replicas_for_slo(MDC, 0.99, 20.0, 0.18, 0.72)
        problem = HeteroProblem([j], [CPU_SMALL], HeteroCapacity(cpus=32, mem=32))
        allocation = solve_hetero_allocation(problem)
        assert allocation.utilities["job"] == pytest.approx(1.0)
        assert need <= allocation.replicas("job") <= need + 1

    def test_min_one_replica_even_when_starved(self):
        jobs = [job(f"j{i}", rate=100.0) for i in range(4)]
        problem = HeteroProblem(jobs, [CPU_SMALL], HeteroCapacity(cpus=4, mem=4))
        allocation = solve_hetero_allocation(problem)
        for j in jobs:
            assert allocation.replicas(j.name) >= 1

    def test_infeasible_seed_raises(self):
        jobs = [job(f"j{i}") for i in range(8)]
        with pytest.raises(ValueError):
            solve_hetero_allocation(
                HeteroProblem(jobs, [CPU_SMALL], HeteroCapacity(cpus=4, mem=4))
            )


class TestSolveHeterogeneous:
    def test_respects_capacity(self):
        jobs = [job(f"j{i}", rate=30.0) for i in range(3)]
        cap = HeteroCapacity(cpus=16, mem=48, accels=2)
        problem = HeteroProblem(jobs, [CPU_SMALL, GPU_T4], cap)
        allocation = solve_hetero_allocation(problem)
        assert allocation.cpus_used <= cap.cpus + 1e-9
        assert allocation.mem_used <= cap.mem + 1e-9
        assert allocation.accels_used <= cap.accels + 1e-9

    def test_gpu_used_for_tight_slo(self):
        # SLO below the CPU processing time: only GPU replicas can meet it.
        tight = SLO(target=0.1, percentile=99.0)
        j = HeteroJob(name="tight", slo=tight, proc_time=0.18, arrival_rate=10.0)
        cap = HeteroCapacity(cpus=16, mem=64, accels=4)
        problem = HeteroProblem([j], [CPU_SMALL, GPU_T4], cap)
        allocation = solve_hetero_allocation(problem)
        assert allocation.counts["tight"].get("gpu-t4", 0) >= 1
        assert allocation.utilities["tight"] > 0.5

    def test_cpu_preferred_when_sufficient(self):
        # Loose SLO at low load: cheap CPU replicas suffice, accelerators
        # should not be burned.
        j = job(rate=4.0)
        cap = HeteroCapacity(cpus=16, mem=64, accels=4)
        problem = HeteroProblem([j], [CPU_SMALL, GPU_V100], cap)
        allocation = solve_hetero_allocation(problem)
        assert allocation.utilities["job"] == pytest.approx(1.0)
        assert allocation.accels_used == 0.0

    def test_priority_weighting(self):
        # Starved cluster: the high-priority job gets the lion's share.
        lo = job("lo", rate=40.0, priority=1.0)
        hi = job("hi", rate=40.0, priority=10.0)
        problem = HeteroProblem(
            [lo, hi], [CPU_SMALL], HeteroCapacity(cpus=10, mem=10)
        )
        allocation = solve_hetero_allocation(problem)
        assert allocation.replicas("hi") > allocation.replicas("lo")

    def test_total_utility_consistent(self):
        jobs = [job(f"j{i}", rate=10.0 + 5 * i) for i in range(3)]
        problem = HeteroProblem(jobs, [CPU_SMALL, GPU_T4], HeteroCapacity(16, 32, 2))
        allocation = solve_hetero_allocation(problem)
        assert allocation.total_utility == pytest.approx(
            sum(allocation.utilities.values())
        )
        assert isinstance(allocation, HeteroAllocation)

    @settings(max_examples=20, deadline=None)
    @given(
        rates=st.lists(st.floats(min_value=1.0, max_value=60.0), min_size=1, max_size=4),
        cpus=st.integers(min_value=8, max_value=48),
        accels=st.integers(min_value=0, max_value=4),
    )
    def test_invariants_hold(self, rates, cpus, accels):
        jobs = [job(f"j{i}", rate=r) for i, r in enumerate(rates)]
        cap = HeteroCapacity(cpus=cpus, mem=4 * cpus, accels=accels)
        problem = HeteroProblem(jobs, [CPU_SMALL, GPU_T4], cap)
        allocation = solve_hetero_allocation(problem)
        # Capacity respected, min-1 respected, utilities in [0, 1].
        assert allocation.cpus_used <= cap.cpus + 1e-9
        assert allocation.accels_used <= cap.accels + 1e-9
        for j in jobs:
            assert allocation.replicas(j.name) >= 1
            assert 0.0 <= allocation.utilities[j.name] <= 1.0
