"""Fig. 13: all Faro variants vs baselines -- lost utility and effective
utility at RS/SO/HO.

Paper shape: every Faro variant beats every baseline at RS and SO; cluster
utilities of Faro variants are similar; penalty variants do not improve
(effective) utility in a right-sized cluster; at HO, Sum/PenaltySum lead
and the *Fair* variants fall behind ("equitable division lowers cluster
utility when resources are short").
"""

import numpy as np

from benchmarks.conftest import ALL_POLICIES, write_result
from repro.experiments.report import format_table

PAPER_SO = {
    "fairshare": 2.42, "oneshot": 4.83, "aiad": 1.96, "mark": 2.02,
    "faro-fair": 0.80, "faro-sum": 0.92, "faro-fairsum": 0.79,
    "faro-penaltysum": 1.05, "faro-penaltyfairsum": 1.20,
}


def test_fig13_variants(benchmark, bench_cache):
    def run():
        stats = {}
        for size in ("RS", "SO", "HO"):
            stats[size] = {name: bench_cache.run(size, name) for name in ALL_POLICIES}
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for size in ("RS", "SO", "HO"):
        for name, st in stats[size].items():
            paper = PAPER_SO.get(name, "") if size == "SO" else ""
            rows.append(
                (
                    f"{size}/{name}",
                    paper,
                    f"lost={st.lost_utility_mean:.2f} lostEU={st.lost_effective_mean:.2f}",
                )
            )
    text = format_table(
        ["size/policy", "paper (SO lost)", "measured"],
        rows,
        title="== Fig. 13: Faro variants vs baselines (RS/SO/HO) ==",
    )
    write_result("fig13_variants", text)

    for size in ("RS", "SO"):
        lost = {n: s.lost_utility_mean for n, s in stats[size].items()}
        best_baseline = min(lost[b] for b in ("fairshare", "oneshot", "aiad", "mark"))
        faro_values = [lost[n] for n in lost if n.startswith("faro")]
        # Every Faro variant beats the best baseline at RS and SO.
        assert max(faro_values) <= best_baseline * 1.1
        # Faro variants land close to each other.
        assert max(faro_values) - min(faro_values) < 1.0
    # HO: the Sum-family leads the Fair-family (paper's §6.4 observation).
    ho = {n: s.lost_utility_mean for n, s in stats["HO"].items()}
    assert ho["faro-sum"] <= ho["faro-fair"] + 0.3
