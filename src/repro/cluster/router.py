"""Per-job Router: dispatch, queueing, drops, replica lifecycle.

One Router fronts each job (the paper runs it on the job's Ray head pod).
It (i) dispatches requests FIFO to the least-backlogged replica,
(ii) tail-drops requests once its queue exceeds a threshold (default 50,
returning HTTP 503 to the client), (iii) honours explicit drop directives
from the autoscaler (penalty variants), and (iv) manages replica cold
starts on scale-up and graceful draining on scale-down.

Implementation: a *virtual-time* router.  Because service is (near-)
deterministic and dispatch is FIFO/work-conserving, a request's start time
is fully determined at arrival: it runs on the replica that frees up
earliest.  The router therefore keeps a heap of per-replica free times
instead of simulating per-request events, which is exact for this
discipline and roughly an order of magnitude faster -- the property that
makes trace-driven, day-long multi-policy sweeps tractable in pure Python.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cluster.models import ModelProfile

__all__ = ["Replica", "RouterTotals", "JobRouter"]


@dataclass
class Replica:
    """Bookkeeping for one Ray Serve replica (worker pod)."""

    replica_id: int
    ready_at: float
    free_at: float
    served: int = 0
    active: bool = True


@dataclass
class RouterTotals:
    """Lifetime counters for one job's router."""

    arrivals: int = 0
    served: int = 0
    tail_dropped: int = 0
    explicit_dropped: int = 0
    failures: int = 0

    @property
    def dropped(self) -> int:
        return self.tail_dropped + self.explicit_dropped


class JobRouter:
    """Router + replica pool for a single inference job."""

    def __init__(
        self,
        job_name: str,
        model: ModelProfile,
        initial_replicas: int = 1,
        queue_threshold: int = 50,
        cold_start_range: tuple[float, float] = (50.0, 70.0),
        seed: int = 0,
    ) -> None:
        if initial_replicas < 0:
            raise ValueError(f"initial_replicas must be >= 0, got {initial_replicas}")
        if queue_threshold < 1:
            raise ValueError(f"queue_threshold must be >= 1, got {queue_threshold}")
        lo, hi = cold_start_range
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid cold_start_range {cold_start_range}")
        self.job_name = job_name
        self.model = model
        self.queue_threshold = queue_threshold
        self.cold_start_range = cold_start_range
        self.drop_rate = 0.0
        #: Effective processing time pushed by heterogeneous device pools;
        #: ``None`` (the homogeneous default) serves at the model's time.
        self.proc_time_override: float | None = None
        self.totals = RouterTotals()
        #: Dispatch-regime counters: requests resolved by the closed-form
        #: batch path vs the per-request scalar loop (observability only;
        #: never serialized into report digests).
        self.vector_requests = 0
        self.scalar_requests = 0
        self._rng = np.random.default_rng(seed)
        self._ids = itertools.count()
        self._replicas: dict[int, Replica] = {}
        self._free_heap: list[tuple[float, int]] = []
        # Start times of accepted-but-not-yet-started requests.  Starts are
        # assigned in nondecreasing order (FIFO + earliest-free dispatch), so
        # a deque with front-expiry gives the exact router queue length.
        self._pending_starts: deque[float] = deque()
        for _ in range(initial_replicas):
            self._add_replica(ready_at=0.0)

    # ----------------------------------------------------------- replicas

    def _add_replica(self, ready_at: float) -> Replica:
        replica = Replica(replica_id=next(self._ids), ready_at=ready_at, free_at=ready_at)
        self._replicas[replica.replica_id] = replica
        heapq.heappush(self._free_heap, (replica.free_at, replica.replica_id))
        return replica

    def _sample_cold_start(self) -> float:
        lo, hi = self.cold_start_range
        if hi == lo:
            return lo
        return float(self._rng.uniform(lo, hi))

    @property
    def replica_count(self) -> int:
        """Replicas that exist (running or still cold-starting)."""
        return len(self._replicas)

    def ready_replica_count(self, now: float) -> int:
        """Replicas past their cold start at time ``now``."""
        return sum(1 for r in self._replicas.values() if r.ready_at <= now)

    def scale_to(self, target: int, now: float) -> int:
        """Set the replica target; returns the applied delta.

        Scale-ups create replicas that become ready after a sampled cold
        start.  Scale-downs retire replicas gracefully: pods still cold-
        starting go first (latest ready time first), then the
        least-backlogged running replicas; in-flight work finishes.
        """
        if target < 0:
            raise ValueError(f"target must be >= 0, got {target}")
        delta = target - self.replica_count
        if delta > 0:
            for _ in range(delta):
                self._add_replica(ready_at=now + self._sample_cold_start())
        elif delta < 0:
            victims = self._pick_victims(-delta, now)
            for replica_id in victims:
                self._replicas[replica_id].active = False
                del self._replicas[replica_id]
        return delta

    def fail_replica(self, now: float) -> int | None:
        """Kill one uniformly random replica (fault injection).

        Returns the failed replica id, or ``None`` when the pool is empty.
        Work already assigned in virtual time completes (Ray Serve retries
        in-flight requests transparently); the first-order SLO effect of a
        failure is the capacity loss until reconciliation recreates the pod
        and it finishes a fresh cold start, which this models exactly.
        """
        if not self._replicas:
            return None
        victims = list(self._replicas)
        victim = int(victims[self._rng.integers(len(victims))])
        self._replicas[victim].active = False
        del self._replicas[victim]
        self.totals.failures += 1
        return victim

    def _pick_victims(self, count: int, now: float) -> list[int]:
        pending = [r for r in self._replicas.values() if r.ready_at > now and r.served == 0]
        pending.sort(key=lambda r: -r.ready_at)
        victims = [r.replica_id for r in pending[:count]]
        remaining = count - len(victims)
        if remaining > 0:
            running = [r for r in self._replicas.values() if r.replica_id not in victims]
            running.sort(key=lambda r: r.free_at)
            victims.extend(r.replica_id for r in running[:remaining])
        return victims

    # ------------------------------------------------------------ dispatch

    def queue_length(self, now: float) -> int:
        """Requests accepted but not yet started (the router queue)."""
        pending = self._pending_starts
        while pending and pending[0] <= now:
            pending.popleft()
        return len(pending)

    @property
    def proc_time(self) -> float:
        """Deterministic per-request service time currently in force."""
        if self.proc_time_override is not None:
            return self.proc_time_override
        return self.model.proc_time

    def _proc_time_sample(self) -> float:
        base = self.proc_time
        if self.model.proc_jitter == 0.0:
            return base
        jitter = self._rng.normal(1.0, self.model.proc_jitter)
        return base * min(max(jitter, 0.5), 1.5)

    def offer(self, arrival: float) -> float:
        """Offer one request at time ``arrival``.

        Returns the request latency in seconds, ``inf`` if dropped (tail
        drop or explicit drop directive -- both count as failed requests and
        are not retried, per the paper's load generator).
        """
        self.totals.arrivals += 1
        self.scalar_requests += 1
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.totals.explicit_dropped += 1
            return math.inf
        if not self._replicas:
            self.totals.tail_dropped += 1
            return math.inf
        if self.queue_length(arrival) >= self.queue_threshold:
            self.totals.tail_dropped += 1
            return math.inf
        # Pop stale heap entries until one matches a live replica's state.
        while self._free_heap:
            free_at, replica_id = self._free_heap[0]
            replica = self._replicas.get(replica_id)
            if replica is None or replica.free_at != free_at:
                heapq.heappop(self._free_heap)
                continue
            break
        else:
            self.totals.tail_dropped += 1
            return math.inf
        heapq.heappop(self._free_heap)
        start = max(arrival, replica.free_at, replica.ready_at)
        completion = start + self._proc_time_sample()
        replica.free_at = completion
        replica.served += 1
        heapq.heappush(self._free_heap, (completion, replica_id))
        if start > arrival:
            self._pending_starts.append(start)
        self.totals.served += 1
        return completion - arrival

    # ------------------------------------------------------- batch offers

    def offer_many(self, arrivals: np.ndarray) -> np.ndarray:
        """Offer a chunk of arrivals (nondecreasing times); returns latencies.

        Semantically identical to calling :meth:`offer` once per arrival in
        order -- bit-for-bit, including RNG consumption and post-chunk
        replica state (pinned by ``tests/test_sim_backends.py``).  Chunks
        whose randomness is *separable* -- proc-time jitter alone, or a
        drop directive alone -- pre-draw the chunk's random variates in
        one batch (consumed in exactly the scalar path's per-request draw
        order, with the generator rewound and replayed on a partial
        commit) and resolve dispatch with the closed-form recurrence;
        chunks that interleave outcome-dependent draws (jitter *and*
        drops together) fall back to the exact scalar loop.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        n = arrivals.shape[0]
        if n == 0:
            return np.empty(0)
        latencies = np.empty(n)
        offer = self.offer
        arrivals_list = None
        position = 0
        jitter = self.model.proc_jitter
        while position < n:
            if (
                n - position >= self._MIN_FAST_PREFIX
                and self.chunk_fast_preconditions(float(arrivals[position]))
            ):
                if arrivals_list is None:
                    arrivals_list = arrivals.tolist()
                if jitter != 0.0 and self.drop_rate == 0.0:
                    # Pre-draw the remaining chunk's jitter batch
                    # speculatively, resolve the whole suffix with the
                    # run-splitting kernel (which consumes one draw per
                    # *served* request -- the scalar draw order), then
                    # rewind and replay exactly the consumed draws so the
                    # generator lands bit-for-bit where the per-request
                    # loop would have left it.
                    remaining = n - position
                    rng_state = self._rng.bit_generator.state
                    draws = self._rng.normal(1.0, jitter, remaining)
                    procs = self.proc_time * np.minimum(
                        np.maximum(draws, 0.5), 1.5
                    )
                    chunk_latencies, drawn = self._offer_chunk_jitter(
                        remaining, arrivals_list, position, procs.tolist()
                    )
                    latencies[position:] = chunk_latencies
                    position = n
                    if drawn < remaining:
                        self._rng.bit_generator.state = rng_state
                        if drawn:
                            self._rng.normal(1.0, jitter, drawn)
                    continue
                fast = self._offer_chunk_fast(
                    arrivals[position:], arrivals_list, position
                )
                if fast is not None:
                    prefix_latencies, consumed = fast
                    latencies[position : position + consumed] = prefix_latencies
                    position += consumed
                    continue
            # A burst (or inseparable randomness) blocks batching here:
            # resolve a bounded block with the exact per-request loop, then
            # retry -- the pool usually drains again a few requests past
            # the burst.
            stop = min(position + self._SCALAR_BLOCK, n)
            if arrivals_list is None:
                arrivals_list = arrivals.tolist()
            while position < stop:
                latencies[position] = offer(arrivals_list[position])
                position += 1
        return latencies

    def chunk_fast_preconditions(self, first_arrival: float) -> bool:
        """Cheap (numpy-free) screen for the batch fast path.

        True only when the chunk starting at ``first_arrival`` has
        *separable* randomness -- at most one of {proc-time jitter, drop
        directive} is active, so one batch draw per chunk replays the
        scalar per-request draw order exactly -- and the router queue is
        empty before the first arrival, the regime where FIFO
        earliest-free dispatch has a closed per-replica-class form.
        Jitter *and* drops together interleave outcome-dependent draws
        (a uniform per arrival, then a normal only if served) that no
        fixed pair of batch draws can reproduce, so those chunks stay on
        the scalar loop.  Expires the consumed prefix of the
        pending-start deque exactly like the scalar path's first
        ``queue_length`` call would.
        """
        if not self._replicas:
            return False
        if self.drop_rate > 0.0 and self.model.proc_jitter != 0.0:
            return False
        pending = self._pending_starts
        while pending and pending[0] <= first_arrival:
            pending.popleft()
        return not pending

    #: Smallest no-wait prefix worth committing in one numpy pass; below
    #: this the batch bookkeeping costs more than it saves.
    _MIN_FAST_PREFIX = 12


    #: cuts the run: the chunk's draws are already batched, so even short
    #: runs amortize; below this the commit bookkeeping loses to the
    #: scalar loop and the chunk falls back for a block.
    _MIN_JITTER_COMMIT = 4

    #: Requests resolved per-request after a declined batch attempt before
    #: the fast path is retried (bounds retry overhead during bursts).
    _SCALAR_BLOCK = 32

    #: Pool size from which the closed-form recurrence runs as c-wide
    #: numpy rows; below it, per-row dispatch overhead loses to a plain
    #: Python scan (both compute identical IEEE doubles).
    _NUMPY_RECURRENCE_MIN_POOL = 12

    def _offer_chunk_fast(
        self,
        arrivals: np.ndarray,
        arrival_list: list[float] | None = None,
        offset: int = 0,
    ) -> tuple[np.ndarray, int] | None:
        """Closed-form routing of a chunk under deterministic service.

        Requires :meth:`chunk_fast_preconditions` (empty router queue at
        the first arrival; jitter-only chunks route to
        :meth:`_offer_chunk_jitter` instead).  With deterministic service
        the pop-min dispatch has exact structure: completions are
        nondecreasing, so the heap's pops are the sorted initial free
        times followed by completions in request order -- request ``k``
        is served by the ``k``-th smallest ``(free_at, id)`` replica for
        ``k < c`` and by the replica of request ``k - c`` afterwards, and

            ``start[k] = max(arrival[k], F[k])            (k < c)``
            ``start[k] = max(arrival[k], start[k-c] + p)  (k >= c)``

        which vectorizes across the ``c`` replica classes (one numpy row
        per ``c`` requests, using exactly the scalar path's floating-point
        operations, so engagement is bit-identical).  A drop directive is
        pre-drawn as one uniform batch in the scalar path's draw order --
        the scalar drop check precedes every accept check, so each
        arrival consumes exactly one uniform -- and the recurrence runs
        on the drop-thinned subsequence.  The chunk is committed up to
        the first tail-drop (computed from the vectorized queue lengths)
        or pop-order tie; on a partial commit the generator is rewound to
        the chunk entry state and replayed for exactly the committed
        draws, so the scalar continuation sees the identical stream.
        """
        replicas = list(self._replicas.values())
        count = len(replicas)
        proc = self.proc_time
        n = arrivals.shape[0]
        rng_state = None
        drop_mask = None
        kept = None
        if self.drop_rate > 0.0:
            rng_state = self._rng.bit_generator.state
            drop_mask = self._rng.random(n) < self.drop_rate
            kept = np.flatnonzero(~drop_mask)
            if kept.shape[0] == 0:
                # Whole chunk explicitly dropped: n uniforms consumed,
                # exactly as n scalar offers would have.
                self.totals.arrivals += n
                self.totals.explicit_dropped += n
                self.vector_requests += n
                return np.full(n, math.inf), n
            offered = arrivals[kept]
        else:
            offered = arrivals
        order = sorted(replicas, key=lambda r: (r.free_at, r.replica_id))
        frees = [replica.free_at for replica in order]
        # The recurrence costs one numpy row per c requests, so wide pools
        # amortize numpy dispatch and narrow pools are cheaper in plain
        # Python (identical IEEE ops either way -- max and + on float64).
        if count >= self._NUMPY_RECURRENCE_MIN_POOL:
            resolved = self._fast_starts_numpy(offered, frees, count, proc)
        elif kept is None:
            if arrival_list is None:
                arrival_list = arrivals.tolist()
                offset = 0
            resolved = self._fast_starts_python(
                offered, frees, count, proc, arrival_list, offset
            )
        else:
            # Drop-thinned chunks index a fancy-copied subsequence, so a
            # pre-built whole-chunk list does not line up with it.
            resolved = self._fast_starts_python(
                offered, frees, count, proc, offered.tolist(), 0
            )
        if resolved is None:
            if rng_state is not None:
                self._rng.bit_generator.state = rng_state
            return None
        starts, completions, served_prefix = resolved
        # ``served_prefix`` counts committed *offered* (non-drop-masked)
        # requests; map the cut back to raw-arrival coordinates.
        if kept is None:
            prefix = served_prefix
        else:
            prefix = int(kept[served_prefix]) if served_prefix < kept.shape[0] else n
        if prefix < self._MIN_FAST_PREFIX:
            if rng_state is not None:
                self._rng.bit_generator.state = rng_state
            return None
        if prefix < n and rng_state is not None:
            # Rewind and replay exactly the committed draws so the
            # generator lands where the scalar loop would leave it.
            self._rng.bit_generator.state = rng_state
            self._rng.random(prefix)
        self.totals.arrivals += prefix
        self.totals.served += served_prefix
        self.vector_requests += prefix
        if drop_mask is not None:
            self.totals.explicit_dropped += prefix - served_prefix
        for position, replica in enumerate(order):
            served = (served_prefix - position + count - 1) // count
            if served > 0:
                replica.served += served
                replica.free_at = float(
                    completions[position + (served - 1) * count]
                )
        # Rebuild the heap from live state: equivalent to the scalar heap
        # minus its lazily-deleted stale entries (pop order is the total
        # order on (free_at, id) either way).
        self._free_heap = [(replica.free_at, replica.replica_id) for replica in replicas]
        heapq.heapify(self._free_heap)
        if served_prefix:
            # Waiting starts still pending at the last dispatched arrival
            # feed the next queue_length calls, exactly as the scalar loop
            # would have left them (only accepted requests expire entries,
            # each at its own arrival time).
            last_arrival = offered[served_prefix - 1]
            dispatched = offered[:served_prefix]
            waiting = starts[(starts > dispatched) & (starts > last_arrival)]
            if waiting.shape[0]:
                self._pending_starts.extend(waiting.tolist())
        if kept is None:
            return completions - offered[:prefix], prefix
        latencies = np.full(prefix, math.inf)
        if served_prefix:
            latencies[kept[:served_prefix]] = completions - offered[:served_prefix]
        return latencies, prefix

    def _offer_chunk_jitter(
        self,
        n: int,
        arrival_list: list[float],
        offset: int,
        procs: list[float],
    ) -> tuple[np.ndarray, int]:
        """Exact run-splitting dispatch for jitter-only chunks.

        Resolves ``arrival_list[offset : offset + n]`` against the live
        pool in one pass.  Jittered service reorders completions, which
        breaks the single-sort closed form, so the scan works in *runs*:
        within a run, request ``i`` is served by the ``i``-th smallest
        ``(free_at, id)`` replica (``i < c``) or chains onto the run's
        completion ``i - c``; the run is provably the heap's pop order
        while its completions stay strictly increasing and each next
        initial free pops before the run's first completion.  When either
        condition fails, the run is committed to the replica objects, the
        pool re-sorted (exactly the scalar heap's live content), and the
        scan continues on a fresh run -- reproducing the heap's decisions
        and floats bit-for-bit without per-request heap traffic.
        Tail-drops are resolved inline from the global nondecreasing
        start sequence and consume no draw.  ``procs`` are the pre-drawn,
        pre-clipped jittered service times, consumed one per *served*
        request (the scalar draw order); returns ``(latencies,
        draws_consumed)`` so the caller can rewind/replay the generator
        to the exact scalar stream position.
        """
        threshold = self.queue_threshold
        sort_key = lambda r: (r.free_at, r.replica_id)  # noqa: E731
        pool = sorted(self._replicas.values(), key=sort_key)
        count = len(pool)
        frees = [replica.free_at for replica in pool]
        latencies = [0.0] * n
        starts: list[float] = []
        completions: list[float] = []
        append_start = starts.append
        append_completion = completions.append
        served_pointer = 0  # starts[:served_pointer] have begun by now
        run_start = 0       # completions[run_start:] belong to the run
        previous_completion = -math.inf
        accepted = 0
        draw_ptr = 0
        tail_dropped = 0
        index = 0
        while index < n:
            arrival = arrival_list[offset + index]
            while served_pointer < accepted and starts[served_pointer] <= arrival:
                served_pointer += 1
            if accepted - served_pointer >= threshold:
                latencies[index] = math.inf
                tail_dropped += 1
                index += 1
                continue
            position = accepted - run_start
            if position < count:
                if position and frees[position] >= completions[run_start]:
                    # This class replica would not pop before the run's
                    # completions: commit the run, re-sort, retry fresh.
                    self._commit_jitter_run(pool, frees, completions, run_start, position, count, sort_key)
                    run_start = accepted
                    previous_completion = -math.inf
                    continue
                base = frees[position]
            else:
                base = completions[accepted - count]
            start = arrival if arrival >= base else base
            completion = start + procs[draw_ptr]
            append_start(start)
            append_completion(completion)
            accepted += 1
            draw_ptr += 1
            latencies[index] = completion - arrival
            index += 1
            if completion <= previous_completion:
                # Out-of-order completion: this request's pop was still
                # exact (conditions checked above), but later pops are
                # not provable -- close the run behind it.
                self._commit_jitter_run(pool, frees, completions, run_start, accepted - run_start, count, sort_key)
                run_start = accepted
                previous_completion = -math.inf
            else:
                previous_completion = completion
        self._commit_jitter_run(pool, frees, completions, run_start, accepted - run_start, count, sort_key)
        self.totals.arrivals += n
        self.totals.served += accepted
        self.totals.tail_dropped += tail_dropped
        self.vector_requests += n
        self._free_heap = [
            (replica.free_at, replica.replica_id)
            for replica in self._replicas.values()
        ]
        heapq.heapify(self._free_heap)
        last_arrival = arrival_list[offset + n - 1]
        while served_pointer < accepted and starts[served_pointer] <= last_arrival:
            served_pointer += 1
        if served_pointer < accepted:
            self._pending_starts.extend(starts[served_pointer:])
        return np.asarray(latencies), draw_ptr

    @staticmethod
    def _commit_jitter_run(pool, frees, completions, run_start, length, count, sort_key):
        """Write one run's class assignments back and re-sort the pool.

        Replica at run position ``p`` served every run request with index
        ``p (mod c)``; its free time is its class's last completion
        (class chains are sequential per replica, so cross-class
        completion order does not matter here).  Mutates ``pool`` and
        ``frees`` in place.
        """
        if not length:
            return
        for position in range(min(length, count)):
            replica = pool[position]
            served = (length - position + count - 1) // count
            replica.served += served
            replica.free_at = completions[
                run_start + position + (served - 1) * count
            ]
        pool.sort(key=sort_key)
        frees[:] = [replica.free_at for replica in pool]

    def _fast_starts_numpy(self, arrivals, frees, count, proc):
        """Start/completion times via c-wide numpy rows (large pools).

        Returns ``(starts, completions, prefix)`` with the prefix cut at
        the first tail-drop or pop-order tie (the class structure is
        provably the heap's order only while completions are strictly
        increasing), or ``None`` when not even the first request has
        closed form.
        """
        n = arrivals.shape[0]
        rows = -(-n // count)
        padded = np.empty(rows * count)
        padded[:n] = arrivals
        padded[n:] = arrivals[-1]
        chunk = padded.reshape(rows, count)
        starts = np.empty_like(chunk)
        starts[0] = np.maximum(chunk[0], frees)
        for row in range(1, rows):
            starts[row] = np.maximum(chunk[row], starts[row - 1] + proc)
        starts = starts.reshape(-1)[:n]
        completions = starts + proc
        # Pop-order guards: every initial free must pop strictly before
        # the first completion, and completions must be strictly
        # increasing -- otherwise assignment falls to the heap's id
        # tie-break and the class structure above is not provably the
        # heap's order.  A tie cuts the commit before the offending
        # request.
        if frees[-1] >= completions[0]:
            return None
        if n > 1:
            increasing = completions[1:] > completions[:-1]
            if not increasing.all():
                n = int(np.argmin(increasing)) + 1
                starts = starts[:n]
                completions = completions[:n]
                arrivals = arrivals[:n]
        # Vectorized router-queue lengths: q[k] = waiting starts > a[k]
        # among requests 0..k-1 (starts are nondecreasing, so the count is
        # a prefix difference).  The first arrival over the threshold
        # tail-drops, which invalidates the recurrence past it: commit the
        # accepted prefix only.
        positions = np.arange(n)
        queued = positions - np.minimum(
            np.searchsorted(starts, arrivals, side="right"), positions
        )
        over = queued >= self.queue_threshold
        prefix = int(np.argmax(over)) if over.any() else n
        return starts[:prefix], completions[:prefix], prefix

    def _fast_starts_python(
        self, arrivals, frees, count, proc, arrival_list=None, offset=0
    ):
        """Start/completion times via a plain-Python scan (small pools).

        Same recurrence, same guards, same IEEE-double operations as
        :meth:`_fast_starts_numpy` -- ``max``/``+`` on Python floats and
        on float64 arrays round identically -- but without per-row numpy
        dispatch, which dominates when the pool is only a few replicas.
        ``arrival_list``/``offset`` index a pre-built whole-chunk list so
        retried attempts never re-convert the remaining suffix.
        """
        if arrival_list is None:
            arrival_list = arrivals.tolist()
            offset = 0
        n = arrivals.shape[0]
        threshold = self.queue_threshold
        last_free = frees[-1]
        starts: list[float] = []
        completions: list[float] = []
        append_start = starts.append
        append_completion = completions.append
        previous_completion = -math.inf
        served_pointer = 0  # starts[:served_pointer] have begun by now
        prefix = n
        for index in range(n):
            arrival = arrival_list[offset + index]
            base = frees[index] if index < count else completions[index - count]
            start = arrival if arrival >= base else base
            completion = start + proc
            if completion <= previous_completion:
                prefix = index  # pop-order tie: the heap's id tie-break rules
                break
            if index == 0 and last_free >= completion:
                return None
            while served_pointer < index and starts[served_pointer] <= arrival:
                served_pointer += 1
            if index - served_pointer >= threshold:
                prefix = index  # this arrival tail-drops; commit before it
                break
            append_start(start)
            append_completion(completion)
            previous_completion = completion
        return (
            np.asarray(starts),
            np.asarray(completions),
            prefix,
        )
