"""Multi-trial experiment execution and aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.kubernetes import ResourceQuota
from repro.experiments.policies import PredictorProfile, make_policy
from repro.experiments.scenarios import Scenario
from repro.sim.analytic import FlowSimulation
from repro.sim.recorder import SimulationResult
from repro.sim.simulation import Simulation, SimulationConfig

__all__ = ["TrialStats", "run_trials", "compare_policies"]


@dataclass
class TrialStats:
    """Mean/SD of the headline metrics over trials for one policy."""

    policy: str
    lost_utility_mean: float
    lost_utility_sd: float
    lost_effective_mean: float
    lost_effective_sd: float
    violation_rate_mean: float
    violation_rate_sd: float
    results: list[SimulationResult] = field(default_factory=list)

    @classmethod
    def from_results(cls, policy: str, results: list[SimulationResult]) -> "TrialStats":
        lost = np.array([r.avg_lost_cluster_utility for r in results])
        lost_eff = np.array([r.avg_lost_effective_utility for r in results])
        viol = np.array([r.cluster_slo_violation_rate for r in results])
        return cls(
            policy=policy,
            lost_utility_mean=float(lost.mean()),
            lost_utility_sd=float(lost.std()),
            lost_effective_mean=float(lost_eff.mean()),
            lost_effective_sd=float(lost_eff.std()),
            violation_rate_mean=float(viol.mean()),
            violation_rate_sd=float(viol.std()),
            results=results,
        )


def run_trials(
    scenario: Scenario,
    policy_name: str,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
    faro_overrides: dict | None = None,
    policy_factory=None,
    sim_overrides: dict | None = None,
) -> TrialStats:
    """Run one policy for several trials and aggregate its metrics.

    ``simulator`` selects the request-level simulator (the "cluster" proxy)
    or the analytic flow simulator ("flow").  ``policy_factory`` overrides
    policy construction (used by the ablation study); it receives
    ``(scenario, seed)``.  ``sim_overrides`` passes extra
    :class:`SimulationConfig` fields (e.g. ``cold_start_range``, ``faults``)
    through to each trial.
    """
    if simulator not in ("request", "flow"):
        raise ValueError(f"unknown simulator {simulator!r}")
    results = []
    for trial in range(trials):
        trial_seed = seed + 1000 * trial
        if policy_factory is not None:
            policy = policy_factory(scenario, trial_seed)
        else:
            policy = make_policy(
                policy_name,
                scenario,
                seed=trial_seed,
                predictor_profile=predictor_profile,
                faro_overrides=faro_overrides,
            )
        config = SimulationConfig(
            duration_minutes=scenario.duration_minutes,
            rate_scale=scenario.rate_scale,
            seed=trial_seed,
            **(sim_overrides or {}),
        )
        quota = ResourceQuota.of_replicas(scenario.total_replicas)
        sim_cls = Simulation if simulator == "request" else FlowSimulation
        simulation = sim_cls(
            scenario.jobs,
            scenario.eval_traces,
            policy,
            quota,
            config=config,
            history_prefix=scenario.history_prefix or None,
        )
        result = simulation.run()
        result.policy_name = getattr(policy, "name", policy_name)
        results.append(result)
    return TrialStats.from_results(policy_name, results)


def compare_policies(
    scenario: Scenario,
    policy_names: list[str],
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
) -> dict[str, TrialStats]:
    """Run several policies on the same scenario; returns stats per policy."""
    return {
        name: run_trials(
            scenario,
            name,
            trials=trials,
            simulator=simulator,
            seed=seed,
            predictor_profile=predictor_profile,
        )
        for name in policy_names
    }
