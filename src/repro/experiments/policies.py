"""Legacy policy factory, now a shim over the control-plane registry.

Policy construction lives in :mod:`repro.api.builtin`, where every Faro
variant, baseline, and controller registers itself on the
:class:`repro.api.PolicyRegistry` with a typed options schema.  This module
keeps the pieces the old harness API exposed:

- :func:`make_policy` -- **deprecated**; resolves through the registry
  (``repro.api.get_registry().build(...)`` is the replacement).
- ``ALL_FARO_VARIANTS`` / ``ALL_BASELINES`` -- derived from the registry
  (kinds ``"faro"`` and ``"baseline"`` in registration order), no longer
  hardcoded tuples.
- :class:`PredictorProfile` / :func:`train_predictors` -- the shared
  predictor-training budget and cache, used by the registry builders.

Policy names:

- Faro variants: ``faro-sum``, ``faro-fair``, ``faro-fairsum``,
  ``faro-penaltysum``, ``faro-penaltyfairsum`` (all hybrid: long-term
  predictive + short-term reactive).
- Baselines: ``fairshare``, ``oneshot``, ``aiad``, ``mark``, ``cilantro``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.experiments.scenarios import Scenario
from repro.forecast.nhits import NHiTSConfig, NHiTSForecaster
from repro.policy import AutoscalePolicy

__all__ = [
    "ALL_FARO_VARIANTS",
    "ALL_BASELINES",
    "PredictorProfile",
    "train_predictors",
    "make_policy",
]


@dataclass(frozen=True)
class PredictorProfile:
    """Training budget for per-job N-HiTS predictors.

    The 'fast' profile keeps bench suites quick; 'paper' approaches the
    paper's <10-minute training budget.
    """

    epochs: int = 6
    max_windows: int = 1024
    input_size: int = 16
    horizon: int = 8
    hidden: int = 48

    @classmethod
    def fast(cls) -> "PredictorProfile":
        return cls()

    @classmethod
    def paper(cls) -> "PredictorProfile":
        return cls(epochs=20, max_windows=4096, hidden=64)


_PREDICTOR_CACHE: dict[tuple, dict[str, NHiTSForecaster]] = {}


def _training_digest(scenario: Scenario) -> str:
    """Content digest of the training inputs (job names + train traces).

    The cache used to key on ``scenario.name``, which silently served
    stale forecasters when two differently-parameterized scenarios shared
    a display name (e.g. the same ``ScenarioSpec.name`` override across
    runs in one process).  Keying on the actual training bytes makes a hit
    bit-identical to retraining, which the sharded sweep executor's
    differential tests rely on: a fresh worker process (empty cache) and a
    long-lived serial process (warm cache) must produce the same results.
    """
    hasher = hashlib.sha256()
    for name in scenario.job_names:
        hasher.update(name.encode())
        trace = np.ascontiguousarray(np.asarray(scenario.train_traces[name], dtype=float))
        hasher.update(trace.tobytes())
    return hasher.hexdigest()


def train_predictors(
    scenario: Scenario, profile: PredictorProfile | None = None, seed: int = 0
) -> dict[str, NHiTSForecaster]:
    """Train (or fetch cached) probabilistic N-HiTS forecasters per job.

    Models are trained on each job's training days in requests/minute units;
    the returned forecasters are shared -- wrap them in
    :class:`ForecastWorkloadPredictor` per policy.  The cache key is a
    content digest of the training traces, so a hit is guaranteed to match
    what retraining would produce.
    """
    profile = profile or PredictorProfile.fast()
    key = (_training_digest(scenario), profile, seed)
    if key in _PREDICTOR_CACHE:
        return _PREDICTOR_CACHE[key]
    forecasters: dict[str, NHiTSForecaster] = {}
    for index, name in enumerate(scenario.job_names):
        config = NHiTSConfig(
            input_size=profile.input_size,
            horizon=profile.horizon,
            hidden=profile.hidden,
            epochs=profile.epochs,
            max_windows=profile.max_windows,
            probabilistic=True,
            loss="nll",
            seed=seed + index,
        )
        forecaster = NHiTSForecaster(config)
        forecaster.fit(scenario.train_traces[name])
        forecasters[name] = forecaster
    _PREDICTOR_CACHE[key] = forecasters
    return forecasters


def _registry():
    """The default policy registry with built-ins registered.

    Submodule imports on purpose: they stay correct even when this runs
    mid-way through ``repro.experiments``/``repro.api`` package init.
    """
    import repro.api.builtin  # noqa: F401  (registration side effects)
    import repro.api.registry

    return repro.api.registry.get_registry()


def __getattr__(name: str):
    # The paper's canonical policy lists, derived from the registry so
    # plugins and built-ins share one catalog (PEP 562 module attributes).
    if name == "ALL_FARO_VARIANTS":
        return _registry().names(kind="faro")
    if name == "ALL_BASELINES":
        return _registry().names(kind="baseline")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_policy(
    name: str,
    scenario: Scenario,
    seed: int = 0,
    predictor_profile: PredictorProfile | None = None,
    faro_overrides: dict | None = None,
) -> AutoscalePolicy:
    """Instantiate a policy by name for a scenario.

    .. deprecated::
        Use ``repro.api.get_registry().build(name, scenario, ...)`` (or a
        :class:`repro.api.PolicySpec` through :func:`repro.api.run`).  This
        shim maps the legacy keyword arguments onto registry options,
        ignoring ones the policy does not accept -- the old factory's
        behaviour.  The typed spec path is strict instead.
    """
    registry = _registry()
    info = registry.get(name)
    supported = {field_name for field_name, _ in info.option_fields()}
    options: dict = {}
    if predictor_profile is not None and "predictor_profile" in supported:
        options["predictor_profile"] = predictor_profile
    if faro_overrides and "faro" in supported:
        options["faro"] = dict(faro_overrides)
    return registry.build(name, scenario, seed=seed, options=options)
