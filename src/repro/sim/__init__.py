"""Trace-driven simulation of the Ray Serve | Kubernetes stack (paper §6.4).

All simulators are *backends* behind one shared control harness
(:class:`~repro.sim.harness.SimHarness`) and one registry
(:mod:`repro.sim.backends`), mirroring the policy registry on the control
plane:

- ``request`` (:mod:`repro.sim.simulation`) -- the high-fidelity
  request-level simulator ("cluster deployment" stand-in): Poisson
  arrivals from traces, per-request routing/queueing/drops (numpy
  batch-offered), replica cold starts.
- ``flow`` (:mod:`repro.sim.analytic`) -- a fast fluid/flow simulator
  ("matched simulation" stand-in) that advances per-job queue lengths
  analytically; used for large sweeps (Fig. 15, Table 8 at 100 jobs) and
  for the paper's cluster-vs-simulation ranking comparison (Table 7).
- ``hybrid`` (:mod:`repro.sim.hybrid`) -- flagged jobs at request level,
  the rest analytic, one shared quota and policy loop.

:mod:`repro.sim.engine` provides the heap-based discrete-event engine;
:mod:`repro.sim.lifecycle` builds the event-driven replica lifecycle
(cold starts, drains, exact Poisson faults) on top of it.
"""

from repro.sim.engine import EventLoop
from repro.sim.workload import PoissonArrivals
from repro.sim.recorder import JobSeries, SimulationResult
from repro.sim.harness import SimHarness
from repro.sim.lifecycle import EventFaultProcess, ReplicaLifecycle
from repro.sim.simulation import RequestBackendOptions, Simulation, SimulationConfig
from repro.sim.analytic import FlowSimulation
from repro.sim.hybrid import HybridBackendOptions, HybridSimulation
from repro.sim.backends import (
    SimBackendInfo,
    SimBackendRegistry,
    get_backend_registry,
    register_backend,
)

__all__ = [
    "EventLoop",
    "PoissonArrivals",
    "JobSeries",
    "SimulationResult",
    "SimHarness",
    "ReplicaLifecycle",
    "EventFaultProcess",
    "Simulation",
    "SimulationConfig",
    "RequestBackendOptions",
    "FlowSimulation",
    "HybridSimulation",
    "HybridBackendOptions",
    "SimBackendInfo",
    "SimBackendRegistry",
    "get_backend_registry",
    "register_backend",
]
