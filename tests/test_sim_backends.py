"""Backend-architecture tests: registry, typed options, lifecycle, batching.

Covers the pluggable-simulation seam: the :class:`SimBackendRegistry`
behaves like the policy registry (case-insensitive names, aliases, loud
unknown-option failures), the vectorized request path is bit-identical to
per-request offers, the event-driven replica lifecycle reproduces the
list-based bookkeeping it replaced, and the flow simulator now honours
``SimulationConfig.faults`` (which it previously ignored silently).
"""

import math
import warnings
from dataclasses import dataclass

import numpy as np
import pytest

from repro.cluster.job import InferenceJobSpec
from repro.cluster.kubernetes import ResourceQuota
from repro.cluster.metrics import MetricsCollector
from repro.cluster.models import RESNET34, ModelProfile
from repro.cluster.router import JobRouter
from repro.core.utility import SLO
from repro.sim import (
    FlowSimulation,
    HybridBackendOptions,
    HybridSimulation,
    PoissonArrivals,
    ReplicaLifecycle,
    RequestBackendOptions,
    SimBackendInfo,
    SimBackendRegistry,
    Simulation,
    SimulationConfig,
    get_backend_registry,
)
from repro.sim.faults import FaultConfig, make_fault_injector
from repro.sim.harness import SimHarness
from repro.sim.lifecycle import EventFaultProcess
from tests.test_simulation import StaticPolicy


# ---------------------------------------------------------------- registry


class TestBackendRegistry:
    def test_builtins_registered(self):
        registry = get_backend_registry()
        assert registry.names() == ("request", "flow", "hybrid")
        assert registry.get("request").cls is Simulation
        assert registry.get("flow").cls is FlowSimulation
        assert registry.get("hybrid").cls is HybridSimulation

    def test_aliases_and_case_insensitivity(self):
        registry = get_backend_registry()
        assert registry.get("analytic-flow").name == "flow"
        assert registry.get("Request-Level").name == "request"
        assert "ANALYTIC" in registry

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            get_backend_registry().get("hardware")

    def test_unknown_options_fail_loudly(self):
        registry = get_backend_registry()
        with pytest.raises(ValueError, match="unknown option"):
            registry.parse_options("hybrid", {"request_job": ["a"]})  # typo
        with pytest.raises(ValueError, match="accepts no options"):
            registry.parse_options("flow", {"anything": 1})

    def test_parse_options_typed(self):
        registry = get_backend_registry()
        options = registry.parse_options("hybrid", {"request_jobs": ["a", "b"]})
        assert isinstance(options, HybridBackendOptions)
        assert options.request_jobs == ("a", "b")
        # An already-typed instance passes through unchanged.
        assert registry.parse_options("hybrid", options) is options
        assert registry.parse_options("request", None) == RequestBackendOptions()

    def test_register_unregister_roundtrip(self):
        registry = SimBackendRegistry()

        @dataclass(frozen=True)
        class Options:
            knob: int = 1

        @registry.register("toy", description="toy", config_type=Options,
                           fidelity="test", aliases=("plaything",))
        class ToyBackend(SimHarness):
            options_type = Options

        assert registry.get("plaything").cls is ToyBackend
        assert registry.parse_options("toy", {"knob": 3}).knob == 3
        with pytest.raises(ValueError, match="already registered"):
            registry.register("TOY")(ToyBackend)
        registry.unregister("toy")
        assert "toy" not in registry and "plaything" not in registry

    def test_option_fields_for_docs(self):
        info = get_backend_registry().get("hybrid")
        assert dict(info.option_fields()) == {
            "request_jobs": (),
            "auto_request_jobs": 0,
            "promote_headroom": None,
            "demote_headroom": None,
            "min_dwell_ticks": 3,
        }

    def test_config_type_must_be_dataclass(self):
        registry = SimBackendRegistry()
        with pytest.raises(TypeError, match="dataclass"):
            registry.add(
                SimBackendInfo(name="x", description="", cls=SimHarness,
                               config_type=int)
            )


# ------------------------------------------------------- config validation


class TestSimulationConfigValidation:
    def test_cold_start_range_ordering(self):
        with pytest.raises(ValueError, match="cold_start_range"):
            SimulationConfig(cold_start_range=(70.0, 50.0))

    def test_cold_start_range_negative(self):
        with pytest.raises(ValueError, match="cold_start_range"):
            SimulationConfig(cold_start_range=(-1.0, 5.0))

    def test_cold_start_range_wrong_arity(self):
        with pytest.raises(ValueError, match="pair"):
            SimulationConfig(cold_start_range=(1.0, 2.0, 3.0))

    def test_cold_start_range_list_canonicalized(self):
        config = SimulationConfig(cold_start_range=[5, 9])
        assert config.cold_start_range == (5.0, 9.0)

    def test_faults_require_explicit_duration(self):
        with pytest.raises(ValueError, match="duration_minutes"):
            SimulationConfig(faults=FaultConfig())

    def test_faults_mapping_coerced(self):
        config = SimulationConfig(
            duration_minutes=10,
            faults={"mttf_seconds": 120.0, "seed": 3, "process": "event"},
        )
        assert isinstance(config.faults, FaultConfig)
        assert config.faults.process == "event"

    def test_unknown_fault_process_rejected(self):
        with pytest.raises(ValueError, match="fault process"):
            FaultConfig(process="psychic")


# ------------------------------------------------------ vectorized routing


def _mk_router(jitter, replicas=4, seed=0, drop_rate=0.0, threshold=50):
    router = JobRouter(
        job_name="svc",
        model=ModelProfile(name="m", proc_time=0.18, proc_jitter=jitter),
        initial_replicas=replicas,
        queue_threshold=threshold,
        cold_start_range=(0.0, 0.0),
        seed=seed,
    )
    router.drop_rate = drop_rate
    return router

def _router_state(router, now):
    return {
        "replicas": {
            rid: (r.ready_at, r.free_at, r.served, r.active)
            for rid, r in router._replicas.items()
        },
        "queue": router.queue_length(now),
        "totals": (
            router.totals.arrivals,
            router.totals.served,
            router.totals.tail_dropped,
            router.totals.explicit_dropped,
        ),
        "rng": router._rng.bit_generator.state,
    }


def _chunked_arrivals(rpm, minutes, seed, tick=10.0):
    stream = PoissonArrivals(np.full(minutes, float(rpm)), seed=seed)
    chunks, now, end = [], 0.0, minutes * 60.0
    while now < end - 1e-9:
        now = min(now + tick, end)
        chunks.append(np.asarray(stream.take_until(now), dtype=float))
    return chunks


class TestOfferManyBitIdentity:
    """offer_many == sequential offer, state and all, on every regime."""

    @pytest.mark.parametrize(
        "rpm,replicas,jitter,drop_rate",
        [
            (120, 4, 0.0, 0.0),    # underloaded, fast path engages
            (900, 3, 0.0, 0.0),    # saturating: waiting -> scalar recurrence
            (2400, 1, 0.0, 0.0),   # overload: tail drops at the threshold
            (300, 4, 0.05, 0.0),   # jittered service: RNG per request
            (300, 4, 0.0, 0.25),   # explicit drop directive: RNG per request
            (600, 2, 0.05, 0.1),   # everything at once
        ],
    )
    def test_differential(self, rpm, replicas, jitter, drop_rate):
        scalar = _mk_router(jitter, replicas, seed=7, drop_rate=drop_rate)
        batch = _mk_router(jitter, replicas, seed=7, drop_rate=drop_rate)
        chunks = _chunked_arrivals(rpm, minutes=4, seed=11)
        now = 0.0
        for chunk in chunks:
            now += 10.0
            expected = np.array([scalar.offer(t) for t in chunk.tolist()])
            got = batch.offer_many(chunk)
            np.testing.assert_array_equal(expected, got)
            assert _router_state(scalar, now) == _router_state(batch, now)

    def test_fast_path_engages_when_underloaded(self):
        router = _mk_router(jitter=0.0, replicas=4)
        chunk = np.arange(1.0, 17.0)  # 16 spaced arrivals, no waiting
        assert router.chunk_fast_preconditions(1.0)
        latencies, consumed = router._offer_chunk_fast(chunk)
        assert consumed == 16
        # Exactly the scalar path's arithmetic: (arrival + proc) - arrival.
        np.testing.assert_array_equal(latencies, (chunk + 0.18) - chunk)

    def test_fast_path_handles_waiting_in_batch(self):
        router = _mk_router(jitter=0.0, replicas=1)
        # 16 spaced arrivals, then a burst that must queue (but not drop):
        # the whole chunk still resolves in one closed-form pass.
        chunk = np.concatenate([np.arange(1.0, 17.0), np.array([17.0, 17.01])])
        latencies, consumed = router._offer_chunk_fast(chunk)
        assert consumed == 18
        assert latencies[-1] > 0.18  # the burst's second request waited

    def test_fast_path_commits_only_up_to_first_tail_drop(self):
        router = _mk_router(jitter=0.0, replicas=1, threshold=4)
        # A dense burst overflows the queue threshold mid-chunk.
        chunk = np.concatenate([np.arange(1.0, 17.0), 17.0 + np.arange(8) * 0.001])
        fast = router._offer_chunk_fast(chunk)
        assert fast is not None
        _, consumed = fast
        assert consumed < chunk.shape[0]  # stopped at the first drop
        # The scalar continuation drops that request, exactly as the
        # differential test asserts wholesale.

    def test_fast_path_declines_randomness_and_queue(self):
        # Separable randomness (jitter alone, drops alone) batch-draws and
        # stays on the fast path; jitter AND drops interleave
        # outcome-dependent draws and must stay scalar...
        assert _mk_router(jitter=0.05).chunk_fast_preconditions(1.0)
        assert _mk_router(jitter=0.0, drop_rate=0.5).chunk_fast_preconditions(1.0)
        assert not _mk_router(jitter=0.05, drop_rate=0.5).chunk_fast_preconditions(1.0)
        # ...as does a non-empty router queue at the first arrival.
        router = _mk_router(jitter=0.0, replicas=1)
        router.offer(1.0)
        router.offer(1.01)  # queued behind the first request
        assert not router.chunk_fast_preconditions(1.05)
        # A short drop-bound chunk is not worth a batch commit.
        saturated = _mk_router(jitter=0.0, replicas=1, threshold=2)
        assert saturated._offer_chunk_fast(np.array([1.0, 1.001, 1.002])) is None

    def test_empty_chunk(self):
        router = _mk_router(jitter=0.0)
        assert router.offer_many(np.empty(0)).shape == (0,)

    def test_mid_run_scale_down_keeps_identity(self):
        scalar = _mk_router(jitter=0.0, replicas=4, seed=3)
        batch = _mk_router(jitter=0.0, replicas=4, seed=3)
        chunks = _chunked_arrivals(400, minutes=3, seed=5)
        for index, chunk in enumerate(chunks):
            if index == 6:
                scalar.scale_to(2, now=60.0)
                batch.scale_to(2, now=60.0)
            for t in chunk.tolist():
                scalar.offer(t)
            batch.offer_many(chunk)
        assert _router_state(scalar, 180.0) == _router_state(batch, 180.0)


class TestRecordManyBitIdentity:
    def _collector(self):
        return MetricsCollector(
            job_name="svc", slo=SLO(target=0.72, percentile=99.0), proc_time=0.18
        )

    def test_matches_sequential_record(self):
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0.0, 240.0, 500))
        latencies = rng.uniform(0.1, 1.5, 500)
        latencies[rng.random(500) < 0.1] = math.inf  # drops
        scalar, batch = self._collector(), self._collector()
        for arrival, latency in zip(arrivals.tolist(), latencies.tolist()):
            scalar.record(arrival, latency)
        batch.record_many(arrivals, latencies)
        assert scalar._bins.keys() == batch._bins.keys()
        for index in scalar._bins:
            a, b = scalar._bins[index], batch._bins[index]
            assert (a.arrivals, a.drops, a.violations) == (
                b.arrivals, b.drops, b.violations,
            )
            assert a.latencies == b.latencies
            assert a.proc_time_sum == b.proc_time_sum  # bit-exact, not approx
        for minute in range(4):
            assert scalar.minute_stats(minute) == batch.minute_stats(minute)

    def test_empty_batch_is_noop(self):
        collector = self._collector()
        collector.record_many(np.empty(0), np.empty(0))
        assert collector._bins == {}


class TestTakeUntilArray:
    def test_matches_list_variant(self):
        a = PoissonArrivals(np.full(3, 200.0), seed=9)
        b = PoissonArrivals(np.full(3, 200.0), seed=9)
        now = 0.0
        for _ in range(18):
            now += 10.0
            taken = a.take_until(now)
            array = b.take_until_array(now)
            assert array.dtype == float
            np.testing.assert_array_equal(np.asarray(taken), array)
        assert a.generated == b.generated


# ----------------------------------------------------- event-driven lifecycle


class TestReplicaLifecycle:
    def _lifecycle(self, ready=2, cold=(30.0, 30.0), seed=0):
        return ReplicaLifecycle(cold, np.random.default_rng(seed), initial_ready=ready)

    def test_cold_start_promotes_on_advance(self):
        lifecycle = self._lifecycle()
        lifecycle.scale_to(4, now=0.0)
        assert (lifecycle.ready, lifecycle.starting) == (2, 2)
        lifecycle.advance(29.0)
        assert lifecycle.ready == 2
        lifecycle.advance(30.0)
        assert (lifecycle.ready, lifecycle.starting) == (4, 0)
        assert lifecycle.cold_starts_completed == 2

    def test_scale_down_cancels_latest_cold_start_first(self):
        lifecycle = self._lifecycle(ready=1, cold=(10.0, 50.0), seed=4)
        lifecycle.scale_to(4, now=0.0)
        times = sorted(lifecycle.pending_ready_times())
        lifecycle.scale_to(3, now=1.0)  # cancels the latest ready time
        assert sorted(lifecycle.pending_ready_times()) == times[:-1]
        assert lifecycle.cold_starts_cancelled == 1
        # Tombstoned events firing later must not resurrect the replica.
        lifecycle.advance(100.0)
        assert lifecycle.ready == 1 + 2

    def test_scale_down_past_pending_retires_ready(self):
        lifecycle = self._lifecycle(ready=3)
        lifecycle.scale_to(1, now=0.0)
        assert (lifecycle.ready, lifecycle.starting) == (1, 0)

    def test_fail_kills_ready_first_then_cold_starting(self):
        lifecycle = self._lifecycle(ready=2)
        lifecycle.scale_to(3, now=0.0)
        # Demand beyond the ready pool spills into cold-starting replicas
        # (the request-level fail_replica kills those too), so a sampled
        # failure count over the existing pool is always fully applied.
        assert lifecycle.fail(5) == 3
        assert (lifecycle.ready, lifecycle.starting) == (0, 0)
        assert lifecycle.failures == 3
        # A killed cold start must not resurrect when its event fires.
        lifecycle.advance(100.0)
        assert lifecycle.ready == 0

    def test_matches_legacy_list_bookkeeping(self):
        """Drop-in equivalence with the pending-list the flow sim used."""
        rng_a = np.random.default_rng(12)
        rng_b = np.random.default_rng(12)
        lifecycle = ReplicaLifecycle((10.0, 70.0), rng_a, initial_ready=3)

        running, pending = 3, []
        def legacy_scale(target, now):
            nonlocal running
            current = running + len(pending)
            if target > current:
                for _ in range(target - current):
                    pending.append(now + float(rng_b.uniform(10.0, 70.0)))
            elif target < current:
                shrink = current - target
                pending.sort()
                while shrink > 0 and pending:
                    pending.pop()
                    shrink -= 1
                running = max(running - shrink, 0)
        def legacy_promote(now):
            nonlocal running
            ready = [t for t in pending if t <= now]
            running += len(ready)
            pending[:] = [t for t in pending if t > now]

        schedule = [(5.0, 6), (20.0, 2), (40.0, 8), (90.0, 3), (130.0, 5)]
        now = 0.0
        for until, target in schedule:
            while now < until:
                now += 10.0
                lifecycle.advance(now)
                legacy_promote(now)
                assert (lifecycle.ready, lifecycle.starting) == (running, len(pending))
            lifecycle.scale_to(target, now)
            legacy_scale(target, now)
            assert sorted(lifecycle.pending_ready_times()) == sorted(pending)


class TestEventFaultProcess:
    def test_deterministic_given_seed(self):
        a = EventFaultProcess(FaultConfig(mttf_seconds=100.0, seed=5, process="event"))
        b = EventFaultProcess(FaultConfig(mttf_seconds=100.0, seed=5, process="event"))
        assert [a.sample("j", 10, 30.0) for _ in range(50)] == [
            b.sample("j", 10, 30.0) for _ in range(50)
        ]

    def test_poisson_mean(self):
        process = EventFaultProcess(FaultConfig(mttf_seconds=1000.0, seed=1))
        total = sum(process.sample("j", 10, 10.0) for _ in range(2000))
        # 2000 ticks x 10 replicas x 10 s / 1000 s MTTF = 200 expected.
        assert 150 < total < 260
        assert process.total_failures == total

    def test_work_carries_across_ticks(self):
        """Sub-threshold ticks accumulate instead of being re-rolled.

        Same accumulated replica-time in one call or a thousand crosses the
        same exponential thresholds (replica count large enough that the
        per-call kill cap never binds).
        """
        burst = EventFaultProcess(FaultConfig(mttf_seconds=5000.0, seed=2))
        dribble = EventFaultProcess(FaultConfig(mttf_seconds=5000.0, seed=2))
        a = burst.sample("j", 200, 1000.0)
        b = sum(dribble.sample("j", 200, 1.0) for _ in range(1000))
        assert a > 0
        assert a == b  # same replica-time -> same threshold crossings

    def test_reset_and_validation(self):
        process = EventFaultProcess(FaultConfig(mttf_seconds=1.0, seed=3))
        process.sample("j", 5, 10.0)
        assert process.total_failures > 0
        process.reset()
        assert process.total_failures == 0
        with pytest.raises(ValueError):
            process.sample("j", -1, 1.0)
        with pytest.raises(ValueError):
            process.sample("j", 1, -1.0)
        assert process.sample("j", 0, 10.0) == 0

    def test_factory_selects_process(self):
        from repro.sim.faults import FaultInjector

        assert isinstance(make_fault_injector(FaultConfig()), FaultInjector)
        assert isinstance(
            make_fault_injector(FaultConfig(process="event")), EventFaultProcess
        )


# ----------------------------------------------------------- flow sim faults


def _run_flow(faults, minutes=20, replicas=3, rpm=600.0, seed=0):
    jobs = [InferenceJobSpec.with_default_slo("a", RESNET34)]
    traces = {"a": np.full(minutes, rpm)}
    from repro.baselines.fairshare import FairSharePolicy

    config = SimulationConfig(
        duration_minutes=minutes, seed=seed, faults=faults,
        cold_start_range=(20.0, 20.0),
    )
    sim = FlowSimulation(
        jobs, traces, FairSharePolicy(total_replicas=replicas),
        ResourceQuota.of_replicas(replicas), config=config,
        initial_replicas={"a": replicas},
    )
    return sim.run()


class TestFlowSimulatorFaults:
    """Regression: ``SimulationConfig.faults`` used to be silently ignored."""

    def test_failures_recorded_in_metadata(self):
        result = _run_flow(FaultConfig(mttf_seconds=60.0, seed=1))
        assert result.metadata["total_failures"] > 0
        assert result.metadata["failures_injected"]["a"] > 0

    def test_fault_free_metadata_absent(self):
        result = _run_flow(None)
        assert "total_failures" not in result.metadata

    def test_faults_degrade_fixed_allocation(self):
        clean = _run_flow(None)
        faulty = _run_flow(FaultConfig(mttf_seconds=120.0, seed=3))
        assert faulty.metadata["total_failures"] > 0
        assert (
            faulty.cluster_slo_violation_rate > clean.cluster_slo_violation_rate
        )

    def test_event_process_in_flow(self):
        result = _run_flow(FaultConfig(mttf_seconds=60.0, seed=2, process="event"))
        assert result.metadata["total_failures"] > 0

    def test_event_process_in_request_sim(self):
        jobs = [InferenceJobSpec.with_default_slo("a", RESNET34)]
        traces = {"a": np.full(12, 300.0)}
        config = SimulationConfig(
            duration_minutes=12, seed=0, cold_start_range=(10.0, 10.0),
            faults=FaultConfig(mttf_seconds=60.0, seed=1, process="event"),
        )
        sim = Simulation(
            jobs, traces, StaticPolicy({"a": 4}), ResourceQuota.of_replicas(4),
            config=config, initial_replicas={"a": 4},
        )
        result = sim.run()
        assert result.metadata["total_failures"] > 0

    def test_legacy_flow_without_faults_unchanged(self):
        """The fault path must be a strict no-op when faults is None."""
        a = _run_flow(None, seed=5)
        b = _run_flow(None, seed=5)
        for name in a.jobs:
            np.testing.assert_array_equal(a.jobs[name].violations, b.jobs[name].violations)


# ------------------------------------------------------- entry-point plugins


class _FakeEntryPoint:
    def __init__(self, name, target):
        self.name = name
        self._target = target

    def load(self):
        return self._target


class TestEntryPointPlugins:
    def test_plugins_load_into_both_registries(self, monkeypatch):
        from repro import api

        registered = []

        def register_fake_policy():
            @api.register_policy("ep-test-policy", kind="plugin",
                                 description="from entry point")
            def build(scenario, seed, options):  # pragma: no cover - not built
                raise NotImplementedError

            registered.append("policy")

        def register_fake_backend():
            @api.register_backend("ep-test-backend", description="from entry point")
            class EPBackend(SimHarness):
                pass

            registered.append("backend")

        def fake_entry_points(group=None):
            return {
                "repro_faro.policies": [
                    _FakeEntryPoint("ep-policy", register_fake_policy)
                ],
                "repro_faro.sim_backends": [
                    _FakeEntryPoint("ep-backend", register_fake_backend)
                ],
            }.get(group, [])

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points", fake_entry_points)
        try:
            loaded = api.load_entry_point_plugins()
            assert loaded == (
                "repro_faro.policies:ep-policy",
                "repro_faro.sim_backends:ep-backend",
            )
            assert registered == ["policy", "backend"]
            assert "ep-test-policy" in api.get_registry()
            assert "ep-test-backend" in api.get_backend_registry()
        finally:
            if "ep-test-policy" in api.get_registry():
                api.get_registry().unregister("ep-test-policy")
            if "ep-test-backend" in api.get_backend_registry():
                api.get_backend_registry().unregister("ep-test-backend")

    def test_broken_plugin_warns_and_skips(self, monkeypatch):
        from repro import api

        def explode():
            raise RuntimeError("kaboom")

        def fake_entry_points(group=None):
            if group == "repro_faro.policies":
                return [_FakeEntryPoint("broken", explode)]
            return []

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points", fake_entry_points)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = api.load_entry_point_plugins()
        assert loaded == ()
        assert any("kaboom" in str(w.message) for w in caught)


# -------------------------------------------------------------- spec fields


class TestSpecBackendFields:
    def test_backend_alias_key(self):
        from repro import api

        data = {
            "name": "x",
            "scenarios": [{"kind": "paper", "params": {"size": 8, "num_jobs": 2}}],
            "policies": [{"name": "fairshare"}],
            "backend": "hybrid",
            "backend_options": {"auto_request_jobs": 1},
        }
        spec = api.ExperimentSpec.from_dict(data)
        assert spec.simulator == "hybrid"
        assert spec.backend_options == {"auto_request_jobs": 1}

    def test_conflicting_backend_keys_rejected(self):
        from repro import api

        data = {
            "name": "x",
            "scenarios": [{"kind": "paper", "params": {}}],
            "policies": [{"name": "fairshare"}],
            "simulator": "flow",
            "backend": "request",
        }
        with pytest.raises(ValueError, match="aliases"):
            api.ExperimentSpec.from_dict(data)

    def test_backend_options_roundtrip(self):
        from repro import api

        spec = api.ExperimentSpec.compare(
            "x",
            api.ScenarioSpec(kind="paper", params={"size": 8, "num_jobs": 2}),
            ["fairshare"],
            simulator="hybrid",
            backend_options={"request_jobs": ("job00-azure",)},
        )
        data = spec.to_dict()
        assert data["backend_options"] == {"request_jobs": ["job00-azure"]}
        assert api.ExperimentSpec.from_dict(data) == spec

    def test_empty_backend_options_not_serialized(self):
        """Legacy specs keep byte-identical to_dict output."""
        from repro import api

        spec = api.ExperimentSpec.compare(
            "x",
            api.ScenarioSpec(kind="paper", params={"size": 8, "num_jobs": 2}),
            ["fairshare"],
        )
        assert "backend_options" not in spec.to_dict()

    def test_simulator_accepts_registered_aliases(self):
        from repro import api

        spec = api.ExperimentSpec.compare(
            "x",
            api.ScenarioSpec(kind="paper", params={"size": 8, "num_jobs": 2}),
            ["fairshare"],
            simulator="analytic-flow",
        )
        assert spec.simulator == "analytic-flow"  # stored verbatim

    def test_bad_backend_options_fail_before_any_simulation(self):
        from repro import api

        spec = api.ExperimentSpec.compare(
            "x",
            api.ScenarioSpec(kind="paper", params={"size": 8, "num_jobs": 2}),
            ["fairshare"],
            simulator="hybrid",
            backend_options={"request_jobz": ["a"]},
        )
        events = []
        with pytest.raises(ValueError, match="unknown option"):
            api.run(spec, progress=events.append)
        assert events == []

    def test_simulators_attr_derived_from_registry(self):
        from repro.api import spec as spec_module

        assert spec_module._SIMULATORS == ("request", "flow", "hybrid")


# ---------------------------------------------------------- hybrid backend


def _hybrid_sim(options, minutes=6, seed=0):
    jobs = [InferenceJobSpec.with_default_slo(f"j{i}", RESNET34) for i in range(3)]
    traces = {
        "j0": np.full(minutes, 100.0),
        "j1": np.full(minutes, 400.0),
        "j2": np.full(minutes, 250.0),
    }
    return HybridSimulation(
        jobs,
        traces,
        StaticPolicy({f"j{i}": 2 for i in range(3)}),
        ResourceQuota.of_replicas(6),
        config=SimulationConfig(
            duration_minutes=minutes, seed=seed, cold_start_range=(0.0, 0.0)
        ),
        initial_replicas={f"j{i}": 2 for i in range(3)},
        options=options,
    )


class TestHybridBackend:
    def test_split_recorded_in_metadata(self):
        result = _hybrid_sim(HybridBackendOptions(request_jobs=("j1",))).run()
        assert result.metadata["simulator"] == "hybrid"
        assert result.metadata["request_jobs"] == ["j1"]
        assert result.metadata["flow_jobs"] == ["j0", "j2"]

    def test_auto_selection_picks_busiest(self):
        sim = _hybrid_sim(HybridBackendOptions(auto_request_jobs=2))
        assert [job.name for job in sim.request_jobs] == ["j1", "j2"]

    def test_unknown_request_job_rejected(self):
        with pytest.raises(ValueError, match="unknown job"):
            _hybrid_sim(HybridBackendOptions(request_jobs=("ghost",)))

    def test_all_flow_and_all_request_degenerate_cases(self):
        all_flow = _hybrid_sim(HybridBackendOptions()).run()
        assert all_flow.metadata["request_jobs"] == []
        all_request = _hybrid_sim(
            HybridBackendOptions(request_jobs=("j0", "j1", "j2"))
        ).run()
        assert all_request.metadata["flow_jobs"] == []

    def test_deterministic_given_seed(self):
        options = HybridBackendOptions(request_jobs=("j1",))
        a = _hybrid_sim(options, seed=9).run()
        b = _hybrid_sim(options, seed=9).run()
        for name in a.jobs:
            np.testing.assert_array_equal(a.jobs[name].arrivals, b.jobs[name].arrivals)
            np.testing.assert_array_equal(
                a.jobs[name].violations, b.jobs[name].violations
            )

    def test_flow_jobs_unaffected_by_which_jobs_are_flagged(self):
        """A job's analytic stream is stable across fidelity splits."""
        a = _hybrid_sim(HybridBackendOptions(request_jobs=("j1",)), seed=2).run()
        b = _hybrid_sim(HybridBackendOptions(request_jobs=("j0", "j1")), seed=2).run()
        np.testing.assert_array_equal(a.jobs["j2"].arrivals, b.jobs["j2"].arrivals)
        np.testing.assert_array_equal(a.jobs["j2"].violations, b.jobs["j2"].violations)

    def test_request_half_matches_pure_request_sim_shape(self):
        result = _hybrid_sim(HybridBackendOptions(request_jobs=("j1",))).run()
        series = result.jobs["j1"]
        # Poisson counts, not fluid: integer arrivals near the trace rate.
        assert series.total_arrivals == pytest.approx(400 * 6, rel=0.15)

    def test_faults_span_both_halves(self):
        jobs = [InferenceJobSpec.with_default_slo(name, RESNET34) for name in ("a", "b")]
        traces = {"a": np.full(20, 300.0), "b": np.full(20, 300.0)}
        sim = HybridSimulation(
            jobs, traces, StaticPolicy({"a": 3, "b": 3}),
            ResourceQuota.of_replicas(6),
            config=SimulationConfig(
                duration_minutes=20, seed=0, cold_start_range=(5.0, 5.0),
                faults=FaultConfig(mttf_seconds=60.0, seed=1),
            ),
            initial_replicas={"a": 3, "b": 3},
            options=HybridBackendOptions(request_jobs=("a",)),
        )
        result = sim.run()
        injected = result.metadata["failures_injected"]
        assert injected.get("a", 0) > 0  # request half
        assert injected.get("b", 0) > 0  # flow half
