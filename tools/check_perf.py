#!/usr/bin/env python
"""Perf regression gate for the optimizer hot path.

Re-runs the allocation hot-path micro-benchmark
(``benchmarks/bench_optimizer_hotpath.py``) in-process and compares the
warm-cache / warm-start solve timings against the checked-in baseline
(``results/BENCH_optimizer.json``).  A point regresses when its measured
time exceeds ``baseline * (1 + tolerance)``.

Run next to the tier-1 verify command:

    PYTHONPATH=src python -m pytest -x -q          # correctness
    PYTHONPATH=src python tools/check_perf.py      # performance

Exit codes: 0 = within tolerance, 1 = regression, 2 = bad invocation.
``--write`` refreshes the baseline file with the new measurements (do this
deliberately, on the machine class the baseline describes).  The default
tolerance is generous (75%) because wall-clock micro-benchmarks are noisy;
a real regression -- losing the warm cache or warm starts -- is a
multiple, not a percentage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Timing metrics gated per benchmark point (cold_ms is tracked but not
#: gated: it measures the deliberately-uncached path, which is allowed to
#: drift as table construction grows features).
GATED_METRICS = ("warm_ms", "warmstart_ms")


def _ensure_import_paths() -> None:
    for entry in (REPO_ROOT, REPO_ROOT / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))


def load_baseline(path: Path) -> dict[tuple[str, int], dict]:
    data = json.loads(path.read_text())
    points = data.get("points")
    if not isinstance(points, list) or not points:
        raise ValueError(f"{path} has no benchmark points")
    return {(p["solver"], int(p["jobs"])): p for p in points}


def compare(
    baseline: dict[tuple[str, int], dict],
    measured: list[dict],
    tolerance: float,
) -> tuple[list[tuple], bool]:
    """Rows of (point, metric, baseline_ms, measured_ms, verdict); ok flag."""
    rows = []
    ok = True
    compared = 0
    measured_keys = set()
    for point in measured:
        key = (point["solver"], int(point["jobs"]))
        measured_keys.add(key)
        base = baseline.get(key)
        label = f"{key[0]}/{key[1]} jobs"
        if base is None:
            rows.append((label, "-", "-", "-", "NEW (no baseline)"))
            continue
        for metric in GATED_METRICS:
            if metric not in point or metric not in base:
                continue
            compared += 1
            budget = base[metric] * (1.0 + tolerance)
            passed = point[metric] <= budget
            ok = ok and passed
            rows.append(
                (
                    label,
                    metric,
                    f"{base[metric]:.1f}ms",
                    f"{point[metric]:.1f}ms",
                    "ok" if passed else f"REGRESSED (> {budget:.1f}ms)",
                )
            )
    # A baseline point the bench no longer produces means the gate lost
    # coverage -- that must fail loudly, not silently shrink the check.
    for key in sorted(set(baseline) - measured_keys):
        ok = False
        rows.append((f"{key[0]}/{key[1]} jobs", "-", "present", "-", "MISSING from run"))
    if compared == 0:
        ok = False
        rows.append(("(none)", "-", "-", "-", "NO POINTS COMPARED"))
    return rows, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "results" / "BENCH_optimizer.json",
        help="baseline JSON (default: results/BENCH_optimizer.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.75,
        help="allowed fractional slowdown per gated metric (default 0.75)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="refresh the baseline file with the new measurements",
    )
    args = parser.parse_args(argv)

    if args.tolerance < 0:
        print("error: tolerance must be >= 0", file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(
            f"error: baseline {args.baseline} not found; run the bench once "
            "(pytest benchmarks/bench_optimizer_hotpath.py) or pass --baseline",
            file=sys.stderr,
        )
        return 2

    try:
        baseline = load_baseline(args.baseline)
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2

    _ensure_import_paths()
    from benchmarks.bench_optimizer_hotpath import run_hotpath

    print(f"running optimizer hot-path bench (baseline: {args.baseline}) ...")
    measured = run_hotpath()

    rows, ok = compare(baseline, measured, args.tolerance)
    from repro.experiments.report import format_table

    print()
    print(
        format_table(
            ["point", "metric", "baseline", "measured", "verdict"],
            rows,
            title=f"== Optimizer hot-path perf gate (tolerance {args.tolerance:.0%}) ==",
        )
    )

    if args.write:
        args.baseline.write_text(json.dumps({"points": measured}, indent=2) + "\n")
        print(f"\nwrote new baseline to {args.baseline}")

    if not ok:
        print(
            "\nFAIL: warm-path timings regressed beyond tolerance "
            "(or the gate lost baseline coverage)",
            file=sys.stderr,
        )
        return 1
    print("\nOK: warm-path timings within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
