"""Serve specs: an experiment spec plus online-serving options.

A :class:`ServeSpec` is an :class:`~repro.api.spec.ExperimentSpec` (what
to run) paired with :class:`ServeOptions` (how to serve it).  Spec files
carry the serving block under a top-level ``"serve"`` key next to the
usual experiment keys::

    {
      "version": 1,
      "name": "replay-serve",
      "scenarios": [...], "policies": [...],
      "serve": {"window_minutes": 5}
    }

A file without a ``"serve"`` key loads with default options, so any
existing experiment spec can be served as-is.  The experiment half is
*the* experiment: ``repro.api.serve(spec)`` must produce a report
byte-identical to ``repro.api.run(spec.experiment)``, so the digest of
the serve run's merged report is the experiment spec's digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.api.spec import ExperimentSpec, _check_keys

__all__ = ["ServeOptions", "ServeSpec", "serve_digest"]


@dataclass(frozen=True)
class ServeOptions:
    """How a spec is served: windows, pacing, degradation, streaming.

    ``tick_deadline_s`` enables graceful degradation: a solve that takes
    longer (or raises) holds the previous allocation and backs off for
    ``backoff_ticks`` ticks, doubling up to ``max_backoff_ticks`` while
    failures persist.  ``None`` (the default) disables the deadline --
    required for digest-pinned replays, where only a solver *exception*
    can trigger degradation.

    ``realtime`` paces the loop against the wall clock at
    ``realtime_speedup`` virtual seconds per wall second; accelerated
    (virtual-clock) serving is the default.  ``stream`` configures a
    :class:`~repro.serve.cursor.TailingFileCursor` over a live CSV
    (keys: ``path``, optional ``job``, ``horizon_minutes``); omitted, the
    scenario's own traces replay through a
    :class:`~repro.serve.cursor.ReplayCursor`.
    """

    window_minutes: int = 15
    tick_deadline_s: float | None = None
    backoff_ticks: int = 1
    max_backoff_ticks: int = 8
    checkpoint_ticks: int | None = None
    realtime: bool = False
    realtime_speedup: float = 1.0
    poll_seconds: float = 1.0
    stream: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.window_minutes < 1:
            raise ValueError(
                f"window_minutes must be >= 1, got {self.window_minutes}"
            )
        if self.tick_deadline_s is not None and self.tick_deadline_s <= 0:
            raise ValueError(
                f"tick_deadline_s must be positive, got {self.tick_deadline_s}"
            )
        if self.backoff_ticks < 1:
            raise ValueError(f"backoff_ticks must be >= 1, got {self.backoff_ticks}")
        if self.max_backoff_ticks < self.backoff_ticks:
            raise ValueError(
                f"max_backoff_ticks ({self.max_backoff_ticks}) must be >= "
                f"backoff_ticks ({self.backoff_ticks})"
            )
        if self.checkpoint_ticks is not None and self.checkpoint_ticks < 1:
            raise ValueError(
                f"checkpoint_ticks must be >= 1, got {self.checkpoint_ticks}"
            )
        if self.realtime_speedup <= 0:
            raise ValueError(
                f"realtime_speedup must be positive, got {self.realtime_speedup}"
            )
        if self.poll_seconds <= 0:
            raise ValueError(f"poll_seconds must be positive, got {self.poll_seconds}")
        if self.stream is not None:
            stream = dict(self.stream)
            _check_keys(stream, {"path", "job", "horizon_minutes"}, "serve stream")
            if not stream.get("path"):
                raise ValueError("serve stream requires a 'path'")
            object.__setattr__(self, "stream", stream)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "window_minutes": self.window_minutes,
            "tick_deadline_s": self.tick_deadline_s,
            "backoff_ticks": self.backoff_ticks,
            "max_backoff_ticks": self.max_backoff_ticks,
            "checkpoint_ticks": self.checkpoint_ticks,
            "realtime": self.realtime,
            "realtime_speedup": self.realtime_speedup,
            "poll_seconds": self.poll_seconds,
        }
        if self.stream is not None:
            data["stream"] = dict(self.stream)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeOptions":
        _check_keys(
            data,
            {
                "window_minutes",
                "tick_deadline_s",
                "backoff_ticks",
                "max_backoff_ticks",
                "checkpoint_ticks",
                "realtime",
                "realtime_speedup",
                "poll_seconds",
                "stream",
            },
            "serve options",
        )
        kwargs = dict(data)
        if "stream" in kwargs and kwargs["stream"] is not None:
            kwargs["stream"] = dict(kwargs["stream"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ServeSpec:
    """One online-serving run: an experiment plus its serving options."""

    experiment: ExperimentSpec
    serve: ServeOptions = field(default_factory=ServeOptions)

    def to_dict(self) -> dict[str, Any]:
        data = self.experiment.to_dict()
        data["serve"] = self.serve.to_dict()
        return data

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, spec_dir: str | None = None
    ) -> "ServeSpec":
        rest = dict(data)
        serve_block = rest.pop("serve", None) or {}
        experiment = ExperimentSpec.from_dict(rest)
        if spec_dir is not None:
            experiment = replace(experiment, spec_dir=spec_dir)
        return cls(experiment=experiment, serve=ServeOptions.from_dict(serve_block))

    @classmethod
    def from_file(cls, path: str | Path) -> "ServeSpec":
        """Load from JSON/YAML; a missing ``serve`` block means defaults."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() in (".yaml", ".yml"):
            import yaml

            data = yaml.safe_load(text)
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON in {path}: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ValueError(f"spec file {path} must contain a mapping")
        return cls.from_dict(data, spec_dir=str(path.parent.resolve()))

    def to_file(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def serve_digest(spec: ServeSpec) -> str:
    """Content digest of a serve spec, for journal compatibility checks.

    Mirrors :func:`repro.api.parallel.spec_digest`: canonical JSON when
    serializable, pickle bytes otherwise (journals are same-machine
    artifacts).
    """
    import pickle

    try:
        payload = json.dumps(spec.to_dict(), sort_keys=True).encode()
    except TypeError:
        payload = pickle.dumps(spec)
    return hashlib.sha256(payload).hexdigest()
