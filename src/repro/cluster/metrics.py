"""Metrics collection (the paper's modified Ray Router exports, §5).

Per job the collector aggregates request outcomes into fixed-size time bins
(default 15 s) holding arrivals, drops, SLO violations and latency samples.
From the bins it derives:

- recent observations for the control loop (:meth:`observation`),
- per-minute arrival-rate history for time-series predictors
  (:meth:`rate_history`), and
- per-minute evaluation series (violation rate, p99 latency, utility) for
  the experiment reports (:meth:`minute_stats`).

Dropped requests count as SLO violations with infinite latency, matching
the paper's metric definitions (§6 "Metrics").
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field

import numpy as np

from repro.core.utility import SLO, inverse_utility

__all__ = ["MinuteStats", "MetricsCollector"]


@dataclass
class _Bin:
    arrivals: int = 0
    drops: int = 0
    violations: int = 0
    latencies: list[float] = field(default_factory=list)
    proc_time_sum: float = 0.0


@dataclass(frozen=True)
class MinuteStats:
    """Aggregated per-minute evaluation numbers for one job."""

    minute: int
    arrivals: int
    drops: int
    violations: int
    latency_p: float
    violation_rate: float
    utility: float
    effective_utility: float


class MetricsCollector:
    """Aggregates one job's request stream into time bins."""

    def __init__(
        self,
        job_name: str,
        slo: SLO,
        proc_time: float,
        bin_seconds: float = 15.0,
        alpha: float = 1.0,
        history_prefix: np.ndarray | None = None,
    ) -> None:
        if bin_seconds <= 0:
            raise ValueError(f"bin_seconds must be positive, got {bin_seconds}")
        self.job_name = job_name
        self.slo = slo
        self.proc_time = proc_time
        self.bin_seconds = bin_seconds
        self.alpha = alpha
        # Arrival rates (requests/second, one per minute, most recent last)
        # observed *before* t=0 -- seeds predictors so early control cycles
        # are not blinded by an empty history.
        self.history_prefix = (
            np.asarray(history_prefix, dtype=float) if history_prefix is not None else None
        )
        self._bins: dict[int, _Bin] = {}
        #: Synthetic per-minute rates (requests/second) for minutes this
        #: collector never observed -- seeded by the hybrid backend when a
        #: job is promoted to request fidelity mid-run, so predictors are
        #: not blinded by the empty pre-promotion history.  Consulted by
        #: :meth:`rate_history` only where no real bins exist; never
        #: contributes to :meth:`minute_stats` or observations.
        self._rate_backfill: dict[int, float] = {}

    # ------------------------------------------------------------- record

    def record(self, arrival_time: float, latency: float, proc_time: float | None = None) -> None:
        """Record one request outcome (``latency = inf`` for drops)."""
        index = int(arrival_time // self.bin_seconds)
        bin_ = self._bins.setdefault(index, _Bin())
        bin_.arrivals += 1
        if math.isinf(latency):
            bin_.drops += 1
            bin_.violations += 1
            return
        if latency > self.slo.target:
            bin_.violations += 1
        bin_.latencies.append(latency)
        bin_.proc_time_sum += proc_time if proc_time is not None else self.proc_time

    def record_many(self, arrival_times, latencies) -> None:
        """Record a batch of request outcomes (``inf`` latency = drop).

        Bit-identical to calling :meth:`record` once per request in order
        (pinned by ``tests/test_sim_backends.py``): counts are exact, bin
        latency lists receive the same values in the same order, and the
        per-bin ``proc_time_sum`` is accumulated with the same sequential
        additions (one per served request, in order) so not even
        floating-point rounding can differ.
        """
        arrival_times = np.asarray(arrival_times, dtype=float)
        latencies = np.asarray(latencies, dtype=float)
        n = arrival_times.shape[0]
        if n == 0:
            return
        indices = (arrival_times // self.bin_seconds).astype(np.int64)
        # Arrivals come in nondecreasing time order, so equal bins form
        # contiguous runs; processing runs in order preserves the exact
        # per-bin append/accumulate order of the scalar path.  (Out-of-order
        # input still lands in the right bins -- later runs of a repeated
        # bin just append after earlier ones, as record() would.)
        boundaries = np.flatnonzero(indices[1:] != indices[:-1]) + 1
        run_starts = [0, *boundaries.tolist()]
        run_ends = [*boundaries.tolist(), n]
        slo_target = self.slo.target
        proc_time = self.proc_time
        for start, end in zip(run_starts, run_ends):
            bin_ = self._bins.setdefault(int(indices[start]), _Bin())
            count = end - start
            bin_.arrivals += count
            window = latencies[start:end]
            # inf > target is True, so this counts drops and slow requests
            # in one comparison (record() counts a drop as a violation).
            bin_.violations += int(np.count_nonzero(window > slo_target))
            drops = int(np.count_nonzero(np.isinf(window)))
            if drops:
                bin_.drops += drops
                window = window[np.isfinite(window)]
            served = window.shape[0]
            if served:
                bin_.latencies.extend(window.tolist())
                # Repeated addition is not multiplication in floating
                # point: accumulate exactly as record() would have.
                total = bin_.proc_time_sum
                for _ in range(served):
                    total += proc_time
                bin_.proc_time_sum = total

    # -------------------------------------------------------- observation

    def _bins_in(self, start: float, end: float) -> list[_Bin]:
        first = int(start // self.bin_seconds)
        last = int(math.ceil(end / self.bin_seconds))
        return [self._bins[i] for i in range(first, last) if i in self._bins]

    def window_latency_percentile(self, start: float, end: float) -> float:
        """SLO-percentile latency over [start, end); drops count as inf."""
        bins = self._bins_in(start, end)
        latencies: list[float] = []
        drops = 0
        for bin_ in bins:
            latencies.extend(bin_.latencies)
            drops += bin_.drops
        total = len(latencies) + drops
        if total == 0:
            return 0.0
        rank = self.slo.quantile * total
        if rank > len(latencies):
            return math.inf
        ordered = np.sort(np.asarray(latencies))
        index = min(max(int(math.ceil(rank)) - 1, 0), len(ordered) - 1)
        return float(ordered[index])

    def observation_fields(self, start: float, end: float) -> dict:
        """Raw aggregates over [start, end) for building JobObservation."""
        bins = self._bins_in(start, end)
        arrivals = sum(b.arrivals for b in bins)
        drops = sum(b.drops for b in bins)
        violations = sum(b.violations for b in bins)
        served = arrivals - drops
        proc_sum = sum(b.proc_time_sum for b in bins)
        duration = max(end - start, 1e-9)
        return {
            "arrival_rate": arrivals / duration,
            "latency": self.window_latency_percentile(start, end),
            "slo_violation_rate": violations / arrivals if arrivals else 0.0,
            "mean_proc_time": proc_sum / served if served else self.proc_time,
            "drop_rate": drops / arrivals if arrivals else 0.0,
        }

    def rate_history(self, now: float, minutes: int) -> np.ndarray:
        """Per-minute arrival rates (requests/second) for the last ``minutes``.

        This is the series fed to time-series predictors; requests/second
        units keep it consistent with the optimizer's latency models.
        """
        if minutes < 1:
            raise ValueError(f"minutes must be >= 1, got {minutes}")
        bins_per_minute = max(int(round(60.0 / self.bin_seconds)), 1)
        current_minute = int(now // 60.0)
        rates = np.zeros(minutes)
        prefix = self.history_prefix
        for offset in range(minutes):
            minute = current_minute - minutes + offset
            if minute < 0:
                if prefix is not None and prefix.shape[0] + minute >= 0:
                    rates[offset] = prefix[prefix.shape[0] + minute]
                continue
            first_bin = minute * bins_per_minute
            total = sum(
                self._bins[first_bin + k].arrivals
                for k in range(bins_per_minute)
                if (first_bin + k) in self._bins
            )
            if total == 0 and minute in self._rate_backfill:
                rates[offset] = self._rate_backfill[minute]
            else:
                rates[offset] = total / 60.0
        return rates

    def backfill_rate_history(self, minute_rates: dict[int, float]) -> None:
        """Seed per-minute rates (requests/second) for unobserved minutes.

        Hybrid fidelity promotion calls this with the offered trace rates
        of the minutes the job spent on the analytic side, so
        :meth:`rate_history` stays informative across the fidelity switch.
        Backfill never overrides minutes with real recorded bins.
        """
        for minute, rate in minute_rates.items():
            self._rate_backfill[int(minute)] = float(rate)

    # ------------------------------------------------------------ results

    def minute_stats(self, minute: int) -> MinuteStats:
        """Evaluation aggregates for one whole minute."""
        start, end = minute * 60.0, (minute + 1) * 60.0
        bins = self._bins_in(start, end)
        arrivals = sum(b.arrivals for b in bins)
        drops = sum(b.drops for b in bins)
        violations = sum(b.violations for b in bins)
        latency = self.window_latency_percentile(start, end)
        if arrivals == 0:
            utility = 1.0  # An idle job trivially meets its SLO.
            violation_rate = 0.0
        else:
            utility = inverse_utility(latency, self.slo.target, alpha=self.alpha)
            violation_rate = violations / arrivals
        from repro.core.penalty import penalty_multiplier

        drop_fraction = drops / arrivals if arrivals else 0.0
        effective = penalty_multiplier(drop_fraction) * utility
        return MinuteStats(
            minute=minute,
            arrivals=arrivals,
            drops=drops,
            violations=violations,
            latency_p=latency,
            violation_rate=violation_rate,
            utility=utility,
            effective_utility=effective,
        )

    def trim_before(self, time_s: float) -> None:
        """Drop bins older than ``time_s`` (bound long-run memory)."""
        cutoff = int(time_s // self.bin_seconds)
        stale = [i for i in self._bins if i < cutoff]
        for index in stale:
            del self._bins[index]
