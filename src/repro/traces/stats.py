"""Workload-trace statistics.

The paper characterizes its workloads qualitatively ("query rates vary
significantly over time", diurnal Azure patterns, bursty spikes); these
statistics quantify the same properties so that (a) the synthetic
generators can be validated against their design goals and (b) imported
real traces can be compared against the synthetic stand-ins in
EXPERIMENTS.md.

- *peak-to-mean ratio*: how much headroom static provisioning would waste.
- *burstiness* (Goh & Barabasi): ``(sigma - mu) / (sigma + mu)`` of the
  rate series; 0 for Poisson-smooth, -> 1 for heavy bursts, < 0 for
  sub-Poisson regularity.
- *lag autocorrelation*: short-range predictability (what the forecaster
  exploits).
- *diurnal strength*: autocorrelation at the one-day lag -- how strongly
  the daily cycle repeats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "peak_to_mean",
    "burstiness",
    "autocorrelation",
    "diurnal_strength",
    "TraceStats",
    "describe_trace",
]

MINUTES_PER_DAY = 1440


def _validate(trace: np.ndarray) -> np.ndarray:
    values = np.asarray(trace, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError(f"trace must be a non-empty 1-D array, got shape {values.shape}")
    if np.any(values < 0):
        raise ValueError("trace rates must be non-negative")
    return values


def peak_to_mean(trace: np.ndarray) -> float:
    """Max over mean of the rate series (``inf`` for an all-zero trace)."""
    values = _validate(trace)
    mean = float(np.mean(values))
    if mean == 0.0:
        return float("inf") if np.max(values) > 0 else 1.0
    return float(np.max(values)) / mean


def burstiness(trace: np.ndarray) -> float:
    """Goh-Barabasi burstiness ``(sigma - mu) / (sigma + mu)`` in [-1, 1]."""
    values = _validate(trace)
    mu = float(np.mean(values))
    sigma = float(np.std(values))
    if mu == 0.0 and sigma == 0.0:
        return 0.0
    return (sigma - mu) / (sigma + mu)


def autocorrelation(trace: np.ndarray, lag: int) -> float:
    """Pearson autocorrelation of the series at ``lag`` minutes.

    Returns 0.0 for constant series (no variance to correlate).
    """
    values = _validate(trace)
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if lag >= values.size:
        raise ValueError(f"lag {lag} exceeds trace length {values.size}")
    a = values[:-lag]
    b = values[lag:]
    sa, sb = np.std(a), np.std(b)
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.mean((a - np.mean(a)) * (b - np.mean(b))) / (sa * sb))


def diurnal_strength(trace: np.ndarray) -> float:
    """Autocorrelation at the one-day lag (requires >= 2 days of data)."""
    values = _validate(trace)
    if values.size <= MINUTES_PER_DAY:
        raise ValueError(
            f"diurnal strength needs > {MINUTES_PER_DAY} minutes, got {values.size}"
        )
    return autocorrelation(values, MINUTES_PER_DAY)


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one per-minute trace."""

    minutes: int
    mean: float
    std: float
    minimum: float
    maximum: float
    peak_to_mean: float
    burstiness: float
    lag1_autocorrelation: float
    diurnal_strength: float | None

    def as_row(self) -> list:
        """Row form for :func:`repro.experiments.report.format_table`."""
        diurnal = "n/a" if self.diurnal_strength is None else round(self.diurnal_strength, 3)
        return [
            self.minutes,
            round(self.mean, 1),
            round(self.std, 1),
            round(self.peak_to_mean, 2),
            round(self.burstiness, 3),
            round(self.lag1_autocorrelation, 3),
            diurnal,
        ]


def describe_trace(trace: np.ndarray) -> TraceStats:
    """Compute the full statistic set for one trace."""
    values = _validate(trace)
    diurnal = (
        diurnal_strength(values) if values.size > MINUTES_PER_DAY else None
    )
    lag1 = autocorrelation(values, 1) if values.size > 1 else 0.0
    return TraceStats(
        minutes=int(values.size),
        mean=float(np.mean(values)),
        std=float(np.std(values)),
        minimum=float(np.min(values)),
        maximum=float(np.max(values)),
        peak_to_mean=peak_to_mean(values),
        burstiness=burstiness(values),
        lag1_autocorrelation=lag1,
        diurnal_strength=diurnal,
    )
