"""The unified run engine: one code path from spec to results.

:func:`run` drives the whole pipeline -- scenario construction (trace
generation), policy construction through the registry (including predictor
training), and multi-trial simulation -- and returns a :class:`RunReport`.
The legacy ``repro.experiments.runner.run_trials``/``compare_policies``
entry points are thin shims over the same :func:`execute_trials` core, so
spec-driven runs and legacy calls with equal settings produce bit-identical
results (same seeds -> same summary statistics).

Telemetry: pass ``progress=callback`` to receive :class:`RunEvent` values
at scenario/policy/trial boundaries (the CLI uses this for live output).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.registry import get_registry
from repro.api.spec import ExperimentSpec, PolicySpec
from repro.cluster.kubernetes import ResourceQuota
from repro.experiments.scenarios import Scenario
from repro.sim.backends import get_backend_registry
from repro.sim.recorder import SimulationResult
from repro.sim.simulation import SimulationConfig

__all__ = [
    "RunEvent",
    "ProgressCallback",
    "TrialStats",
    "ShardFailure",
    "RunReport",
    "derive_trial_seed",
    "make_policy_factory",
    "make_policy",
    "build_trial_simulation",
    "execute_trials",
    "run_policy",
    "run",
]

#: Sentinel for "caller did not override" (None is a meaningful value for
#: ``duration_minutes``: run the whole trace).
_UNSET = object()


def derive_trial_seed(base_seed: int, trial_index: int) -> int:
    """Seed for global trial ``trial_index`` of a run with ``base_seed``.

    This is the single seed-derivation rule for the whole engine: a trial's
    seed depends only on the experiment's base seed and the trial's *global*
    index -- never on which policy or scenario it belongs to, how trials are
    sharded across workers, or how many workers run.  That invariance is
    what makes the sharded executor (:mod:`repro.api.parallel`)
    bit-identical to the serial loop: a shard covering trials ``[a, b)``
    derives exactly the seeds the serial loop would.

    The affine form ``base + 1000 * trial`` is the scheme the serial engine
    has always used (pinned by ``tests/test_api_run.py``), so it must not
    change; treat it like a file-format constant.
    """
    return int(base_seed) + 1000 * int(trial_index)


@dataclass(frozen=True)
class RunEvent:
    """One progress/telemetry event emitted by the run engine.

    ``stage`` is one of ``scenario-start``, ``policy-start``,
    ``trial-start``, ``trial-end``, ``policy-end``, ``scenario-end``,
    ``run-end``, plus -- from the sharded executor
    (:mod:`repro.api.parallel`) -- ``shard-end`` and ``shard-failed``.
    Sharded runs emit trial and shard events (with *global* trial indices)
    but no scenario/policy boundary events, since cells run interleaved
    across workers.
    """

    stage: str
    scenario: str | None = None
    policy: str | None = None
    trial: int | None = None
    trials: int | None = None
    detail: str = ""


ProgressCallback = Callable[[RunEvent], None]


def _emit(progress: ProgressCallback | None, event: RunEvent) -> None:
    if progress is not None:
        progress(event)


@dataclass
class TrialStats:
    """Mean/SD of the headline metrics over trials for one policy.

    ``trial_indices`` records which *global* trial indices ``results``
    covers, in order.  The serial engine always produces the full
    ``[0, trials)`` range; partial stats coming out of a sharded run carry
    their sub-range so :meth:`merged` can reassemble the serial ordering.
    ``None`` means "indices unknown" (summary-only stats cannot merge).
    """

    policy: str
    lost_utility_mean: float
    lost_utility_sd: float
    lost_effective_mean: float
    lost_effective_sd: float
    violation_rate_mean: float
    violation_rate_sd: float
    results: list[SimulationResult] = field(default_factory=list)
    trial_indices: list[int] | None = None

    @classmethod
    def from_results(
        cls,
        policy: str,
        results: list[SimulationResult],
        trial_indices: list[int] | None = None,
    ) -> "TrialStats":
        lost = np.array([r.avg_lost_cluster_utility for r in results])
        lost_eff = np.array([r.avg_lost_effective_utility for r in results])
        viol = np.array([r.cluster_slo_violation_rate for r in results])
        return cls(
            policy=policy,
            lost_utility_mean=float(lost.mean()),
            lost_utility_sd=float(lost.std()),
            lost_effective_mean=float(lost_eff.mean()),
            lost_effective_sd=float(lost_eff.std()),
            violation_rate_mean=float(viol.mean()),
            violation_rate_sd=float(viol.std()),
            results=results,
            trial_indices=trial_indices,
        )

    @classmethod
    def merged(cls, parts: "list[TrialStats]") -> "TrialStats":
        """Combine partial per-trial stats into one, in global trial order.

        Every part must carry ``trial_indices`` (one per result) and the
        indices must not overlap.  The summary statistics are recomputed
        from the union of results sorted by trial index -- exactly the
        array the serial loop would have built -- so a merge of any
        partition of a cell's trials is bit-identical to running the cell
        serially.  The operation is associative and order-invariant.
        """
        if not parts:
            raise ValueError("cannot merge zero TrialStats")
        policies = {part.policy for part in parts}
        if len(policies) != 1:
            raise ValueError(f"cannot merge stats of different policies: {sorted(policies)}")
        pairs: list[tuple[int, SimulationResult]] = []
        for part in parts:
            if part.trial_indices is None:
                raise ValueError(
                    "cannot merge TrialStats without trial_indices "
                    "(summary-only stats)"
                )
            if len(part.trial_indices) != len(part.results):
                raise ValueError(
                    f"trial_indices/results length mismatch: "
                    f"{len(part.trial_indices)} != {len(part.results)}"
                )
            pairs.extend(zip(part.trial_indices, part.results))
        indices = [index for index, _ in pairs]
        if len(set(indices)) != len(indices):
            raise ValueError(f"overlapping trial indices in merge: {sorted(indices)}")
        pairs.sort(key=lambda pair: pair[0])
        return cls.from_results(
            parts[0].policy,
            [result for _, result in pairs],
            trial_indices=[index for index, _ in pairs],
        )

    def to_summary_dict(self) -> dict[str, float]:
        """Headline metrics only (JSON-safe; drops the raw results)."""
        return {
            "policy": self.policy,
            "lost_utility_mean": self.lost_utility_mean,
            "lost_utility_sd": self.lost_utility_sd,
            "lost_effective_mean": self.lost_effective_mean,
            "lost_effective_sd": self.lost_effective_sd,
            "violation_rate_mean": self.violation_rate_mean,
            "violation_rate_sd": self.violation_rate_sd,
        }


def make_policy_factory(
    policy: PolicySpec | str,
    *,
    predictor_profile: Any = None,
) -> tuple[str, Callable[[Scenario, int], Any]]:
    """Resolve a policy spec into ``(display_label, factory)``.

    The factory maps ``(scenario, trial_seed) -> policy instance`` through
    the registry, with options parsed once up front.  This is the policy
    half of :func:`run_policy`, shared with the serving engine
    (:mod:`repro.serve`) so both construct policies identically.

    ``predictor_profile`` is the experiment-level default: injected only
    when the policy's config type has a ``predictor_profile`` field and
    the spec does not already set one.
    """
    if isinstance(policy, str):
        policy = PolicySpec(name=policy)
    registry = get_registry()
    info = registry.get(policy.name)
    options = dict(policy.options)
    if (
        predictor_profile is not None
        and info.config_type is not None
        and "predictor_profile" in {f_name for f_name, _ in info.option_fields()}
        and options.get("predictor_profile") is None
    ):
        options["predictor_profile"] = predictor_profile
    config = registry.parse_options(policy.name, options)

    def factory(sc: Scenario, trial_seed: int):
        return info.builder(sc, trial_seed, config)

    return policy.display_label, factory


def make_policy(
    policy: PolicySpec | str,
    scenario: Scenario,
    trial_seed: int,
    *,
    predictor_profile: Any = None,
) -> Any:
    """Construct one trial's policy instance for ``scenario``."""
    _, factory = make_policy_factory(policy, predictor_profile=predictor_profile)
    return factory(scenario, trial_seed)


def build_trial_simulation(
    scenario: Scenario,
    policy: Any,
    *,
    simulator: str = "request",
    trial_seed: int = 0,
    sim_overrides: Mapping[str, Any] | None = None,
    backend_options: Mapping[str, Any] | Any = None,
    eval_traces: Mapping[str, Any] | None = None,
    duration_minutes: Any = _UNSET,
) -> Any:
    """Construct one trial's simulation harness, exactly as the trial loop
    does -- argument for argument, so a harness built here and run to
    completion is bit-identical to the corresponding
    :func:`execute_trials` trial.

    ``eval_traces``/``duration_minutes`` let the serving engine substitute
    a trace prefix (grown later via ``SimHarness.extend_traces``) and a
    streaming horizon; left at their defaults, the scenario's own traces
    and duration apply.
    """
    backend_registry = get_backend_registry()
    backend = backend_registry.get(simulator)
    parsed_options = backend_registry.parse_options(simulator, backend_options)
    if duration_minutes is _UNSET:
        duration_minutes = scenario.duration_minutes
    config = SimulationConfig(
        duration_minutes=duration_minutes,
        rate_scale=scenario.rate_scale,
        seed=trial_seed,
        **dict(sim_overrides or {}),
    )
    quota = ResourceQuota.of_replicas(scenario.total_replicas)
    # `devices` is passed only for heterogeneous scenarios, so backend
    # construction (and everything downstream) is untouched -- argument
    # for argument -- on homogeneous runs.
    backend_kwargs: dict[str, Any] = {}
    if scenario.devices is not None:
        backend_kwargs["devices"] = scenario.devices
    return backend.cls(
        scenario.jobs,
        eval_traces if eval_traces is not None else scenario.eval_traces,
        policy,
        quota,
        config=config,
        history_prefix=scenario.history_prefix or None,
        options=parsed_options,
        **backend_kwargs,
    )


def execute_trials(
    scenario: Scenario,
    policy_label: str,
    policy_factory: Callable[[Scenario, int], Any],
    *,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    sim_overrides: Mapping[str, Any] | None = None,
    backend_options: Mapping[str, Any] | Any = None,
    progress: ProgressCallback | None = None,
    trial_offset: int = 0,
    total_trials: int | None = None,
) -> TrialStats:
    """Run one policy for several trials and aggregate its metrics.

    This is the single trial loop every entry point shares.  Global trial
    ``t`` uses :func:`derive_trial_seed` (``seed + 1000 * t``) for both
    policy construction and the simulator, so any two routes into this
    function with equal arguments produce identical results.

    ``simulator`` names a registered simulation backend
    (:mod:`repro.sim.backends`); ``backend_options`` carries that
    backend's typed options (mapping or config instance), validated by the
    registry before any trial runs.

    ``trial_offset`` runs trials ``[offset, offset + trials)`` of a larger
    sweep: seeds derive from the *global* index and progress events report
    it, so a shard of a sweep is indistinguishable from the corresponding
    slice of the serial loop.  ``total_trials`` only labels progress events
    (defaults to ``trial_offset + trials``).
    """
    backend_registry = get_backend_registry()
    backend_registry.get(simulator)  # unknown names raise here, not mid-loop
    backend_registry.parse_options(simulator, backend_options)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if trial_offset < 0:
        raise ValueError(f"trial_offset must be >= 0, got {trial_offset}")
    shown_trials = total_trials if total_trials is not None else trial_offset + trials
    results = []
    for local in range(trials):
        trial = trial_offset + local
        trial_seed = derive_trial_seed(seed, trial)
        _emit(
            progress,
            RunEvent(
                stage="trial-start",
                scenario=scenario.name,
                policy=policy_label,
                trial=trial,
                trials=shown_trials,
            ),
        )
        policy = policy_factory(scenario, trial_seed)
        simulation = build_trial_simulation(
            scenario,
            policy,
            simulator=simulator,
            trial_seed=trial_seed,
            sim_overrides=sim_overrides,
            backend_options=backend_options,
        )
        result = simulation.run()
        result.policy_name = getattr(policy, "name", policy_label)
        results.append(result)
        _emit(
            progress,
            RunEvent(
                stage="trial-end",
                scenario=scenario.name,
                policy=policy_label,
                trial=trial,
                trials=shown_trials,
                detail=f"lost_utility={result.avg_lost_cluster_utility:.3f}",
            ),
        )
    return TrialStats.from_results(
        policy_label,
        results,
        trial_indices=list(range(trial_offset, trial_offset + trials)),
    )


def run_policy(
    scenario: Scenario,
    policy: PolicySpec | str,
    *,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile: Any = None,
    sim_overrides: Mapping[str, Any] | None = None,
    backend_options: Mapping[str, Any] | Any = None,
    progress: ProgressCallback | None = None,
    trial_offset: int = 0,
    total_trials: int | None = None,
) -> TrialStats:
    """Run one registered policy (by spec or name) on a built scenario.

    ``predictor_profile`` is an experiment-level default: it is injected
    into the policy's options only when the policy's config type has a
    ``predictor_profile`` field and the spec does not already set one.
    """
    label, factory = make_policy_factory(policy, predictor_profile=predictor_profile)
    return execute_trials(
        scenario,
        label,
        factory,
        trials=trials,
        simulator=simulator,
        seed=seed,
        sim_overrides=sim_overrides,
        backend_options=backend_options,
        progress=progress,
        trial_offset=trial_offset,
        total_trials=total_trials,
    )


def _validate_spec(spec: ExperimentSpec) -> None:
    """Resolve every name/option in ``spec`` before any simulation runs.

    A typo'd policy name or option must fail in milliseconds, not after
    earlier scenarios have burned hours of simulation.  (Duplicate built
    scenario *names* can only be detected at build time and stay checked
    in the run loop.)
    """
    from repro.api.scenarios import get_scenario_registry

    registry = get_registry()
    for policy in spec.policies:
        registry.parse_options(policy.name, policy.options)
    # Backend name + options resolve through the backend registry, so a
    # typo'd backend option dies here too.
    get_backend_registry().parse_options(spec.simulator, spec.backend_options)
    scenario_registry = get_scenario_registry()
    seen_specs: set[str] = set()
    explicit_names: set[str] = set()
    for scenario_spec in spec.scenarios:
        info = scenario_registry.get(scenario_spec.kind)
        # Name-level check (honouring **kwargs factories) plus the kind's
        # deep-validation hook -- the custom kind resolves its entire
        # job/trace-pipeline graph here, before anything simulates.
        info.check_params(scenario_spec.params)
        # Guaranteed name collisions fail here, in milliseconds, on both
        # the serial and sharded paths (the sharded executor has no build
        # step in the parent, so waiting for build-time detection would
        # waste the whole sweep).  Distinct unnamed specs that *build* to
        # the same name still fail later, at build/merge time.
        if scenario_spec.name is not None:
            if scenario_spec.name in explicit_names:
                raise ValueError(
                    f"duplicate scenario name {scenario_spec.name!r}; "
                    "ScenarioSpec names must be unique"
                )
            explicit_names.add(scenario_spec.name)
        try:
            digest = json.dumps(scenario_spec.to_dict(), sort_keys=True)
        except TypeError:  # non-JSON params; skip the identical-spec check
            digest = None
        if digest is not None:
            if digest in seen_specs:
                raise ValueError(
                    f"scenario spec {scenario_spec.kind!r} appears twice with "
                    "identical parameters; set ScenarioSpec.name to "
                    "disambiguate repeated kinds"
                )
            seen_specs.add(digest)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard of a sharded sweep, surfaced in the report.

    ``trials`` lists the global trial indices the shard covered; those
    cells' stats are missing (or partial) in ``RunReport.stats``.
    """

    shard_id: str
    scenario: str | None
    policy: str | None
    trials: tuple[int, ...]
    error: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "scenario": self.scenario,
            "policy": self.policy,
            "trials": list(self.trials),
            "error": self.error,
        }


@dataclass
class RunReport:
    """All results of one :func:`run`: per-scenario, per-policy stats.

    ``stats`` maps scenario name -> policy label -> :class:`TrialStats`,
    in spec order.

    ``scenario_index`` maps built scenario names to their position in
    ``spec.scenarios``; partial reports coming out of the sharded executor
    carry it so :meth:`merge` can restore spec ordering no matter which
    shard finished first.  ``failures`` lists shards that crashed in a
    sharded run (always empty for serial runs).  Neither affects equality
    of ``to_dict`` for clean runs: ``scenario_index`` is never serialized
    and ``failures`` only appears when non-empty.
    """

    spec: ExperimentSpec
    stats: dict[str, dict[str, TrialStats]] = field(default_factory=dict)
    scenario_index: dict[str, int] = field(default_factory=dict, compare=False)
    failures: list[ShardFailure] = field(default_factory=list)
    #: Execution accounting of a sharded run (:class:`repro.api.parallel.
    #: SweepInfo`); ``None`` for serial runs.  Never serialized.
    sweep: Any = field(default=None, compare=False)

    def get(self, scenario: str, policy: str) -> TrialStats:
        try:
            return self.stats[scenario][policy]
        except KeyError:
            raise KeyError(
                f"no stats for scenario {scenario!r} / policy {policy!r}; "
                f"have scenarios {list(self.stats)}"
            ) from None

    def scenario_names(self) -> tuple[str, ...]:
        return tuple(self.stats)

    def policy_labels(self) -> tuple[str, ...]:
        return tuple(p.display_label for p in self.spec.policies)

    def best_policy(self, scenario: str) -> str:
        """Policy label with the lowest mean lost cluster utility."""
        per_policy = self.stats[scenario]
        return min(per_policy, key=lambda p: per_policy[p].lost_utility_mean)

    def single_result(self) -> SimulationResult:
        """The lone SimulationResult of a 1-scenario/1-policy/1-trial run."""
        if (
            len(self.stats) != 1
            or len(next(iter(self.stats.values()))) != 1
            or self.spec.trials != 1
        ):
            raise ValueError(
                "single_result() needs exactly one scenario, policy, and trial"
            )
        return next(iter(next(iter(self.stats.values())).values())).results[0]

    def summary_rows(self) -> list[list]:
        """Table rows: scenario, policy, lost utility (mean/sd), violations."""
        rows = []
        for scenario, per_policy in self.stats.items():
            for label, st in per_policy.items():
                rows.append(
                    [
                        scenario,
                        label,
                        f"{st.lost_utility_mean:.3f}",
                        f"{st.lost_utility_sd:.3f}",
                        f"{st.violation_rate_mean:.4f}",
                    ]
                )
        return rows

    def describe(self) -> str:
        """Human-readable summary table of the whole run."""
        from repro.experiments.report import format_table

        return format_table(
            ["scenario", "policy", "lost utility", "sd", "violation rate"],
            self.summary_rows(),
            title=f"Experiment {self.spec.name!r} "
            f"({self.spec.trials} trial(s), {self.spec.simulator} simulator)",
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe report: the spec plus summary statistics per cell.

        For a clean (no-failure) run the output is bit-identical between
        the serial engine and any sharded execution of the same spec --
        that contract is pinned by ``tests/test_parallel_sweep.py``.
        """
        data: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "stats": {
                scenario: {
                    label: st.to_summary_dict() for label, st in per_policy.items()
                }
                for scenario, per_policy in self.stats.items()
            },
        }
        if self.failures:
            data["failures"] = [failure.to_dict() for failure in self.failures]
        return data

    # ------------------------------------------------------------ merging

    def merge(self, other: "RunReport") -> "RunReport":
        """Combine two (partial) reports of the same spec into one.

        The operation is **associative and order-invariant**: folding any
        partition of a run's cells/trials together in any order yields the
        same report, with scenarios restored to spec order (via the union
        of ``scenario_index``) and policies to spec order.  Cells present
        in both reports are merged trial-wise with
        :meth:`TrialStats.merged`, which recomputes the summary statistics
        from the union of per-trial results in global trial order -- so the
        fully-merged report is bit-identical to a serial run.
        """
        if self.spec != other.spec:
            raise ValueError(
                f"cannot merge reports of different specs: "
                f"{self.spec.name!r} vs {other.spec.name!r}"
            )
        scenario_index = dict(self.scenario_index)
        for name, index in other.scenario_index.items():
            if scenario_index.setdefault(name, index) != index:
                raise ValueError(
                    f"conflicting spec positions for scenario {name!r}: "
                    f"{scenario_index[name]} vs {index}"
                )
        cells: dict[tuple[str, str], list[TrialStats]] = {}
        for report in (self, other):
            for scenario, per_policy in report.stats.items():
                for label, stats in per_policy.items():
                    cells.setdefault((scenario, label), []).append(stats)
        label_order = {label: i for i, label in enumerate(self.policy_labels())}
        unknown = len(scenario_index) + len(self.spec.scenarios)

        def scenario_sort_key(name: str):
            return (scenario_index.get(name, unknown), name)

        def label_sort_key(label: str):
            return (label_order.get(label, len(label_order)), label)

        merged: dict[str, dict[str, TrialStats]] = {}
        for scenario in sorted({s for s, _ in cells}, key=scenario_sort_key):
            labels = sorted({l for s, l in cells if s == scenario}, key=label_sort_key)
            merged[scenario] = {
                label: (
                    parts[0]
                    if len(parts := cells[(scenario, label)]) == 1
                    else TrialStats.merged(parts)
                )
                for label in labels
            }
        failures = sorted(
            [*self.failures, *other.failures], key=lambda failure: failure.shard_id
        )
        return RunReport(
            spec=self.spec,
            stats=merged,
            scenario_index=scenario_index,
            failures=failures,
        )


def run(
    spec: ExperimentSpec | str | Path,
    progress: ProgressCallback | None = None,
    *,
    workers: int = 1,
    journal: str | Path | None = None,
    resume: bool = False,
    cache_path: str | Path | None = None,
    cache_write_back: bool = False,
) -> RunReport:
    """Run a whole experiment spec and return its :class:`RunReport`.

    ``spec`` may be an :class:`ExperimentSpec` or a path to a JSON/YAML
    spec file.  Scenarios run in spec order; within a scenario, policies
    run in spec order, each for ``spec.trials`` trials.

    ``workers > 1`` fans the run out over a process pool via
    :func:`repro.api.parallel.run_parallel`; results are bit-identical to
    the serial path (same :func:`derive_trial_seed` seeds, order-invariant
    :meth:`RunReport.merge`).  ``journal`` checkpoints completed shards so
    ``resume=True`` skips them after a crash; ``cache_path`` warms each
    worker from a persisted
    :class:`~repro.core.optimizer.UtilityTableCache`;
    ``cache_write_back=True`` additionally persists tables the workers
    build back into that file (merge-on-save under an exclusive lock).
    These options require the sharded executor
    (``journal``/``resume``/``cache_path``/``cache_write_back`` imply it
    even with ``workers=1``).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if (
        workers > 1
        or journal is not None
        or resume
        or cache_path is not None
        or cache_write_back
    ):
        from repro.api.parallel import run_parallel

        return run_parallel(
            spec,
            workers=workers,
            progress=progress,
            journal=journal,
            resume=resume,
            cache_path=cache_path,
            cache_write_back=cache_write_back,
        )
    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.from_file(spec)
    from repro.traces.generators import trace_search_path

    spec_dir = spec.spec_dir
    with trace_search_path(spec_dir):
        _validate_spec(spec)
    report = RunReport(spec=spec)
    for scenario_index, scenario_spec in enumerate(spec.scenarios):
        with trace_search_path(spec_dir):
            scenario = scenario_spec.build()
        report.scenario_index[scenario.name] = scenario_index
        _emit(
            progress,
            RunEvent(
                stage="scenario-start",
                scenario=scenario.name,
                detail=f"{len(scenario.jobs)} jobs, "
                f"{scenario.total_replicas} replicas, "
                f"{scenario.duration_minutes} minutes",
            ),
        )
        if scenario.name in report.stats:
            raise ValueError(
                f"duplicate scenario name {scenario.name!r}; set ScenarioSpec.name "
                "to disambiguate repeated kinds"
            )
        per_policy: dict[str, TrialStats] = {}
        for policy_spec in spec.policies:
            label = policy_spec.display_label
            _emit(
                progress,
                RunEvent(stage="policy-start", scenario=scenario.name, policy=label),
            )
            stats = run_policy(
                scenario,
                policy_spec,
                trials=spec.trials,
                simulator=spec.simulator,
                seed=spec.seed,
                predictor_profile=spec.predictor_profile,
                sim_overrides=spec.sim_overrides,
                backend_options=spec.backend_options,
                progress=progress,
            )
            per_policy[label] = stats
            _emit(
                progress,
                RunEvent(
                    stage="policy-end",
                    scenario=scenario.name,
                    policy=label,
                    detail=f"lost_utility={stats.lost_utility_mean:.3f} "
                    f"violations={stats.violation_rate_mean:.4f}",
                ),
            )
        report.stats[scenario.name] = per_policy
        _emit(progress, RunEvent(stage="scenario-end", scenario=scenario.name))
    _emit(progress, RunEvent(stage="run-end", detail=f"{len(report.stats)} scenario(s)"))
    return report
