"""Exact M/M/c queueing formulas.

Notation (Shortle et al., "Fundamentals of Queueing Theory"):

- ``lam``: Poisson arrival rate (requests / second).
- ``mu``: per-server service rate (requests / second); for deterministic
  processing time ``p`` seconds, ``mu = 1 / p``.
- ``c``: number of servers (replicas).
- offered load ``a = lam / mu``; utilization ``rho = a / c``.

All waiting times refer to time spent in queue (excluding service).
"""

from __future__ import annotations

import math

__all__ = [
    "erlang_b",
    "erlang_c",
    "utilization",
    "mmc_mean_wait",
    "mmc_wait_ccdf",
    "mmc_wait_percentile",
]


def utilization(lam: float, mu: float, servers: int) -> float:
    """Server utilization ``rho = lam / (servers * mu)``.

    Values >= 1 indicate an unstable queue (unbounded backlog).
    """
    if lam < 0:
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if mu <= 0:
        raise ValueError(f"service rate must be positive, got {mu}")
    if servers < 1:
        raise ValueError(f"server count must be >= 1, got {servers}")
    return lam / (servers * mu)


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability for an M/M/c/c loss system.

    Uses the numerically stable recurrence
    ``B(0) = 1; B(k) = a * B(k-1) / (k + a * B(k-1))``.
    """
    if servers < 0:
        raise ValueError(f"server count must be >= 0, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must wait.

    ``C(c, a) = c * B(c, a) / (c - a * (1 - B(c, a)))`` for ``a < c``.
    Returns 1.0 when the queue is unstable (``a >= c``): every request waits.
    """
    if servers < 1:
        raise ValueError(f"server count must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    if offered_load >= servers:
        return 1.0
    blocking = erlang_b(servers, offered_load)
    return servers * blocking / (servers - offered_load * (1.0 - blocking))


def mmc_mean_wait(lam: float, mu: float, servers: int) -> float:
    """Mean queueing delay ``Wq`` of an M/M/c queue.

    ``Wq = C(c, a) / (c * mu - lam)``.  Returns ``inf`` for unstable queues.
    """
    rho = utilization(lam, mu, servers)
    if rho >= 1.0:
        return math.inf
    if lam == 0.0:
        return 0.0
    wait_probability = erlang_c(servers, lam / mu)
    return wait_probability / (servers * mu - lam)


def mmc_wait_ccdf(t: float, lam: float, mu: float, servers: int) -> float:
    """``P(Wq > t)`` for an M/M/c FCFS queue.

    The conditional waiting time (given wait > 0) is exponential with rate
    ``c * mu - lam``, so ``P(Wq > t) = C(c, a) * exp(-(c*mu - lam) * t)``.
    """
    if t < 0:
        raise ValueError(f"time must be non-negative, got {t}")
    rho = utilization(lam, mu, servers)
    if rho >= 1.0:
        return 1.0
    if lam == 0.0:
        return 0.0
    wait_probability = erlang_c(servers, lam / mu)
    return wait_probability * math.exp(-(servers * mu - lam) * t)


def mmc_wait_percentile(q: float, lam: float, mu: float, servers: int) -> float:
    """``q``-quantile (0 < q < 1) of M/M/c queueing delay.

    Solves ``P(Wq <= t) = q``.  Because the waiting time has an atom at 0 of
    mass ``1 - C``, the quantile is 0 whenever ``q <= 1 - C``; otherwise
    ``t = ln(C / (1 - q)) / (c * mu - lam)``.  Returns ``inf`` for unstable
    queues.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    rho = utilization(lam, mu, servers)
    if rho >= 1.0:
        return math.inf
    if lam == 0.0:
        return 0.0
    wait_probability = erlang_c(servers, lam / mu)
    if q <= 1.0 - wait_probability:
        return 0.0
    return math.log(wait_probability / (1.0 - q)) / (servers * mu - lam)
