"""Trace persistence: CSV for single traces, JSON for job mixes.

The synthetic generators (:mod:`repro.traces.azure` / ``.twitter``) are
deterministic, but exported traces let experiments be (a) re-run against
byte-identical workloads across machines and (b) swapped for *real* Azure
Functions / Twitter trace extracts without touching experiment code --
the loaders return the same structures the generators produce.

CSV format: header ``minute,requests`` then one row per minute.
JSON format: ``{"traces": {name: {"rates_per_min": [...], "source": ...,
"train_days": ...}}, "metadata": {...}}``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.traces.library import JobTrace

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "save_job_mix_json",
    "load_job_mix_json",
]


def save_trace_csv(path: str | Path, trace: np.ndarray) -> None:
    """Write one per-minute trace as ``minute,requests`` rows."""
    values = np.asarray(trace, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {values.shape}")
    if np.any(values < 0):
        raise ValueError("trace rates must be non-negative")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["minute", "requests"])
        for minute, value in enumerate(values):
            writer.writerow([minute, repr(float(value))])


def load_trace_csv(path: str | Path) -> np.ndarray:
    """Read a trace written by :func:`save_trace_csv`.

    Rows must be contiguous from minute 0; gaps or reordering raise
    :class:`ValueError` (silent gap-filling would corrupt rate statistics).
    """
    path = Path(path)
    rates: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["minute", "requests"]:
            raise ValueError(f"unexpected CSV header {header!r} in {path}")
        for expected, row in enumerate(reader):
            if len(row) != 2:
                raise ValueError(f"malformed row {row!r} in {path}")
            minute, value = int(row[0]), float(row[1])
            if minute != expected:
                raise ValueError(
                    f"non-contiguous minutes in {path}: expected {expected}, got {minute}"
                )
            if value < 0:
                raise ValueError(f"negative rate at minute {minute} in {path}")
            rates.append(value)
    if not rates:
        raise ValueError(f"no data rows in {path}")
    return np.asarray(rates, dtype=float)


def save_job_mix_json(path: str | Path, jobs: list[JobTrace], metadata: dict | None = None) -> None:
    """Persist a whole job mix (e.g. from ``standard_job_mix``) as JSON."""
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate job names: {names}")
    payload = {
        "traces": {
            job.name: {
                "rates_per_min": [float(v) for v in job.rates_per_min],
                "source": job.source,
                "train_days": job.train_days,
            }
            for job in jobs
        },
        "metadata": metadata or {},
    }
    Path(path).write_text(json.dumps(payload))


def load_job_mix_json(path: str | Path) -> tuple[list[JobTrace], dict]:
    """Load a job mix saved by :func:`save_job_mix_json`.

    Returns ``(jobs, metadata)``; job order follows the file.
    """
    payload = json.loads(Path(path).read_text())
    if "traces" not in payload:
        raise ValueError(f"{path} is not a job-mix file (no 'traces' key)")
    jobs = []
    for name, entry in payload["traces"].items():
        try:
            jobs.append(
                JobTrace(
                    name=name,
                    rates_per_min=np.asarray(entry["rates_per_min"], dtype=float),
                    source=entry.get("source", "unknown"),
                    train_days=int(entry.get("train_days", 1)),
                )
            )
        except KeyError as exc:
            raise ValueError(f"trace {name!r} in {path} is missing {exc}") from exc
    return jobs, payload.get("metadata", {})
