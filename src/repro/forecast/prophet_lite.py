"""Prophet-style trend + Fourier-seasonality forecaster.

Barista (paper §3.5.1 / [6]) forecasts workload with Prophet; this module
provides the same model family without the Stan dependency: a linear trend
plus a Fourier expansion of the daily cycle, fitted jointly by ridge
regression.  It is a strong classical baseline for diurnal traces -- it
nails the repeating daily shape -- and a weak one for bursts, which is
exactly the contrast the paper draws against learned predictors.

Prediction phase.  The :class:`~repro.forecast.base.Forecaster` interface
hands ``predict`` only a short recent window, not its absolute position in
the day, so the seasonal phase is *recovered* by sliding the window over
the fitted seasonal profile and picking the least-squares shift (a level
offset is fitted per shift, so the match keys on shape, not magnitude).
For strongly diurnal series the recovery is near-exact; for flat series
every phase is equivalent and the forecast degrades gracefully to
level + trend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forecast.base import Forecaster

__all__ = ["ProphetLiteConfig", "ProphetLiteForecaster"]


@dataclass(frozen=True)
class ProphetLiteConfig:
    """Model hyper-parameters.

    ``period`` is the seasonal cycle length in samples (1440 = daily at
    1-minute resolution); ``fourier_order`` the number of sin/cos harmonic
    pairs (Prophet's default for daily seasonality is in the same range).
    """

    period: int = 1440
    fourier_order: int = 8
    ridge: float = 1e-3
    residual_horizon: int = 8

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ValueError(f"period must be >= 2, got {self.period}")
        if self.fourier_order < 1:
            raise ValueError(f"fourier_order must be >= 1, got {self.fourier_order}")
        if self.ridge < 0:
            raise ValueError(f"ridge must be >= 0, got {self.ridge}")
        if self.residual_horizon < 1:
            raise ValueError(f"residual_horizon must be >= 1, got {self.residual_horizon}")


class ProphetLiteForecaster(Forecaster):
    """Linear trend + daily Fourier seasonality, ridge-fitted."""

    def __init__(self, config: ProphetLiteConfig | None = None) -> None:
        self.config = config or ProphetLiteConfig()
        self._weights: np.ndarray | None = None
        self._train_len = 0

    # ------------------------------------------------------------- design

    def _design(self, t: np.ndarray) -> np.ndarray:
        """Design matrix rows for (fractional) sample indices ``t``."""
        cfg = self.config
        scale = max(self._train_len, 1)
        columns = [np.ones_like(t, dtype=float), t / scale]
        for k in range(1, cfg.fourier_order + 1):
            angle = 2.0 * np.pi * k * t / cfg.period
            columns.append(np.sin(angle))
            columns.append(np.cos(angle))
        return np.stack(columns, axis=1)

    def _curve(self, t: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("forecaster is not fitted")
        return self._design(t) @ self._weights

    # ---------------------------------------------------------------- fit

    def fit(self, series: np.ndarray) -> "ProphetLiteForecaster":
        series = np.asarray(series, dtype=float)
        if series.ndim != 1 or series.size < 2 * self.config.period:
            raise ValueError(
                f"need >= {2 * self.config.period} samples (two seasonal "
                f"cycles) to fit, got {series.size}"
            )
        self._train_len = series.size
        t = np.arange(series.size, dtype=float)
        design = self._design(t)
        gram = design.T @ design + self.config.ridge * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ series)
        # One seasonal profile evaluated per in-cycle offset, reused by the
        # phase search at prediction time (trend evaluated at train end).
        self._profile = self._curve(
            np.arange(self.config.period, dtype=float) + self._train_len
        )
        self._estimate_residual_std(
            series[-4 * self.config.period :],
            input_size=min(16, self.config.period // 4),
            horizon=self.config.residual_horizon,
        )
        return self

    # ------------------------------------------------------------ predict

    def _locate_phase(self, history: np.ndarray) -> tuple[int, float]:
        """Least-squares (shift, level offset) of ``history`` on the profile.

        The profile is compared with a free per-shift level offset so the
        match keys on the *shape* of the diurnal curve; ties resolve to the
        smallest shift, keeping the forecaster deterministic.
        """
        period = self.config.period
        window = history.size
        tiled = np.concatenate([self._profile, self._profile[: window - 1]])
        strided = np.lib.stride_tricks.sliding_window_view(tiled, window)
        offsets = history.mean() - strided.mean(axis=1)
        errors = np.sum((strided + offsets[:, None] - history) ** 2, axis=1)
        shift = int(np.argmin(errors))
        return shift, float(offsets[shift])

    def predict(self, history: np.ndarray, horizon: int) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        history = np.asarray(history, dtype=float)
        if history.size == 0:
            raise ValueError("history must be non-empty")
        window = min(history.size, self.config.period)
        recent = history[-window:]
        shift, offset = self._locate_phase(recent)
        future_idx = (shift + window + np.arange(horizon)) % self.config.period
        prediction = self._profile[future_idx] + offset
        return np.maximum(prediction, 0.0)
