"""G/G/c and M/G/c approximations for non-ML-inference workloads.

The paper (§7, "Beyond ML Inference") notes that extending Faro to domains
like microservices or batch processing requires swapping the M/D/c latency
model for M/M/c or G/G/c variants.  This module provides the standard
engineering approximations for those queues, parameterized by the squared
coefficients of variation (SCV) of interarrival times (``ca2``) and service
times (``cs2``):

- Kingman's formula for G/G/1:
  ``Wq ~= (rho / (1 - rho)) * ((ca2 + cs2) / 2) * E[S]``
- The Allen-Cunneen approximation for G/G/c:
  ``Wq(G/G/c) ~= Wq(M/M/c) * (ca2 + cs2) / 2``
- M/G/c (Lee-Longton) as the ``ca2 = 1`` special case:
  ``Wq(M/G/c) ~= Wq(M/M/c) * (1 + cs2) / 2``

All of these reduce to the familiar corner cases: ``ca2 = cs2 = 1`` recovers
M/M/c exactly, and ``ca2 = 1, cs2 = 0`` recovers the M/D/c half-wait rule
used by Faro's own estimator (:mod:`repro.queueing.mdc`).

Percentiles scale the M/M/c waiting-time distribution by the same variability
factor as the mean -- the same tail-shape-preserving convention used for
M/D/c in :func:`repro.queueing.mdc.mdc_wait_percentile`.
"""

from __future__ import annotations

import math

from repro.queueing.mmc import mmc_mean_wait, mmc_wait_percentile, utilization

__all__ = [
    "variability_factor",
    "kingman_wait",
    "ggc_mean_wait",
    "ggc_wait_percentile",
    "ggc_latency_percentile",
    "mgc_mean_wait",
    "mgc_wait_percentile",
]


def variability_factor(ca2: float, cs2: float) -> float:
    """Allen-Cunneen variability factor ``(ca2 + cs2) / 2``.

    ``ca2``/``cs2`` are the squared coefficients of variation of the
    interarrival and service time distributions (variance over squared mean).
    """
    if ca2 < 0:
        raise ValueError(f"ca2 must be non-negative, got {ca2}")
    if cs2 < 0:
        raise ValueError(f"cs2 must be non-negative, got {cs2}")
    return (ca2 + cs2) / 2.0


def kingman_wait(lam: float, mu: float, ca2: float, cs2: float) -> float:
    """Kingman's G/G/1 mean-wait approximation.

    ``Wq ~= (rho / (1 - rho)) * ((ca2 + cs2) / 2) / mu``.  Returns ``inf``
    for unstable queues (``rho >= 1``).
    """
    rho = utilization(lam, mu, 1)
    if rho >= 1.0:
        return math.inf
    if lam == 0.0:
        return 0.0
    return (rho / (1.0 - rho)) * variability_factor(ca2, cs2) / mu


def ggc_mean_wait(lam: float, mu: float, servers: int, ca2: float, cs2: float) -> float:
    """Allen-Cunneen mean queueing delay for a G/G/c queue.

    Scales the exact M/M/c mean wait by the variability factor.  Exact for
    M/M/c inputs (``ca2 = cs2 = 1``); a well-tested approximation elsewhere
    (error typically within a few percent for moderate SCVs).  Returns
    ``inf`` for unstable queues.
    """
    rho = utilization(lam, mu, servers)
    if rho >= 1.0:
        return math.inf
    if lam == 0.0:
        return 0.0
    return mmc_mean_wait(lam, mu, servers) * variability_factor(ca2, cs2)


def ggc_wait_percentile(
    q: float, lam: float, mu: float, servers: int, ca2: float, cs2: float
) -> float:
    """``q``-quantile of G/G/c queueing delay.

    The M/M/c waiting-time quantile is scaled by the variability factor,
    preserving the exponential tail shape while matching the Allen-Cunneen
    first moment.  Returns ``inf`` for unstable queues.
    """
    rho = utilization(lam, mu, servers)
    if rho >= 1.0:
        return math.inf
    if lam == 0.0:
        return 0.0
    return mmc_wait_percentile(q, lam, mu, servers) * variability_factor(ca2, cs2)


def ggc_latency_percentile(
    q: float, lam: float, proc_time: float, servers: int, ca2: float, cs2: float
) -> float:
    """``q``-quantile of total G/G/c latency (queueing delay + mean service).

    ``proc_time`` is the mean service time in seconds (``1 / mu``).  The
    service-time contribution uses the mean; for low-variation inference
    services this matches the M/D/c convention, and for higher ``cs2`` the
    queueing-delay term dominates the tail anyway.
    """
    if proc_time <= 0:
        raise ValueError(f"processing time must be positive, got {proc_time}")
    wait = ggc_wait_percentile(q, lam, 1.0 / proc_time, servers, ca2, cs2)
    if math.isinf(wait):
        return math.inf
    return wait + proc_time


def mgc_mean_wait(lam: float, mu: float, servers: int, cs2: float) -> float:
    """Lee-Longton M/G/c mean wait: Poisson arrivals (``ca2 = 1``)."""
    return ggc_mean_wait(lam, mu, servers, ca2=1.0, cs2=cs2)


def mgc_wait_percentile(q: float, lam: float, mu: float, servers: int, cs2: float) -> float:
    """``q``-quantile of M/G/c queueing delay (Poisson arrivals)."""
    return ggc_wait_percentile(q, lam, mu, servers, ca2=1.0, cs2=cs2)
