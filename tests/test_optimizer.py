"""Cluster optimization tests (paper §3.4, Fig. 5)."""

import numpy as np
import pytest

from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    solve_allocation,
)
from repro.core.utility import SLO


def job(name="j", proc=0.18, slo=0.72, rates=(10.0,), **kwargs):
    return OptimizationJob(
        name=name, proc_time=proc, slo=SLO(slo), rates=tuple(rates), **kwargs
    )


class TestOptimizationJob:
    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            job(rates=())

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            job(rates=(-1.0,))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            OptimizationJob(
                name="j", proc_time=0.1, slo=SLO(0.4), rates=(1.0, 2.0), weights=(1.0,)
            )

    def test_coldstart_weight_range(self):
        with pytest.raises(ValueError):
            job(coldstart_weight=1.5)


class TestCapacity:
    def test_of_replicas(self):
        cap = ClusterCapacity.of_replicas(32)
        assert cap.cpus == 32 and cap.mem == 32

    def test_positive_required(self):
        with pytest.raises(ValueError):
            ClusterCapacity(cpus=0, mem=1)


class TestAllocationProblem:
    def test_infeasible_minimums(self):
        jobs = [job(name=f"j{i}", min_replicas=3) for i in range(4)]
        with pytest.raises(ValueError):
            AllocationProblem(jobs, ClusterCapacity.of_replicas(8), make_objective("sum"))

    def test_utility_monotone_in_replicas(self, small_problem):
        for i in range(small_problem.num_jobs):
            values = [small_problem.job_utility(i, x) for x in range(1, 15)]
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_utility_bounded(self, small_problem):
        for i in range(small_problem.num_jobs):
            for x in (1, 3.5, 7, 20):
                assert 0.0 <= small_problem.job_utility(i, x) <= 1.0

    def test_precise_mode_has_plateaus(self):
        jobs = [job(rates=(30.0,))]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(20), make_objective("sum"),
            relaxed=False, alpha=None,
        )
        # With a hard M/D/c the under-provisioned region is identically zero.
        assert problem.job_utility(0, 1) == 0.0
        assert problem.job_utility(0, 2) == 0.0

    def test_relaxed_mode_discriminates_overload(self):
        jobs = [job(rates=(30.0,))]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(20), make_objective("sum")
        )
        assert problem.job_utility(0, 2) > problem.job_utility(0, 1) > 0.0

    def test_upper_bound_latency_model(self):
        jobs = [job(rates=(30.0,))]
        upper = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(30), make_objective("sum"),
            latency_model="upper",
        )
        mdc = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(30), make_objective("sum")
        )
        # The pessimistic estimator needs more replicas for full utility.
        def first_full(problem):
            for x in range(1, 31):
                if problem.job_utility(0, x) >= 1.0 - 1e-9:
                    return x
            return 31

        assert first_full(upper) >= first_full(mdc)

    def test_unknown_latency_model(self):
        with pytest.raises(ValueError):
            AllocationProblem(
                [job()], ClusterCapacity.of_replicas(4), make_objective("sum"),
                latency_model="quantum",
            )

    def test_coldstart_blending_limits_immediate_gain(self):
        eager = job(rates=(30.0,))
        blended = job(rates=(30.0,), current_replicas=1, coldstart_weight=0.5)
        cap = ClusterCapacity.of_replicas(20)
        p_eager = AllocationProblem([eager], cap, make_objective("sum"))
        p_blend = AllocationProblem([blended], cap, make_objective("sum"))
        # With half the window served by the single current replica, the
        # utility of a big scale-up is strictly lower than the eager view.
        assert p_blend.job_utility(0, 10) < p_eager.job_utility(0, 10)

    def test_feasibility_helpers(self, small_problem):
        assert small_problem.is_feasible(np.array([4, 4, 4, 4, 4]))
        assert not small_problem.is_feasible(np.array([10, 4, 4, 4, 4]))
        assert not small_problem.is_feasible(np.array([0, 4, 4, 4, 4]))


class TestSolvers:
    @pytest.mark.parametrize("method", ["cobyla", "slsqp", "greedy"])
    def test_solution_feasible(self, small_problem, method):
        allocation = solve_allocation(small_problem, method=method)
        assert small_problem.is_feasible(allocation.replicas)

    def test_de_solver(self, small_jobs):
        problem = AllocationProblem(
            small_jobs, ClusterCapacity.of_replicas(20), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="de", maxiter=30, seed=1)
        assert problem.is_feasible(allocation.replicas)

    def test_unknown_method(self, small_problem):
        with pytest.raises(ValueError):
            solve_allocation(small_problem, method="annealing")

    def test_relaxed_cobyla_matches_greedy_reference(self, small_jobs):
        # Fig. 5: on the relaxed problem local solvers reach near-optimal.
        problem = AllocationProblem(
            small_jobs, ClusterCapacity.of_replicas(20), make_objective("sum")
        )
        cobyla = solve_allocation(problem, method="cobyla")
        greedy = solve_allocation(problem, method="greedy")
        assert cobyla.objective_value >= greedy.objective_value - 0.05

    def test_relaxed_beats_precise_for_local_solver(self):
        # Fig. 5's core claim: relaxation rescues plateau-stuck local solvers.
        jobs = [job(name=f"j{i}", rates=(25.0 + 5 * i,)) for i in range(4)]
        capacity = ClusterCapacity.of_replicas(30)
        precise = AllocationProblem(
            jobs, capacity, make_objective("sum"), relaxed=False, alpha=None
        )
        relaxed = AllocationProblem(jobs, capacity, make_objective("sum"))
        sol_precise = solve_allocation(precise, method="cobyla")
        sol_relaxed = solve_allocation(relaxed, method="cobyla")
        # Score both integer solutions on the *precise* objective.
        score_precise = precise.evaluate(sol_precise.replicas)
        score_relaxed = precise.evaluate(sol_relaxed.replicas)
        assert score_relaxed >= score_precise

    def test_capacity_saturation_with_heavy_load(self):
        jobs = [job(name=f"j{i}", rates=(40.0,)) for i in range(3)]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(12), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="greedy")
        assert allocation.replicas.sum() == 12  # all capacity used

    def test_min_replicas_respected(self):
        jobs = [job(name="a", rates=(0.1,), min_replicas=2), job(name="b", rates=(40.0,))]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(10), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="greedy")
        assert allocation.replicas[0] >= 2


class TestDrops:
    def test_drop_refinement_never_hurts_objective(self):
        # The grid refinement must return the best drop rate on the grid --
        # including 0.0 when dropping does not pay (the common case the
        # paper observes: penalties usually outweigh the latency relief).
        jobs = [job(rates=(30.0,))]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(2), make_objective("penaltysum")
        )
        allocation = solve_allocation(problem, method="greedy")
        no_drop = problem.evaluate(allocation.replicas, np.zeros(1))
        assert problem.evaluate(allocation.replicas, allocation.drops) >= no_drop - 1e-12
        best_grid = max(
            problem.evaluate(allocation.replicas, np.array([d]))
            for d in problem.drop_grid
        )
        assert problem.evaluate(allocation.replicas, allocation.drops) == pytest.approx(
            best_grid
        )

    def test_non_penalty_objective_never_drops(self, small_problem):
        allocation = solve_allocation(small_problem, method="cobyla")
        assert np.all(allocation.drops == 0.0)

    def test_no_drops_when_capacity_ample(self):
        jobs = [job(rates=(5.0,))]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(12), make_objective("penaltysum")
        )
        allocation = solve_allocation(problem, method="greedy")
        assert allocation.drops[0] == 0.0
