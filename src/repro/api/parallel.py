"""Sharded parallel sweep execution: fan an experiment out over processes.

The policy x scenario x trial grid of an :class:`ExperimentSpec` is
embarrassingly parallel: every trial derives its seed from the experiment's
base seed and the trial's *global* index alone
(:func:`repro.api.runner.derive_trial_seed`), so any partition of the grid
into :class:`TrialShard`\\ s produces exactly the per-trial results of the
serial loop.  This module supplies the partitioner (:func:`plan_shards`),
the worker entry point, and the driver (:func:`run_parallel`) that merges
worker outputs back into one :class:`~repro.api.runner.RunReport` via the
associative, order-invariant :meth:`RunReport.merge`.

Guarantees (pinned by ``tests/test_parallel_sweep.py`` and
``tests/test_parallel_faults.py``):

- **Bit-identical to serial**: for any worker count, shard granularity,
  and shard completion order, ``run_parallel(spec, ...).to_dict()`` equals
  ``run(spec).to_dict()``.
- **Fault isolation**: a shard that raises is reported in
  ``RunReport.failures``; every other shard still completes.
- **Resumability**: with a ``journal`` directory, completed shards are
  checkpointed (write-to-temp + atomic rename); ``resume=True`` loads them
  instead of recomputing, and the merged report matches an uninterrupted
  run.

Workers are ``spawn`` processes (fresh interpreters -- no inherited module
state, which is itself a determinism check) and may be warmed from a
persisted :class:`~repro.core.optimizer.UtilityTableCache` file; cache hits
are bit-for-bit identical to rebuilds, so warm-up never changes results.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import tempfile
import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.api.runner import (
    ProgressCallback,
    RunEvent,
    RunReport,
    ShardFailure,
    TrialStats,
    _emit,
    _validate_spec,
    run_policy,
)
from repro.api.spec import ExperimentSpec

__all__ = [
    "TrialShard",
    "ShardOutcome",
    "SweepInfo",
    "SweepJournal",
    "plan_shards",
    "run_parallel",
    "run_policies_parallel",
]


# ------------------------------------------------------------------ shards


@dataclass(frozen=True)
class TrialShard:
    """One unit of parallel work: a trial range of one scenario/policy cell.

    Shards are identified by spec positions (not names) so they can be
    planned, journaled, and dispatched without building any scenario in the
    parent process.
    """

    scenario_index: int
    policy_index: int
    trial_start: int
    trial_stop: int

    def __post_init__(self) -> None:
        if self.scenario_index < 0 or self.policy_index < 0:
            raise ValueError("shard indices must be >= 0")
        if not 0 <= self.trial_start < self.trial_stop:
            raise ValueError(
                f"need 0 <= trial_start < trial_stop, got "
                f"[{self.trial_start}, {self.trial_stop})"
            )

    @property
    def trials(self) -> int:
        return self.trial_stop - self.trial_start

    @property
    def shard_id(self) -> str:
        """Stable identifier used for journaling and failure reports."""
        return (
            f"s{self.scenario_index:03d}-p{self.policy_index:03d}"
            f"-t{self.trial_start:04d}-{self.trial_stop:04d}"
        )

    def trial_indices(self) -> tuple[int, ...]:
        return tuple(range(self.trial_start, self.trial_stop))


def _auto_trials_per_shard(trials: int, cells: int, workers: int) -> int:
    """Default shard granularity: split cells only when the grid is small.

    With at least one cell per worker, whole cells are the shard unit;
    otherwise each cell's trials split into enough ranges to occupy the
    pool.  (Pure load balancing -- granularity can never change results.)
    """
    shards_per_cell = min(trials, -(-workers // cells))  # ceil div
    return -(-trials // shards_per_cell)


def plan_shards(
    spec: ExperimentSpec,
    workers: int,
    trials_per_shard: int | None = None,
) -> list[TrialShard]:
    """Partition ``spec``'s scenario x policy x trial grid into shards.

    Every (scenario, policy) cell becomes at least one shard; when the
    grid has fewer cells than ``workers``, cells are split into trial
    ranges so the pool stays busy.  ``trials_per_shard`` overrides the
    automatic granularity.  Shard boundaries can never change results --
    trial seeds depend only on the global trial index -- so this is purely
    a load-balancing decision.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if trials_per_shard is not None and trials_per_shard < 1:
        raise ValueError(f"trials_per_shard must be >= 1, got {trials_per_shard}")
    if trials_per_shard is None:
        trials_per_shard = _auto_trials_per_shard(
            spec.trials, len(spec.scenarios) * len(spec.policies), workers
        )
    shards = []
    for scenario_index in range(len(spec.scenarios)):
        for policy_index in range(len(spec.policies)):
            for start in range(0, spec.trials, trials_per_shard):
                shards.append(
                    TrialShard(
                        scenario_index=scenario_index,
                        policy_index=policy_index,
                        trial_start=start,
                        trial_stop=min(start + trials_per_shard, spec.trials),
                    )
                )
    return shards


# ----------------------------------------------------------------- outcomes


@dataclass(frozen=True)
class ShardOutcome:
    """What a worker returns for one completed shard."""

    shard: TrialShard
    scenario_name: str
    policy_label: str
    stats: TrialStats


@dataclass
class SweepInfo:
    """Execution accounting for one sharded run (not part of ``to_dict``)."""

    workers: int
    shards_total: int = 0
    shards_run: int = 0
    shards_resumed: int = 0
    shards_failed: int = 0

    def as_row(self) -> list:
        return [
            self.workers,
            self.shards_total,
            self.shards_run,
            self.shards_resumed,
            self.shards_failed,
        ]


# ------------------------------------------------------------------ journal


def spec_digest(spec: ExperimentSpec) -> str:
    """Content digest of a spec, for journal compatibility checks.

    Canonical JSON of ``to_dict`` when the spec is serializable (always
    true for spec files); a pickle digest otherwise (programmatic specs
    carrying rich objects) -- journals are same-machine artifacts, so the
    weaker canonicality is acceptable there.
    """
    try:
        payload = json.dumps(spec.to_dict(), sort_keys=True).encode()
    except TypeError:
        payload = pickle.dumps(spec)
    return hashlib.sha256(payload).hexdigest()


class SweepJournal:
    """Crash-safe checkpoint directory for completed shards.

    Layout: ``meta.json`` records the spec digest; each completed shard is
    one ``shard-<id>.pkl`` holding its pickled :class:`ShardOutcome`.
    Writes go to a temp file in the same directory and are renamed into
    place, so a crash mid-write never leaves a truncated checkpoint that a
    later ``--resume`` would trust.
    """

    _META_VERSION = 1

    def __init__(self, path: str | Path, spec: ExperimentSpec) -> None:
        self.path = Path(path)
        self.digest = spec_digest(spec)

    def _meta_path(self) -> Path:
        return self.path / "meta.json"

    def _shard_path(self, shard: TrialShard) -> Path:
        return self.path / f"shard-{shard.shard_id}.pkl"

    def open(
        self,
        resume: bool,
        trials_per_shard: int,
        trials_per_shard_explicit: bool = False,
    ) -> int:
        """Create the journal directory, or validate it against the spec.

        Returns the shard granularity to plan with.  The journal records
        its ``trials_per_shard`` in ``meta.json`` because shard ids embed
        trial ranges: resuming with a different granularity would match no
        checkpoint and silently recompute everything.  On resume the
        recorded value wins (so ``--resume --workers 4`` after a
        ``--workers 8`` crash still reuses every checkpoint); an
        *explicitly* requested mismatch is an error.

        A journal written for a different spec (or with ``resume=False``
        while non-empty) is an error, not something to silently overwrite:
        mixing checkpoints across specs would merge unrelated results.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        meta_path = self._meta_path()
        if not meta_path.exists() and any(self.path.iterdir()):
            # A populated directory without our meta file is not a journal
            # -- adopting it would end with cleanup deleting someone
            # else's files.
            raise ValueError(
                f"journal directory {self.path} is not empty and has no "
                "meta.json; refusing to adopt it -- choose a fresh directory"
            )
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("spec_digest") != self.digest:
                raise ValueError(
                    f"journal {self.path} belongs to a different spec "
                    f"(digest {meta.get('spec_digest', '?')[:12]}... != "
                    f"{self.digest[:12]}...); use a fresh journal directory"
                )
            if not resume and any(self.path.glob("shard-*.pkl")):
                raise ValueError(
                    f"journal {self.path} already holds completed shards; "
                    "pass resume=True (--resume) to reuse them or choose a "
                    "fresh directory"
                )
            recorded = meta.get("trials_per_shard", trials_per_shard)
            if trials_per_shard_explicit and recorded != trials_per_shard:
                raise ValueError(
                    f"journal {self.path} was written with "
                    f"trials_per_shard={recorded}, cannot resume with "
                    f"{trials_per_shard}; drop --trials-per-shard or use a "
                    "fresh journal directory"
                )
            return int(recorded)
        self._atomic_write(
            meta_path,
            json.dumps(
                {
                    "version": self._META_VERSION,
                    "spec_digest": self.digest,
                    "trials_per_shard": trials_per_shard,
                },
                indent=2,
            ).encode(),
        )
        return trials_per_shard

    #: Version of the per-shard checkpoint payload.  v1 embeds the spec
    #: digest in every entry, so a checkpoint file copied (or symlinked)
    #: into another spec's journal is refused on its own evidence -- the
    #: meta.json check alone cannot see that.
    _ENTRY_VERSION = 1

    def load_completed(self, shards: Sequence[TrialShard]) -> dict[str, ShardOutcome]:
        """Outcomes of ``shards`` already checkpointed, by shard id.

        Every entry's own ``spec_digest`` is validated against this
        journal's spec; a mismatch (or a pre-digest legacy payload) is an
        error with a clear message, never a silent merge of another
        spec's results.
        """
        completed = {}
        for shard in shards:
            path = self._shard_path(shard)
            if not path.exists():
                continue
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict) or "spec_digest" not in payload:
                raise ValueError(
                    f"journal entry {path} has no spec digest (written by an "
                    "older version?); re-run without --resume or use a fresh "
                    "journal directory"
                )
            if payload["spec_digest"] != self.digest:
                raise ValueError(
                    f"journal entry {path} was written by a different spec "
                    f"(digest {payload['spec_digest'][:12]}... != "
                    f"{self.digest[:12]}...); use a fresh journal directory"
                )
            completed[shard.shard_id] = payload["outcome"]
        return completed

    def record(self, outcome: ShardOutcome) -> None:
        payload = {
            "version": self._ENTRY_VERSION,
            "spec_digest": self.digest,
            "outcome": outcome,
        }
        self._atomic_write(self._shard_path(outcome.shard), pickle.dumps(payload))

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


# ------------------------------------------------------------------ worker


@dataclass(frozen=True)
class _ShardJob:
    """Everything a spawn worker needs, in one picklable payload."""

    spec: ExperimentSpec
    shard: TrialShard
    event_queue: object | None = None
    inject_fail: bool = False
    #: When set, the worker merge-saves its table cache back to this file
    #: after the shard completes (exclusive-locked, merge-on-save -- see
    #: :meth:`UtilityTableCache.merge_save`).
    cache_write_back: str | None = None


def _warm_worker(cache_path: str | None) -> None:
    """Pool initializer: warm the process-wide table cache once per worker.

    Content problems are best-effort by design: a truncated/stale/corrupt
    cache file (EOFError, UnpicklingError, AttributeError, ...) degrades to
    cold tables, never to failed shards -- and cache hits are bit-identical
    to rebuilds, so results cannot differ either way.  (A *missing* file is
    caught earlier, in the driver, where it can fail fast and loudly.)
    """
    if cache_path is None:
        return
    try:
        from repro.core.optimizer import DEFAULT_TABLE_CACHE, UtilityTableCache

        DEFAULT_TABLE_CACHE.absorb(UtilityTableCache.load(cache_path))
    except Exception:
        pass


def _queue_progress(queue) -> ProgressCallback:
    def on_event(event: RunEvent) -> None:
        queue.put(event)

    return on_event


def _run_shard(job: _ShardJob) -> ShardOutcome:
    """Worker entry point: run one shard's trials and return its outcome.

    Runs in a ``spawn`` interpreter whose table cache :func:`_warm_worker`
    already primed (once per process, not per shard).
    """
    shard = job.shard
    if job.inject_fail:
        raise RuntimeError(f"injected fault in shard {shard.shard_id}")
    spec = job.spec
    from repro.traces.generators import trace_search_path

    # Pickling carries the `spec_dir` provenance field to the worker, so
    # spec-relative replay files resolve here too.
    with trace_search_path(spec.spec_dir):
        scenario = spec.scenarios[shard.scenario_index].build()
    policy_spec = spec.policies[shard.policy_index]
    progress = (
        _queue_progress(job.event_queue) if job.event_queue is not None else None
    )
    stats = run_policy(
        scenario,
        policy_spec,
        trials=shard.trials,
        simulator=spec.simulator,
        seed=spec.seed,
        predictor_profile=spec.predictor_profile,
        sim_overrides=spec.sim_overrides,
        backend_options=spec.backend_options,
        progress=progress,
        trial_offset=shard.trial_start,
        total_trials=spec.trials,
    )
    if job.cache_write_back is not None:
        from repro.core.optimizer import DEFAULT_TABLE_CACHE

        # Persist tables this shard built (merge-on-save under an exclusive
        # lock, so concurrent workers interleave instead of clobbering).
        DEFAULT_TABLE_CACHE.merge_save(job.cache_write_back)
    return ShardOutcome(
        shard=shard,
        scenario_name=scenario.name,
        policy_label=policy_spec.display_label,
        stats=stats,
    )


# ------------------------------------------------------------------ driver


_QUEUE_SENTINEL = None


def _drain_events(
    queue, progress: ProgressCallback, error_holder: list
) -> None:
    """Deliver queued events to the callback until the sentinel arrives.

    A raising callback must not kill the drainer silently: the error is
    parked in ``error_holder`` (later events are drained but not
    delivered) and re-raised on the main thread, so a faulty callback
    fails the run just like it would on the serial path.
    """
    while True:
        event = queue.get()
        if event is _QUEUE_SENTINEL:
            return
        if error_holder:
            continue
        try:
            progress(event)
        except BaseException as exc:  # re-raised by run_parallel
            error_holder.append(exc)


def run_parallel(
    spec: ExperimentSpec | str | Path,
    *,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    cache_path: str | Path | None = None,
    cache_write_back: bool = False,
    trials_per_shard: int | None = None,
    shard_order: Sequence[int] | None = None,
    inject_fail: Sequence[str] = (),
) -> RunReport:
    """Run a spec as independent shards on a ``spawn`` process pool.

    Returns a :class:`RunReport` whose ``to_dict()`` is bit-identical to
    the serial :func:`repro.api.run` for clean runs.  Shard failures are
    collected in ``report.failures`` (the corresponding trials are simply
    missing from ``report.stats``) instead of aborting the sweep; execution
    accounting lands in ``report.sweep``.

    ``journal`` names a checkpoint directory; with ``resume=True``,
    already-completed shards load from it instead of re-running.
    ``shard_order`` permutes submission order and ``inject_fail`` makes the
    named shards raise -- both exist for the differential/fault test
    suites (results must be invariant to the former; the latter exercises
    fault isolation deterministically across spawn boundaries).

    ``cache_write_back=True`` makes each worker persist the utility tables
    it built back into ``cache_path`` after every shard (merge-on-save
    under an exclusive lock, so concurrent workers never clobber each
    other); the file is created if missing.  Warm-up stays best-effort and
    results can never differ -- cache hits are bit-identical to rebuilds.
    """
    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.from_file(spec)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if trials_per_shard is not None and trials_per_shard < 1:
        raise ValueError(f"trials_per_shard must be >= 1, got {trials_per_shard}")
    if resume and journal is None:
        raise ValueError("resume=True requires a journal directory")
    if cache_write_back and cache_path is None:
        raise ValueError("cache_write_back requires a cache_path")
    if (
        cache_path is not None
        and not cache_write_back
        and not Path(cache_path).is_file()
    ):
        # A typo'd --cache must not silently run the whole sweep cold;
        # only *content* problems are best-effort (see _warm_worker).
        # With write-back the file may legitimately not exist yet -- the
        # first completed shard creates it.
        raise ValueError(f"cache file {cache_path} does not exist")
    from repro.traces.generators import trace_search_path

    with trace_search_path(spec.spec_dir):
        _validate_spec(spec)

    effective_tps = (
        trials_per_shard
        if trials_per_shard is not None
        else _auto_trials_per_shard(
            spec.trials, len(spec.scenarios) * len(spec.policies), workers
        )
    )
    sweep_journal = None
    if journal is not None:
        sweep_journal = SweepJournal(journal, spec)
        effective_tps = sweep_journal.open(
            resume,
            effective_tps,
            trials_per_shard_explicit=trials_per_shard is not None,
        )

    shards = plan_shards(spec, workers, trials_per_shard=effective_tps)
    if shard_order is not None:
        if sorted(shard_order) != list(range(len(shards))):
            raise ValueError(
                f"shard_order must be a permutation of range({len(shards)})"
            )
        shards = [shards[index] for index in shard_order]
    info = SweepInfo(workers=workers, shards_total=len(shards))

    completed: dict[str, ShardOutcome] = {}
    if sweep_journal is not None and resume:
        completed = sweep_journal.load_completed(shards)
        info.shards_resumed = len(completed)
    pending = [shard for shard in shards if shard.shard_id not in completed]

    inject = set(inject_fail)
    unknown_inject = inject - {shard.shard_id for shard in shards}
    if unknown_inject:
        raise ValueError(f"inject_fail names unknown shards: {sorted(unknown_inject)}")

    manager = None
    event_queue = None
    drainer = None
    callback_errors: list = []
    if progress is not None and pending:
        manager = multiprocessing.Manager()
        event_queue = manager.Queue()
        drainer = threading.Thread(
            target=_drain_events,
            args=(event_queue, progress, callback_errors),
            daemon=True,
        )
        drainer.start()

    def emit(event: RunEvent) -> None:
        # While the drainer lives, the main thread's shard events go
        # through the same queue as the workers' trial events, so the
        # user's callback is only ever invoked from one thread.
        if event_queue is not None:
            event_queue.put(event)
        else:
            _emit(progress, event)

    failures: list[ShardFailure] = []
    outcomes: list[ShardOutcome] = list(completed.values())
    try:
        if pending:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=context,
                initializer=_warm_worker,
                initargs=(str(cache_path) if cache_path is not None else None,),
            ) as pool:
                futures = {
                    pool.submit(
                        _run_shard,
                        _ShardJob(
                            spec=spec,
                            shard=shard,
                            event_queue=event_queue,
                            inject_fail=shard.shard_id in inject,
                            cache_write_back=(
                                str(cache_path) if cache_write_back else None
                            ),
                        ),
                    ): shard
                    for shard in pending
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        shard = futures[future]
                        try:
                            outcome = future.result()
                        except Exception as exc:
                            info.shards_failed += 1
                            failures.append(
                                ShardFailure(
                                    shard_id=shard.shard_id,
                                    scenario=_scenario_label(spec, shard),
                                    policy=spec.policies[
                                        shard.policy_index
                                    ].display_label,
                                    trials=shard.trial_indices(),
                                    error=_format_error(exc),
                                )
                            )
                            emit(
                                RunEvent(
                                    stage="shard-failed",
                                    policy=spec.policies[
                                        shard.policy_index
                                    ].display_label,
                                    detail=f"{shard.shard_id}: {exc}",
                                )
                            )
                            continue
                        info.shards_run += 1
                        outcomes.append(outcome)
                        if sweep_journal is not None:
                            sweep_journal.record(outcome)
                        emit(
                            RunEvent(
                                stage="shard-end",
                                scenario=outcome.scenario_name,
                                policy=outcome.policy_label,
                                detail=(
                                    f"{outcome.shard.shard_id}: lost_utility="
                                    f"{outcome.stats.lost_utility_mean:.3f}"
                                ),
                            )
                        )
    finally:
        if event_queue is not None:
            # The sentinel is already enqueued, so the drainer is
            # guaranteed to terminate once it works through the backlog;
            # an unbounded join (rather than a timeout) means no queued
            # event is ever dropped and the callback is never invoked
            # concurrently with the main thread's final run-end emit.
            event_queue.put(_QUEUE_SENTINEL)
            drainer.join()
        if manager is not None:
            manager.shutdown()
    if callback_errors:
        # Completed shards are already journaled, so a resume can pick up
        # from here; the faulty callback fails the run exactly as it
        # would have on the serial path.
        raise callback_errors[0]

    # Group shard outcomes per cell and merge each cell once (linear in
    # shards), then let RunReport.merge restore canonical spec ordering.
    cells: dict[tuple[str, str], list[TrialStats]] = {}
    scenario_index: dict[str, int] = {}
    for outcome in sorted(outcomes, key=lambda o: o.shard.shard_id):
        name = outcome.scenario_name
        if scenario_index.setdefault(name, outcome.shard.scenario_index) != (
            outcome.shard.scenario_index
        ):
            raise ValueError(
                f"two scenario specs built the same name {name!r}; set "
                "ScenarioSpec.name to disambiguate repeated kinds"
            )
        cells.setdefault((name, outcome.policy_label), []).append(outcome.stats)
    partial = RunReport(spec=spec, scenario_index=scenario_index)
    for (name, label), parts in cells.items():
        partial.stats.setdefault(name, {})[label] = (
            parts[0] if len(parts) == 1 else TrialStats.merged(parts)
        )
    report = RunReport(spec=spec, failures=failures).merge(partial)
    report.sweep = info
    _emit(
        progress,
        RunEvent(
            stage="run-end",
            detail=(
                f"{len(report.stats)} scenario(s), {info.shards_run} shard(s) run, "
                f"{info.shards_resumed} resumed, {info.shards_failed} failed"
            ),
        ),
    )
    return report


# ------------------------------------------------- built-scenario fan-out


@dataclass(frozen=True)
class _PolicyShardJob:
    """Worker payload for fan-out over an already-built scenario.

    The scenario itself is *not* here: it ships once per worker process
    via the pool initializer (:func:`_install_worker_scenario`), not once
    per shard -- traces for every job would otherwise be re-pickled for
    every trial range.  (Spec files are not involved; this is the path
    parameter sweeps over hand-built scenarios take, e.g.
    :func:`repro.experiments.sweeps.sweep_faro_config`.)
    """

    policy_spec: object  # PolicySpec
    trial_start: int
    trial_stop: int
    total_trials: int
    simulator: str
    seed: int
    predictor_profile: object = None
    sim_overrides: object = None
    backend_options: object = None


#: Per-worker-process scenario installed by :func:`_install_worker_scenario`.
_WORKER_SCENARIO = None


def _install_worker_scenario(scenario) -> None:
    global _WORKER_SCENARIO
    _WORKER_SCENARIO = scenario


def _run_policy_shard(job: _PolicyShardJob) -> TrialStats:
    return run_policy(
        _WORKER_SCENARIO,
        job.policy_spec,
        trials=job.trial_stop - job.trial_start,
        simulator=job.simulator,
        seed=job.seed,
        predictor_profile=job.predictor_profile,
        sim_overrides=job.sim_overrides,
        backend_options=job.backend_options,
        trial_offset=job.trial_start,
        total_trials=job.total_trials,
    )


def run_policies_parallel(
    scenario,
    policy_specs: Sequence,
    *,
    workers: int,
    trials: int = 1,
    simulator: str = "request",
    seed: int = 0,
    predictor_profile=None,
    sim_overrides=None,
    backend_options=None,
    trials_per_shard: int | None = None,
) -> list[TrialStats]:
    """Run several policies on one *built* scenario across a process pool.

    Returns one :class:`TrialStats` per entry of ``policy_specs``, in
    order, bit-identical to calling :func:`repro.api.runner.run_policy`
    serially for each (same :func:`derive_trial_seed` seeds; per-cell
    trials are merged with :meth:`TrialStats.merged`).  Unlike
    :func:`run_parallel` this path has no journal and no fault isolation:
    a failing shard raises, like the serial loop would.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not policy_specs:
        raise ValueError("policy_specs must be non-empty")
    if trials_per_shard is None:
        trials_per_shard = _auto_trials_per_shard(trials, len(policy_specs), workers)
    jobs = []
    for policy_index, policy_spec in enumerate(policy_specs):
        for start in range(0, trials, trials_per_shard):
            jobs.append(
                (
                    policy_index,
                    _PolicyShardJob(
                        policy_spec=policy_spec,
                        trial_start=start,
                        trial_stop=min(start + trials_per_shard, trials),
                        total_trials=trials,
                        simulator=simulator,
                        seed=seed,
                        predictor_profile=predictor_profile,
                        sim_overrides=sim_overrides,
                        backend_options=backend_options,
                    ),
                )
            )
    context = multiprocessing.get_context("spawn")
    parts: dict[int, list[TrialStats]] = {}
    with ProcessPoolExecutor(
        max_workers=min(workers, len(jobs)),
        mp_context=context,
        initializer=_install_worker_scenario,
        initargs=(scenario,),
    ) as pool:
        futures = [
            (policy_index, pool.submit(_run_policy_shard, job))
            for policy_index, job in jobs
        ]
        for policy_index, future in futures:
            parts.setdefault(policy_index, []).append(future.result())
    return [
        parts[index][0]
        if len(parts[index]) == 1
        else TrialStats.merged(parts[index])
        for index in range(len(policy_specs))
    ]


def _scenario_label(spec: ExperimentSpec, shard: TrialShard) -> str:
    """Best scenario name available without building it (failure reports)."""
    scenario_spec = spec.scenarios[shard.scenario_index]
    return scenario_spec.name or f"{scenario_spec.kind}[{shard.scenario_index}]"


def _format_error(exc: BaseException) -> str:
    """Exception text plus the worker-side traceback, when available.

    ``ProcessPoolExecutor`` chains the remote traceback text onto the
    re-raised exception as ``__cause__``; without it a shard failure would
    name the exception but not the file/line it crashed at.
    """
    text = "".join(traceback.format_exception_only(type(exc), exc)).strip()
    if exc.__cause__ is not None:
        text = f"{text}\n{str(exc.__cause__).strip()}"
    return text
