"""Neural-network building blocks and optimizers."""

import numpy as np
import pytest

from repro.autodiff import MLP, Adam, Linear, LSTMCell, Module, Parameter, SGD, Tensor


class TestParameterCollection:
    def test_linear_params(self, rng):
        layer = Linear(3, 2, rng)
        params = layer.parameters()
        assert len(params) == 2
        assert layer.num_parameters() == 3 * 2 + 2

    def test_nested_modules_and_lists(self, rng):
        class Net(Module):
            def __init__(self):
                self.blocks = [Linear(2, 2, rng), Linear(2, 1, rng)]
                self.extra = Parameter(np.zeros(3))

        net = Net()
        assert len(net.parameters()) == 5

    def test_shared_parameter_counted_once(self, rng):
        class Net(Module):
            def __init__(self):
                self.a = Parameter(np.zeros(2))
                self.b = self.a

        assert len(Net().parameters()) == 1

    def test_zero_grad(self, rng):
        layer = Linear(2, 1, rng)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinearAndMLP:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 3)

    def test_mlp_forward(self, rng):
        mlp = MLP([4, 8, 2], rng)
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_mlp_needs_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP([2, 2], rng, activation="swish")

    def test_mlp_learns_linear_map(self, rng):
        # y = x @ W_true; a small MLP should fit it quickly with Adam.
        w_true = rng.normal(size=(3, 1))
        x = rng.normal(size=(64, 3))
        y = x @ w_true
        mlp = MLP([3, 16, 1], rng)
        optimizer = Adam(mlp.parameters(), lr=1e-2)
        first_loss = None
        for step in range(150):
            pred = mlp(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.05 * first_loss


class TestLSTMCell:
    def test_shapes(self, rng):
        cell = LSTMCell(2, 5, rng)
        h, c = cell(Tensor(np.zeros((3, 2))))
        assert h.shape == (3, 5) and c.shape == (3, 5)

    def test_state_threading(self, rng):
        cell = LSTMCell(1, 4, rng)
        x = Tensor(np.ones((2, 1)))
        state = cell(x)
        h2, c2 = cell(x, state)
        assert h2.shape == (2, 4)
        assert not np.allclose(h2.numpy(), state[0].numpy())

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(1, 3, rng)
        bias = cell.bias.numpy()
        assert np.all(bias[3:6] == 1.0)
        assert np.all(bias[:3] == 0.0)

    def test_gradient_flows_through_time(self, rng):
        cell = LSTMCell(1, 3, rng)
        x = Tensor(rng.normal(size=(2, 1)))
        state = None
        for _ in range(4):
            state = cell(x, state)
        loss = (state[0] ** 2).sum()
        loss.backward()
        assert cell.weight.grad is not None
        assert np.any(cell.weight.grad != 0.0)


class TestOptimizers:
    def quadratic(self, optimizer_cls, **kwargs):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(300):
            loss = ((param - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return param.numpy(), target

    def test_sgd_converges(self):
        value, target = self.quadratic(SGD, lr=0.1)
        assert np.allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = self.quadratic(SGD, lr=0.05, momentum=0.9)
        assert np.allclose(value, target, atol=1e-2)

    def test_adam_converges(self):
        value, target = self.quadratic(Adam, lr=0.1)
        assert np.allclose(value, target, atol=1e-2)

    def test_adam_clips_gradients(self):
        param = Parameter(np.array([1e6]))
        optimizer = Adam([param], lr=1.0, clip_norm=1.0)
        loss = (param**2).sum()
        loss.backward()
        optimizer._clip()
        assert np.linalg.norm(param.grad) <= 1.0 + 1e-9

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
