"""Simulation results: per-minute series and paper metrics.

The paper's metrics (§6 "Metrics"):

- **job SLO violation rate** = requests violating the latency SLO (dropped
  requests included) / total incoming requests;
- **cluster SLO violation rate** = average of job violation rates;
- **utility** = inverse utility (Eq. 1) of the job's per-minute percentile
  latency; **cluster utility** = sum over jobs;
- **lost (cluster) utility** = max possible utility - actual utility
  (Eq. 4), averaged over the run;
- **effective utility** applies the drop penalty multiplier (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["JobSeries", "SimulationResult"]


@dataclass
class JobSeries:
    """Per-minute evaluation series for one job."""

    name: str
    arrivals: np.ndarray
    drops: np.ndarray
    violations: np.ndarray
    latency_p: np.ndarray
    utility: np.ndarray
    effective_utility: np.ndarray
    replicas: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.arrivals),
            len(self.drops),
            len(self.violations),
            len(self.latency_p),
            len(self.utility),
            len(self.effective_utility),
            len(self.replicas),
        }
        if len(lengths) != 1:
            raise ValueError(f"inconsistent series lengths for job {self.name}")

    @property
    def minutes(self) -> int:
        return len(self.arrivals)

    @property
    def total_arrivals(self) -> int:
        return int(self.arrivals.sum())

    @property
    def slo_violation_rate(self) -> float:
        """Violating requests / total incoming requests over the run."""
        total = self.arrivals.sum()
        return float(self.violations.sum() / total) if total else 0.0

    @property
    def drop_fraction(self) -> float:
        total = self.arrivals.sum()
        return float(self.drops.sum() / total) if total else 0.0

    @property
    def mean_utility(self) -> float:
        return float(self.utility.mean()) if self.minutes else 1.0

    @property
    def mean_lost_utility(self) -> float:
        return 1.0 - self.mean_utility

    @property
    def mean_effective_utility(self) -> float:
        return float(self.effective_utility.mean()) if self.minutes else 1.0


@dataclass
class SimulationResult:
    """All jobs' series plus cluster-level aggregates."""

    jobs: dict[str, JobSeries]
    policy_name: str = "policy"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("result must contain at least one job")
        minute_counts = {series.minutes for series in self.jobs.values()}
        if len(minute_counts) != 1:
            raise ValueError("all jobs must cover the same minutes")

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def minutes(self) -> int:
        return next(iter(self.jobs.values())).minutes

    # ------------------------------------------------------------ cluster

    def cluster_utility_timeline(self) -> np.ndarray:
        """Sum of per-job utilities per minute (max = number of jobs)."""
        return np.sum([series.utility for series in self.jobs.values()], axis=0)

    def cluster_effective_utility_timeline(self) -> np.ndarray:
        return np.sum(
            [series.effective_utility for series in self.jobs.values()], axis=0
        )

    def workload_timeline(self) -> np.ndarray:
        """Total incoming requests per minute across jobs."""
        return np.sum([series.arrivals for series in self.jobs.values()], axis=0)

    @property
    def avg_cluster_utility(self) -> float:
        return float(self.cluster_utility_timeline().mean())

    @property
    def avg_lost_cluster_utility(self) -> float:
        """Paper Eq. 4 averaged over the run (max utility = job count)."""
        return self.num_jobs - self.avg_cluster_utility

    @property
    def avg_lost_effective_utility(self) -> float:
        return self.num_jobs - float(self.cluster_effective_utility_timeline().mean())

    @property
    def cluster_slo_violation_rate(self) -> float:
        """Average of per-job SLO violation rates (paper definition)."""
        rates = [series.slo_violation_rate for series in self.jobs.values()]
        return float(np.mean(rates))

    def violation_rate_timeline(self) -> np.ndarray:
        """Average per-minute violation rate across jobs."""
        per_job = []
        for series in self.jobs.values():
            with np.errstate(divide="ignore", invalid="ignore"):
                rate = np.where(
                    series.arrivals > 0, series.violations / np.maximum(series.arrivals, 1), 0.0
                )
            per_job.append(rate)
        return np.mean(per_job, axis=0)

    def lost_job_utilities(self) -> dict[str, float]:
        """Per-job average lost utility (Fig. 12's box-plot data)."""
        return {name: series.mean_lost_utility for name, series in self.jobs.items()}

    def summary(self) -> dict:
        """Headline numbers used by the experiment reports."""
        return {
            "policy": self.policy_name,
            "avg_lost_cluster_utility": self.avg_lost_cluster_utility,
            "avg_lost_effective_utility": self.avg_lost_effective_utility,
            "cluster_slo_violation_rate": self.cluster_slo_violation_rate,
            "avg_cluster_utility": self.avg_cluster_utility,
            "num_jobs": self.num_jobs,
            "minutes": self.minutes,
        }
