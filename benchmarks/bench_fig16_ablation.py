"""Fig. 16: ablation study -- Faro's components added one at a time.

Paper shape (lost cluster utility, FairSum, cluster sizes 32/36/40):
relaxation is the biggest lever (2.1x-3.7x); M/D/c estimation and
prediction each contribute up to ~1.1x; the hybrid reactive path up to
1.42x; shrinking alone *hurts* (up to 1.25x) and probabilistic prediction
recovers it (up to 1.36x).
"""

from benchmarks.conftest import BENCH_MINUTES, BENCH_PROFILE, write_result
from repro.experiments.ablation import ABLATION_ORDER, ablation_policy_factory
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials

PAPER_SO = {
    "w/o relaxation": 2.11,
    "w/ relaxation": 1.00,
    "w/ M/D/c queue": 0.96,
    "w/ prediction": 0.87,
    "w/ hybrid": 0.78,
    "w/ shrinking": 0.78,
    "w/ prob. pred.": 0.78,
}


def test_fig16_ablation(benchmark, bench_cache):
    scenario = bench_cache.scenario("SO", BENCH_MINUTES)

    def run():
        lost = {}
        for stage in ABLATION_ORDER:
            factory = ablation_policy_factory(
                stage, objective="fairsum", predictor_profile=BENCH_PROFILE
            )
            stats = run_trials(
                scenario, stage, trials=1, seed=0, policy_factory=factory
            )
            lost[stage] = stats.lost_utility_mean
        return lost

    lost = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (stage, PAPER_SO[stage], lost[stage]) for stage in ABLATION_ORDER
    ]
    rows.append(
        (
            "relaxation improvement",
            "2.1x-3.7x",
            f"{lost['w/o relaxation'] / max(lost['w/ relaxation'], 1e-9):.1f}x",
        )
    )
    text = format_table(
        ["component stack (lost utility)", "paper (size 32)", "measured"],
        rows,
        title="== Fig. 16: ablation study (SO cluster, FairSum) ==",
    )
    write_result("fig16_ablation", text)

    # Relaxation is the single biggest component...
    assert lost["w/o relaxation"] > 1.25 * lost["w/ relaxation"]
    # ...and the full stack compounds to a large end-to-end improvement.
    assert lost["w/o relaxation"] > 2.0 * lost["w/ prob. pred."]
    # The full stack is at least as good as the relaxation-only rung.
    assert lost["w/ prob. pred."] <= lost["w/ relaxation"] * 1.1
