"""Admission-control tests (repro.admission)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import AdmissionController, AdmissionDecision, AdmissionRequest
from repro.core.latency import MDC, replicas_for_slo
from repro.core.utility import SLO

SLO_720 = SLO(target=0.72, percentile=99.0)


def request(name="new", rate=20.0, proc=0.18, priority=1.0):
    return AdmissionRequest(
        name=name, slo=SLO_720, proc_time=proc, planning_rate=rate, priority=priority
    )


class TestAdmissionRequest:
    @pytest.mark.parametrize("proc,rate,prio", [(0.0, 1.0, 1.0), (0.1, -1.0, 1.0), (0.1, 1.0, 0.0)])
    def test_invalid(self, proc, rate, prio):
        with pytest.raises(ValueError):
            AdmissionRequest(
                name="x", slo=SLO_720, proc_time=proc, planning_rate=rate, priority=prio
            )


class TestControllerRegistry:
    def test_register_and_remove(self):
        ctl = AdmissionController(capacity_replicas=16)
        ctl.register(request("a"))
        assert "a" in ctl.jobs
        ctl.remove("a")
        assert "a" not in ctl.jobs

    def test_duplicate_register_rejected(self):
        ctl = AdmissionController(capacity_replicas=16)
        ctl.register(request("a"))
        with pytest.raises(ValueError):
            ctl.register(request("a"))

    def test_remove_unknown_raises(self):
        ctl = AdmissionController(capacity_replicas=16)
        with pytest.raises(KeyError):
            ctl.remove("ghost")

    def test_update_rate(self):
        ctl = AdmissionController(capacity_replicas=16)
        ctl.register(request("a", rate=5.0))
        ctl.update_rate("a", 50.0)
        assert ctl.jobs["a"].planning_rate == 50.0

    def test_update_unknown_raises(self):
        ctl = AdmissionController(capacity_replicas=16)
        with pytest.raises(KeyError):
            ctl.update_rate("ghost", 1.0)

    @pytest.mark.parametrize("kwargs", [
        {"capacity_replicas": 0},
        {"capacity_replicas": 8, "policy": "vibes"},
        {"capacity_replicas": 8, "utility_floor": 1.5},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestCapacityPolicy:
    def test_admits_into_empty_cluster(self):
        ctl = AdmissionController(capacity_replicas=16)
        decision = ctl.admit(request("a", rate=20.0))
        assert decision.admitted
        assert "a" in ctl.jobs
        assert decision.required_replicas == replicas_for_slo(MDC, 0.99, 20.0, 0.18, 0.72)

    def test_rejects_when_full(self):
        ctl = AdmissionController(capacity_replicas=8)
        assert ctl.admit(request("a", rate=30.0)).admitted
        decision = ctl.admit(request("b", rate=30.0))
        assert not decision.admitted
        assert "b" not in ctl.jobs
        assert "rejected" in decision.reason

    def test_departure_frees_capacity(self):
        ctl = AdmissionController(capacity_replicas=8)
        ctl.admit(request("a", rate=30.0))
        assert not ctl.evaluate(request("b", rate=30.0)).admitted
        ctl.remove("a")
        assert ctl.evaluate(request("b", rate=30.0)).admitted

    def test_evaluate_does_not_register(self):
        ctl = AdmissionController(capacity_replicas=16)
        ctl.evaluate(request("a"))
        assert "a" not in ctl.jobs

    def test_evaluate_registered_name_rejected(self):
        ctl = AdmissionController(capacity_replicas=16)
        ctl.register(request("a"))
        with pytest.raises(ValueError):
            ctl.evaluate(request("a"))

    def test_zero_rate_job_needs_one_replica(self):
        ctl = AdmissionController(capacity_replicas=4)
        decision = ctl.evaluate(request("idle", rate=0.0))
        assert decision.admitted
        assert decision.required_replicas == 1

    @settings(max_examples=20, deadline=None)
    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=40.0), min_size=1, max_size=5),
        capacity=st.integers(min_value=4, max_value=64),
    )
    def test_admitted_set_always_fits(self, rates, capacity):
        # Whatever the arrival order, every admitted set fits the capacity.
        ctl = AdmissionController(capacity_replicas=capacity)
        for i, rate in enumerate(rates):
            ctl.admit(request(f"j{i}", rate=rate))
        total_needed = sum(
            replicas_for_slo(MDC, 0.99, job.planning_rate, job.proc_time, job.slo.target)
            for job in ctl.jobs.values()
        )
        assert total_needed <= capacity


class TestUtilityPolicy:
    def test_admits_when_utility_preserved(self):
        ctl = AdmissionController(capacity_replicas=24, policy="utility", utility_floor=0.9)
        ctl.register(request("a", rate=20.0))
        decision = ctl.admit(request("b", rate=20.0))
        assert decision.admitted
        assert decision.min_utility is not None
        assert decision.min_utility >= 0.9

    def test_rejects_when_existing_jobs_would_starve(self):
        ctl = AdmissionController(capacity_replicas=10, policy="utility", utility_floor=0.95)
        ctl.register(request("a", rate=35.0))  # needs ~8 replicas alone
        decision = ctl.admit(request("b", rate=35.0))
        assert not decision.admitted
        assert decision.min_utility is not None
        assert decision.min_utility < 0.95

    def test_admits_more_than_capacity_policy_when_floor_is_low(self):
        # A permissive floor admits into oversubscription where the
        # guarantee-style capacity check refuses.
        rate = 30.0
        cap = 12
        strict = AdmissionController(capacity_replicas=cap, policy="capacity")
        loose = AdmissionController(capacity_replicas=cap, policy="utility", utility_floor=0.3)
        strict.register(request("a", rate=rate))
        loose.register(request("a", rate=rate))
        newcomer = request("b", rate=rate)
        assert not strict.evaluate(newcomer).admitted
        assert loose.evaluate(newcomer).admitted

    def test_empty_cluster_short_circuit(self):
        ctl = AdmissionController(capacity_replicas=8, policy="utility")
        decision = ctl.evaluate(request("first", rate=10.0))
        assert decision.admitted
        assert decision.min_utility == 1.0


class TestDecisionShape:
    def test_decision_fields(self):
        ctl = AdmissionController(capacity_replicas=16)
        decision = ctl.evaluate(request("a", rate=10.0))
        assert isinstance(decision, AdmissionDecision)
        assert decision.capacity_replicas == 16
        assert decision.cluster_required == decision.required_replicas
        assert "capacity check" in decision.reason
