"""Scenario construction: build + trace-generation wall-clock at scale.

The composition redesign's performance contract, pinned for the perf gate
(``tools/check_perf.py`` vs ``results/BENCH_scenarios.json``):

- building the paper's scenario kinds must stay cheap as the job count
  grows (trace generation dominates; it is linear in jobs x days), and
- the fully-composed (``lower()``-ed) path may not cost materially more
  than the factory sugar it replaces: a registry of sources/transforms
  behind typed specs is an API, not a tax.

Points are measured at 10/100/500 jobs over short 2-day traces so the
bench finishes in seconds while still scaling the part that matters (the
number of generator/transform invocations).  Absolute numbers are
machine-dependent; the gate compares against the checked-in baseline with
a generous tolerance.
"""

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_result
from repro import api
from repro.experiments.report import format_table

#: Job counts the gate tracks.
BENCH_JOB_COUNTS = (10, 100, 500)

#: Short traces keep the bench fast; scaling happens in the job count.
BENCH_DAYS = 2

#: Largest composed/factory build-cost ratio the perf gate tolerates.
GATED_COMPOSED_OVERHEAD = 1.5


def _scenario_spec(num_jobs: int) -> api.ScenarioSpec:
    return api.ScenarioSpec(
        kind="large-scale",
        params={
            "num_jobs": num_jobs,
            "total_replicas": 4 * num_jobs,
            "duration_minutes": 30,
            "days": BENCH_DAYS,
        },
    )


def _time_build(spec: api.ScenarioSpec, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        scenario = spec.build()
        best = min(best, time.perf_counter() - started)
        assert len(scenario.jobs) >= 1
    return best


def run_scenario_bench() -> dict:
    points = []
    for num_jobs in BENCH_JOB_COUNTS:
        # Small grids are repeated: sub-100ms points on a busy box would
        # otherwise gate on scheduler noise.
        repeats = 3 if num_jobs <= 100 else 1
        spec = _scenario_spec(num_jobs)
        factory_s = _time_build(spec, repeats)
        lowered = spec.lower()
        composed_s = _time_build(lowered, repeats)
        points.append({"name": f"factory-{num_jobs}", "jobs": num_jobs,
                       "wall_s": factory_s})
        points.append({"name": f"composed-{num_jobs}", "jobs": num_jobs,
                       "wall_s": composed_s})
    by_name = {p["name"]: p["wall_s"] for p in points}
    return {
        "days": BENCH_DAYS,
        "job_counts": list(BENCH_JOB_COUNTS),
        "composed_overhead_at_500": (
            by_name["composed-500"] / by_name["factory-500"]
        ),
        "gated_composed_overhead": GATED_COMPOSED_OVERHEAD,
        "points": points,
    }


def test_scenario_build_bench(benchmark):
    data = benchmark.pedantic(run_scenario_bench, rounds=1, iterations=1)

    by_name = {p["name"]: p["wall_s"] for p in data["points"]}
    rows = []
    for num_jobs in BENCH_JOB_COUNTS:
        factory_s = by_name[f"factory-{num_jobs}"]
        composed_s = by_name[f"composed-{num_jobs}"]
        rows.append(
            [
                f"{num_jobs} jobs",
                f"{factory_s * 1000:.0f}ms",
                f"{composed_s * 1000:.0f}ms",
                f"{composed_s / factory_s:.2f}x",
            ]
        )
    text = format_table(
        ["grid", "factory build", "composed build", "composed/factory"],
        rows,
        title=f"== Scenario build + trace generation ({BENCH_DAYS}-day traces) ==",
    )
    write_result("scenario_build", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scenarios.json").write_text(json.dumps(data, indent=2) + "\n")

    # The composed path must stay in the same cost class as the factory
    # sugar (generous bound: both are dominated by identical trace
    # generation; the spec layer adds parsing/validation only).
    assert data["composed_overhead_at_500"] < GATED_COMPOSED_OVERHEAD
