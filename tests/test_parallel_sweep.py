"""Differential tests: the sharded executor is bit-identical to serial.

The whole value of :mod:`repro.api.parallel` rests on one claim -- that no
choice of worker count, shard granularity, or shard completion order can
change a single bit of the report.  These tests pin that claim directly
(``json.dumps`` equality of ``RunReport.to_dict()`` against the serial
engine) and property-test the algebra underneath it: the associative,
order-invariant :meth:`RunReport.merge` / :meth:`TrialStats.merged`.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.api.parallel import plan_shards, run_policies_parallel
from repro.api.runner import RunReport, TrialStats

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def tiny_spec(scenario_kinds=("paper",), trials=2, policies=("fairshare", "aiad")):
    scenarios = []
    for kind in scenario_kinds:
        if kind == "paper":
            scenarios.append(
                api.ScenarioSpec(
                    kind="paper",
                    params={
                        "size": 8,
                        "num_jobs": 2,
                        "duration_minutes": 8,
                        "days": 2,
                        "rate_hi": 300.0,
                    },
                    name="tiny-paper",
                )
            )
        else:
            scenarios.append(
                api.ScenarioSpec(
                    kind="mixed",
                    params={
                        "total_replicas": 8,
                        "num_jobs": 2,
                        "duration_minutes": 8,
                        "days": 2,
                    },
                    name="tiny-mixed",
                )
            )
    return api.ExperimentSpec.compare(
        "tiny-parallel",
        scenarios,
        list(policies),
        trials=trials,
        simulator="flow",
        predictor_profile={"epochs": 1, "max_windows": 64},
    )


def canonical(report: RunReport) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


# ----------------------------------------------------------- differential


class TestDifferential:
    def test_one_worker_matches_serial(self):
        spec = tiny_spec()
        serial = api.run(spec)
        parallel = api.run_parallel(spec, workers=1)
        assert canonical(parallel) == canonical(serial)
        # Key order (scenario/policy iteration order) matches too, so the
        # serialized report files are byte-identical, not just dict-equal.
        assert json.dumps(parallel.to_dict()) == json.dumps(serial.to_dict())

    def test_two_workers_shuffled_shards_match_serial(self):
        spec = tiny_spec(scenario_kinds=("paper", "mixed"))
        serial = api.run(spec)
        n = len(plan_shards(spec, 2))
        order = list(reversed(range(n)))
        parallel = api.run_parallel(spec, workers=2, shard_order=order)
        assert json.dumps(parallel.to_dict()) == json.dumps(serial.to_dict())
        assert tuple(parallel.stats) == tuple(serial.stats)

    def test_run_workers_kwarg_routes_to_parallel(self):
        spec = tiny_spec()
        serial = api.run(spec)
        parallel = api.run(spec, workers=2)
        assert parallel.sweep is not None and parallel.sweep.workers == 2
        assert json.dumps(parallel.to_dict()) == json.dumps(serial.to_dict())

    @pytest.mark.slow
    def test_four_workers_single_trial_shards_match_serial(self):
        """Finest granularity (one trial per shard), shuffled, 4 workers."""
        spec = tiny_spec(scenario_kinds=("paper", "mixed"), trials=3)
        serial = api.run(spec)
        shards = plan_shards(spec, 4, trials_per_shard=1)
        # Deterministic shuffle (no RNG: reverse + interleave halves).
        half = len(shards) // 2
        order = [
            index
            for pair in zip(
                reversed(range(half)), reversed(range(half, len(shards)))
            )
            for index in pair
        ]
        order += [i for i in range(len(shards)) if i not in set(order)]
        parallel = api.run_parallel(
            spec, workers=4, trials_per_shard=1, shard_order=order
        )
        assert json.dumps(parallel.to_dict()) == json.dumps(serial.to_dict())

    def test_repeated_run_in_one_process_is_bit_identical(self):
        """Serial engine has no hidden cross-run state (module RNG etc.)."""
        spec = tiny_spec()
        assert canonical(api.run(spec)) == canonical(api.run(spec))

    def test_raising_progress_callback_fails_like_serial(self, tmp_path):
        """A faulty callback must surface on both paths, not be swallowed
        by the drainer thread -- and completed shards stay journaled."""
        spec = tiny_spec()

        def boom(event):
            raise RuntimeError("telemetry broke")

        with pytest.raises(RuntimeError, match="telemetry broke"):
            api.run(spec, progress=boom)
        journal = tmp_path / "journal"
        with pytest.raises(RuntimeError, match="telemetry broke"):
            api.run_parallel(spec, workers=2, progress=boom, journal=journal)
        assert list(journal.glob("shard-*.pkl"))  # resumable

    def test_parallel_trial_events_use_global_indices(self):
        spec = tiny_spec(trials=2)
        events = []
        api.run_parallel(spec, workers=2, progress=events.append)
        trial_ends = sorted(
            (e.policy, e.trial) for e in events if e.stage == "trial-end"
        )
        assert trial_ends == [("aiad", 0), ("aiad", 1), ("fairshare", 0), ("fairshare", 1)]
        assert all(e.trials == 2 for e in events if e.stage == "trial-end")
        assert [e.stage for e in events if e.stage == "run-end"] == ["run-end"]


class TestPlanShards:
    def test_covers_grid_exactly(self):
        spec = tiny_spec(scenario_kinds=("paper", "mixed"), trials=5)
        for workers, trials_per_shard in [(1, None), (4, None), (16, None), (2, 2)]:
            shards = plan_shards(spec, workers, trials_per_shard=trials_per_shard)
            seen = set()
            for shard in shards:
                for trial in shard.trial_indices():
                    key = (shard.scenario_index, shard.policy_index, trial)
                    assert key not in seen, f"duplicate {key}"
                    seen.add(key)
            assert len(seen) == 2 * 2 * 5

    def test_more_workers_than_cells_splits_trials(self):
        spec = tiny_spec(trials=4)  # 1 scenario x 2 policies
        assert len(plan_shards(spec, 1)) == 2
        assert len(plan_shards(spec, 8)) == 8  # 2 cells x 4 single-trial shards

    def test_shard_id_stable(self):
        spec = tiny_spec(trials=4)
        shard = plan_shards(spec, 8)[0]
        assert shard.shard_id == "s000-p000-t0000-0001"

    def test_bad_arguments(self):
        spec = tiny_spec()
        with pytest.raises(ValueError):
            plan_shards(spec, 0)
        with pytest.raises(ValueError):
            plan_shards(spec, 2, trials_per_shard=0)
        with pytest.raises(ValueError):
            api.run_parallel(spec, workers=2, shard_order=[0])  # not a permutation


class TestRunPoliciesParallel:
    def test_matches_serial_run_policy(self):
        spec = tiny_spec()
        scenario = spec.scenarios[0].build()
        policies = [api.PolicySpec(name="fairshare"), api.PolicySpec(name="aiad")]
        serial = [
            api.run_policy(
                scenario,
                p,
                trials=2,
                simulator="flow",
                seed=0,
            )
            for p in policies
        ]
        parallel = run_policies_parallel(
            scenario, policies, workers=2, trials=2, simulator="flow", seed=0
        )
        for s, p in zip(serial, parallel):
            assert s.to_summary_dict() == p.to_summary_dict()
            assert p.trial_indices == [0, 1]


# ------------------------------------------------------- merge properties


def fake_result(value: float):
    """Stand-in for SimulationResult: just the three merged metrics."""

    class _Result:
        def __init__(self, v):
            self.avg_lost_cluster_utility = v
            self.avg_lost_effective_utility = v / 2.0
            self.cluster_slo_violation_rate = v / 10.0

        def __eq__(self, other):
            return self.avg_lost_cluster_utility == other.avg_lost_cluster_utility

    return _Result(value)


def synthetic_report(spec, cell_trials, scenario_names=("sc-a", "sc-b")):
    """Full report over spec's grid with the given per-trial values."""
    report = RunReport(spec=spec)
    for s_index, scenario in enumerate(scenario_names):
        report.scenario_index[scenario] = s_index
        per_policy = {}
        for label in (p.display_label for p in spec.policies):
            values = cell_trials[(scenario, label)]
            per_policy[label] = TrialStats.from_results(
                label,
                [fake_result(v) for v in values],
                trial_indices=list(range(len(values))),
            )
        report.stats[scenario] = per_policy
    return report


def split_report(spec, report, assignment):
    """Partition ``report`` into one partial report per worker id.

    ``assignment`` maps (scenario, label, trial_index) -> worker id.
    """
    partials = {}
    for scenario, per_policy in report.stats.items():
        for label, stats in per_policy.items():
            for position, trial_index in enumerate(stats.trial_indices):
                worker = assignment[(scenario, label, trial_index)]
                partial = partials.setdefault(
                    worker, RunReport(spec=spec, scenario_index={})
                )
                partial.scenario_index[scenario] = report.scenario_index[scenario]
                cell = partial.stats.setdefault(scenario, {})
                if label in cell:
                    cell[label] = TrialStats.merged(
                        [
                            cell[label],
                            TrialStats.from_results(
                                label,
                                [stats.results[position]],
                                trial_indices=[trial_index],
                            ),
                        ]
                    )
                else:
                    cell[label] = TrialStats.from_results(
                        label,
                        [stats.results[position]],
                        trial_indices=[trial_index],
                    )
    return list(partials.values())


@st.composite
def merge_case(draw):
    """A synthetic full report plus a random partition of its trials."""
    trials = draw(st.integers(min_value=1, max_value=5))
    workers = draw(st.integers(min_value=1, max_value=4))
    spec = api.ExperimentSpec.compare(
        "merge-prop",
        [
            api.ScenarioSpec(kind="paper", name="sc-a"),
            api.ScenarioSpec(kind="paper", name="sc-b"),
        ],
        ["fairshare", "aiad"],
        trials=trials,
    )
    values = st.floats(
        min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
    )
    cell_trials = {}
    assignment = {}
    for scenario in ("sc-a", "sc-b"):
        for label in ("fairshare", "aiad"):
            cell_trials[(scenario, label)] = [draw(values) for _ in range(trials)]
            for trial in range(trials):
                assignment[(scenario, label, trial)] = draw(
                    st.integers(min_value=0, max_value=workers - 1)
                )
    permutation = draw(st.permutations(list(range(workers))))
    return spec, cell_trials, assignment, permutation


class TestMergeProperties:
    @settings(max_examples=40, deadline=None)
    @given(case=merge_case())
    def test_merge_of_any_partition_in_any_order_restores_report(self, case):
        spec, cell_trials, assignment, permutation = case
        full = synthetic_report(spec, cell_trials)
        partials = split_report(spec, full, assignment)
        ordered = [partials[i] for i in permutation if i < len(partials)]
        merged = RunReport(spec=spec)
        for partial in ordered:
            merged = merged.merge(partial)
        assert json.dumps(merged.to_dict(), sort_keys=True) == json.dumps(
            full.to_dict(), sort_keys=True
        )
        assert tuple(merged.stats) == tuple(full.stats)
        for scenario in full.stats:
            assert tuple(merged.stats[scenario]) == tuple(full.stats[scenario])

    @settings(max_examples=20, deadline=None)
    @given(case=merge_case())
    def test_merge_is_associative(self, case):
        spec, cell_trials, assignment, _ = case
        full = synthetic_report(spec, cell_trials)
        partials = split_report(spec, full, assignment)
        while len(partials) < 3:
            partials.append(RunReport(spec=spec))
        a, b, c = partials[0], partials[1], partials[2]
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert json.dumps(left.to_dict(), sort_keys=True) == json.dumps(
            right.to_dict(), sort_keys=True
        )

    def test_merge_rejects_other_specs(self):
        a = RunReport(spec=tiny_spec())
        b = RunReport(spec=tiny_spec(trials=3))
        with pytest.raises(ValueError, match="different specs"):
            a.merge(b)

    def test_merge_rejects_overlapping_trials(self):
        spec = api.ExperimentSpec.compare(
            "overlap", [api.ScenarioSpec(kind="paper", name="sc")], ["fairshare"]
        )
        stats = TrialStats.from_results(
            "fairshare", [fake_result(1.0)], trial_indices=[0]
        )
        a = RunReport(spec=spec, stats={"sc": {"fairshare": stats}})
        b = RunReport(spec=spec, stats={"sc": {"fairshare": stats}})
        with pytest.raises(ValueError, match="overlapping trial indices"):
            a.merge(b)

    def test_merged_requires_trial_indices(self):
        summary_only = TrialStats.from_results("p", [fake_result(1.0)])
        indexed = TrialStats.from_results("p", [fake_result(2.0)], trial_indices=[1])
        with pytest.raises(ValueError, match="trial_indices"):
            TrialStats.merged([summary_only, indexed])

    def test_merged_rejects_mixed_policies(self):
        a = TrialStats.from_results("p", [fake_result(1.0)], trial_indices=[0])
        b = TrialStats.from_results("q", [fake_result(2.0)], trial_indices=[1])
        with pytest.raises(ValueError, match="different policies"):
            TrialStats.merged([a, b])
