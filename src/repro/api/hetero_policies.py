"""Throughput-matrix policies for heterogeneous device fleets.

These policies treat the cluster as a device-class inventory (a
:class:`~repro.hetero.types.DeviceFleet`) and periodically re-solve a
heterogeneous allocation problem over the per-(model, device-class)
throughput matrix, in the style of Gavel's throughput-matrix schedulers:

- ``hetero-max-throughput`` maximizes the priority-weighted sum of
  normalized goodputs ``min(service_rate, arrival_rate) / arrival_rate``
  using the greedy-with-repair solver
  (:func:`repro.hetero.allocation.solve_hetero_allocation`);
- ``hetero-las`` is the same objective under least-attained-service
  weighting: each job's priority is divided by ``1 + attained service``,
  so jobs that have received less aggregate service win contended devices;
- ``ilp-placement`` solves the same instance as an assignment ILP with
  per-resource capacity and SLO-infeasibility constraints
  (:func:`repro.hetero.ilp.solve_ilp_allocation`), falling back to the
  greedy solver if the relaxation is infeasible.

All three degrade gracefully on homogeneous scenarios: a cluster without
``device_classes`` is planned as a single uniform class whose count is the
replica quota, which makes the solvers a (costlier) per-job proportional
allocator -- useful for cross-checks, not recommended as a daily driver.

Decisions carry both the per-job totals and the per-class breakdown
(:attr:`~repro.policy.ScalingDecision.device_replicas`); the simulation
backends honor the breakdown whenever it fits the fleet inventory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register_policy
from repro.experiments.scenarios import Scenario
from repro.hetero.allocation import (
    HeteroJob,
    HeteroProblem,
    solve_hetero_allocation,
)
from repro.hetero.ilp import solve_ilp_allocation
from repro.hetero.types import DeviceClass, DeviceFleet
from repro.policy import AutoscalePolicy, JobObservation, ScalingDecision

__all__ = ["HeteroPolicyOptions", "HeteroAllocationPolicy"]


@dataclass(frozen=True)
class HeteroPolicyOptions:
    """Options shared by the heterogeneous allocation policies.

    ``period`` is the re-solve interval in seconds (the solvers are much
    heavier than a reactive rule, so they run on a planning cadence);
    ``headroom`` multiplies observed arrival rates before the solve.  The
    goodput objective saturates once service rate matches the planned rate,
    so the provisioned utilization is roughly ``1 / headroom`` -- the
    default 1.5 keeps queues stable (rho ~ 0.67) while staying a
    throughput-matrix policy, not a latency-aware one.
    """

    period: float = 60.0
    headroom: float = 1.5

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.headroom <= 0:
            raise ValueError(f"headroom must be positive, got {self.headroom}")


def _scenario_fleet(scenario: Scenario) -> DeviceFleet:
    """The scenario's fleet, or the uniform single-class degenerate fleet."""
    if scenario.devices is not None:
        return scenario.devices
    return DeviceFleet((DeviceClass(name="uniform", count=scenario.total_replicas),))


class HeteroAllocationPolicy(AutoscalePolicy):
    """Periodic re-solve of a heterogeneous allocation over a device fleet."""

    tick_interval = 10.0

    def __init__(
        self,
        scenario: Scenario,
        *,
        name: str,
        solver: str = "greedy",
        las: bool = False,
        period: float = 60.0,
        headroom: float = 1.5,
    ) -> None:
        if solver not in ("greedy", "ilp"):
            raise ValueError(f"unknown solver {solver!r}; choose 'greedy' or 'ilp'")
        self.name = name
        self.solver = solver
        self.las = las
        self.period = float(period)
        self.headroom = float(headroom)
        self.fleet = _scenario_fleet(scenario)
        self.jobs = list(scenario.jobs)
        self.types = self.fleet.replica_types()
        self.capacity = self.fleet.capacity()
        self.type_counts = self.fleet.counts()
        # The throughput matrix resolved per job: every (job, class) entry,
        # so a job's speedups are independent of the class defaults.
        self.speedup_rows = {
            job.name: {
                cls.name: self.fleet.speedup_for(job.model.name, cls.name)
                for cls in self.fleet.classes
            }
            for job in self.jobs
        }
        self._attained: dict[str, float] = {}
        self._last_solve: float | None = None
        self._last_tick_time: float | None = None

    # --------------------------------------------------------------- state

    def reset(self) -> None:
        self._attained = {job.name: 0.0 for job in self.jobs}
        self._last_solve = None
        self._last_tick_time = None

    def _update_attained(
        self, now: float, observations: dict[str, JobObservation]
    ) -> None:
        """Accumulate each job's attained service (served-capacity seconds).

        LAS weighting uses the integral of the allocated service rate
        (replicas over effective processing time), the analogue of Gavel's
        attained-service counter for time-sliced accelerators.
        """
        last = self._last_tick_time
        dt = self.tick_interval if last is None else max(now - last, 0.0)
        self._last_tick_time = now
        for name, obs in observations.items():
            if obs.mean_proc_time <= 0:
                continue
            rate = obs.current_replicas / obs.mean_proc_time
            self._attained[name] = self._attained.get(name, 0.0) + rate * dt

    # --------------------------------------------------------------- solve

    def _priorities(self) -> dict[str, float]:
        if not self.las:
            return {job.name: job.priority for job in self.jobs}
        # Least attained service: normalize by the mean so the weights stay
        # O(priority) and the solver's gain tolerances keep their meaning.
        values = [self._attained.get(job.name, 0.0) for job in self.jobs]
        mean = sum(values) / len(values) if values else 0.0
        scale = mean if mean > 0 else 1.0
        return {
            job.name: job.priority
            / (1.0 + self._attained.get(job.name, 0.0) / scale)
            for job in self.jobs
        }

    def _solve(self, observations: dict[str, JobObservation]) -> ScalingDecision:
        priorities = self._priorities()
        hetero_jobs = [
            HeteroJob(
                name=job.name,
                slo=job.slo,
                proc_time=job.model.proc_time,
                arrival_rate=observations[job.name].arrival_rate * self.headroom
                if job.name in observations
                else 0.0,
                priority=priorities[job.name],
            )
            for job in self.jobs
        ]
        problem = HeteroProblem(
            jobs=hetero_jobs,
            types=self.types,
            capacity=self.capacity,
            objective="throughput",
            type_counts=self.type_counts,
            speedup_overrides=self.speedup_rows,
        )
        if self.solver == "ilp":
            try:
                allocation = solve_ilp_allocation(problem)
            except ValueError:
                allocation = solve_hetero_allocation(problem)
        else:
            allocation = solve_hetero_allocation(problem)
        return ScalingDecision(
            replicas={
                job.name: allocation.replicas(job.name) for job in self.jobs
            },
            device_replicas={
                name: dict(pools) for name, pools in allocation.counts.items()
            },
        )

    def tick(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        self._update_attained(now, observations)
        if self._last_solve is not None and now - self._last_solve < self.period:
            return None
        self._last_solve = now
        return self._solve(observations)


def _build(name: str, solver: str, las: bool):
    def build(
        scenario: Scenario, seed: int, options: HeteroPolicyOptions
    ) -> AutoscalePolicy:
        options = options or HeteroPolicyOptions()
        return HeteroAllocationPolicy(
            scenario,
            name=name,
            solver=solver,
            las=las,
            period=options.period,
            headroom=options.headroom,
        )

    return build


register_policy(
    "hetero-max-throughput",
    kind="hetero",
    description=(
        "Gavel-style max-sum-throughput over the device-class throughput "
        "matrix (greedy-with-repair solver)."
    ),
    config_type=HeteroPolicyOptions,
    aliases=("max-sum-throughput",),
)(_build("hetero-max-throughput", solver="greedy", las=False))

register_policy(
    "hetero-las",
    kind="hetero",
    description=(
        "Least-attained-service throughput allocation: goodput objective "
        "with weights inversely proportional to attained service."
    ),
    config_type=HeteroPolicyOptions,
    aliases=("las",),
)(_build("hetero-las", solver="greedy", las=True))

register_policy(
    "ilp-placement",
    kind="hetero",
    description=(
        "ILP placement baseline: assignment + per-resource capacity + "
        "SLO-infeasibility constraints (OR-Tools when available, else an "
        "LP relaxation with rounding repair)."
    ),
    config_type=HeteroPolicyOptions,
    aliases=("hetero-ilp",),
)(_build("ilp-placement", solver="ilp", las=False))
