"""Decentralized Faro: per-group controllers with share rebalancing (§7).

Ten jobs are partitioned across a varying number of autonomous group
controllers, each running its own Faro optimizer over only its share of a
32-replica cluster.  The only cross-group communication is a scalar demand
signal per round, which the rebalancer uses to move shares between groups.

The example sweeps the controller count and reports how close the
decentralized system stays to the centralized optimum -- the trade the
paper's §7 anticipates ("not essential but could be an interesting future
direction").

Run:  python examples/decentralized_faro.py
"""

from repro.cluster import RESNET34, InferenceJobSpec, ResourceQuota
from repro.core.autoscaler import FaroConfig, JobSpec
from repro.core.decentralized import DecentralizedFaro
from repro.core.utility import SLO
from repro.sim.analytic import FlowSimulation
from repro.sim.simulation import SimulationConfig
from repro.traces import standard_job_mix

MINUTES = 60
TOTAL_REPLICAS = 32
SLO_720 = SLO(target=0.72, percentile=99.0)


def main() -> None:
    mix = standard_job_mix(num_jobs=10, days=2, seed=0)
    traces = {t.name: t.eval[:MINUTES] for t in mix}
    specs = [JobSpec(name=t.name, slo=SLO_720, proc_time=0.18) for t in mix]
    cluster_jobs = [InferenceJobSpec.with_default_slo(t.name, RESNET34) for t in mix]
    config = FaroConfig(objective="sum", solver="greedy", num_samples=4, seed=0)

    print("Decentralized Faro: 10 jobs, 32 replicas, 60 minutes (flow simulator)")
    print("=" * 70)
    results = {}
    for groups in (1, 2, 5, 10):
        policy = DecentralizedFaro(
            specs, total_replicas=TOTAL_REPLICAS, num_groups=groups, config=config
        )
        simulation = FlowSimulation(
            cluster_jobs,
            traces,
            policy,
            ResourceQuota.of_replicas(TOTAL_REPLICAS),
            config=SimulationConfig(duration_minutes=MINUTES, seed=0),
        )
        result = simulation.run()
        results[groups] = result
        final_shares = policy.shares
        print(
            f"  G={groups:2d} controllers  lost-utility={result.avg_lost_cluster_utility:.3f} "
            f"violations={result.cluster_slo_violation_rate:.2%} "
            f"final shares={final_shares}"
        )
    print()
    central = results[1].avg_lost_cluster_utility
    worst = max(r.avg_lost_cluster_utility for r in results.values())
    print(f"G=1 is exactly the centralized controller (lost {central:.3f});")
    print(f"the most decentralized setting stays within {worst - central:.3f}")
    print("utility of it.  Shares drift toward the hot groups over the run --")
    print("the bounded per-round transfers are the decentralization cost.")


if __name__ == "__main__":
    main()
