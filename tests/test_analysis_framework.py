"""Framework tests: pass registry, baseline, file collection, lint CLI.

The per-rule behavior lives in ``test_analysis_passes.py``; this module
covers the machinery those rules plug into -- registration and typed
option validation, fingerprint-matched baselines, path expansion and
``--changed`` git scoping, and the ``repro-faro lint`` exit-code
contract.
"""

import json
import subprocess
import textwrap
from dataclasses import dataclass

import pytest

from repro.analysis import (
    AnalysisPassInfo,
    AnalysisPassRegistry,
    Baseline,
    Finding,
    changed_files,
    collect_files,
    find_project_root,
    get_pass_registry,
    run_analysis,
)
from repro.cli import main as cli_main

BAD_SNIPPET = "import random\nrandom.shuffle(items)\n"
GOOD_SNIPPET = "import random\nrng = random.Random(0)\n"


# ------------------------------------------------------------- registry


class TestRegistry:
    def make(self):
        registry = AnalysisPassRegistry()

        @registry.register("toy-rule", description="Toy.")
        def check(context, options):
            return []

        return registry

    def test_register_and_lookup(self):
        registry = self.make()
        assert "toy-rule" in registry
        assert "TOY-RULE" in registry  # case-insensitive, like the others
        assert registry.get("toy-rule").description == "Toy."
        assert len(registry) == 1

    def test_duplicate_id_rejected(self):
        registry = self.make()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("toy-rule", description="Again.")(lambda c, o: [])

    def test_unknown_id_lists_known(self):
        with pytest.raises(ValueError, match="toy-rule"):
            self.make().get("nope")

    def test_bad_scope_rejected(self):
        registry = AnalysisPassRegistry()
        with pytest.raises(ValueError, match="scope"):
            registry.register("x", scope="galaxy")(lambda c, o: [])

    def test_config_type_must_be_dataclass(self):
        registry = AnalysisPassRegistry()
        with pytest.raises(TypeError, match="dataclass"):
            registry.register("x", config_type=dict)(lambda c, o: [])

    def test_unregister(self):
        registry = self.make()
        registry.unregister("toy-rule")
        assert "toy-rule" not in registry

    def test_typed_options_reject_unknown_keys(self):
        registry = get_pass_registry()
        with pytest.raises(ValueError, match="max_widgets"):
            registry.parse_options("determinism", {"max_widgets": 3})

    def test_typed_options_construct_config(self):
        options = get_pass_registry().parse_options(
            "determinism", {"modules": ("only.here",)}
        )
        assert options.modules == ("only.here",)

    def test_optionless_pass_rejects_options(self):
        registry = AnalysisPassRegistry()
        registry.register("bare", description="No options.")(lambda c, o: [])
        with pytest.raises(ValueError, match="accepts no options"):
            registry.parse_options("bare", {"depth": 1})

    def test_option_fields_report_defaults(self):
        info = get_pass_registry().get("ordered-iteration")
        fields = dict(info.option_fields())
        assert fields["flag_dict_views"] is False
        assert "repro.sim" in fields["modules"]

    def test_builtin_catalog(self):
        names = set(get_pass_registry().names())
        assert names == {
            "determinism",
            "ordered-iteration",
            "frozen-mutation",
            "registry-contract",
            "spawn-safety",
            "rng-batching",
            "perf-gate",
        }
        assert get_pass_registry().names(scope="project") == ("perf-gate",)


# ------------------------------------------------------------- baseline


class TestBaseline:
    def finding(self, snippet="x = 1", pass_id="determinism"):
        return Finding(
            pass_id=pass_id, path="src/m.py", line=3, message="m", snippet=snippet
        )

    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([self.finding()], "known-safe fixture")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded == baseline
        assert json.loads(path.read_text())["version"] == 1

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 1, "findings": [{"pass": "x"}]}))
        with pytest.raises(ValueError, match="missing"):
            Baseline.load(path)

    def test_load_rejects_empty_justification(self, tmp_path):
        entry = Baseline.from_findings([self.finding()], "why").entries[0]
        raw = entry.to_dict()
        raw["justification"] = "   "
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 1, "findings": [raw]}))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_split_partitions_new_grandfathered_stale(self):
        old = self.finding("old_line()")
        gone = self.finding("deleted_line()")
        baseline = Baseline.from_findings([old, gone], "grandfathered")
        fresh = self.finding("brand_new()")
        new, grandfathered, stale = baseline.split([old, fresh])
        assert new == [fresh]
        assert grandfathered == [old]
        assert [e.fingerprint for e in stale] == [gone.fingerprint()]

    def test_fingerprint_survives_line_drift(self):
        a = self.finding()
        b = Finding(
            pass_id=a.pass_id, path=a.path, line=99, message="m", snippet=a.snippet
        )
        assert a.fingerprint() == b.fingerprint()


# ------------------------------------------------------ file collection


class TestCollectFiles:
    def test_recurses_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        files = collect_files([tmp_path])
        assert files == [tmp_path / "pkg" / "a.py"]

    def test_explicit_file_and_dedup(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("")
        assert collect_files([f, tmp_path]) == [f]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_find_project_root_walks_up(self, tmp_path):
        (tmp_path / ".git").mkdir()
        deep = tmp_path / "src" / "pkg"
        deep.mkdir(parents=True)
        (deep / "m.py").write_text("")
        assert find_project_root([deep / "m.py"]) == tmp_path


# -------------------------------------------------------- changed files


def _git(repo, *args):
    subprocess.run(
        ["git", *args],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "HOME": str(repo),
        },
    )


@pytest.fixture
def git_repo(tmp_path):
    _git(tmp_path, "init", "-b", "main")
    (tmp_path / "kept.py").write_text(GOOD_SNIPPET)
    (tmp_path / "edited.py").write_text(GOOD_SNIPPET)
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-m", "seed")
    _git(tmp_path, "checkout", "-b", "feature")
    (tmp_path / "edited.py").write_text(BAD_SNIPPET)
    (tmp_path / "added.py").write_text(GOOD_SNIPPET)
    return tmp_path


class TestChangedFiles:
    def test_reports_edits_and_untracked_only(self, git_repo):
        changed = changed_files([git_repo], base="main", root=git_repo)
        assert [p.name for p in changed] == ["added.py", "edited.py"]

    def test_bad_base_raises(self, git_repo):
        with pytest.raises(RuntimeError, match="merge-base"):
            changed_files([git_repo], base="no-such-ref", root=git_repo)

    def test_run_analysis_changed_mode_scopes_the_lint(self, git_repo):
        report = run_analysis([git_repo], root=git_repo, changed_base="main")
        assert report.files == 2
        assert [f.path for f in report.findings] == ["edited.py"]


# --------------------------------------------------------- run_analysis


class TestRunAnalysis:
    def test_findings_sorted_and_report_shape(self, tmp_path):
        (tmp_path / "b.py").write_text(BAD_SNIPPET)
        (tmp_path / "a.py").write_text(BAD_SNIPPET)
        report = run_analysis([tmp_path], root=tmp_path)
        assert not report.ok
        assert [f.path for f in report.findings] == ["a.py", "b.py"]
        assert report.files == 2
        assert "FAIL:" in report.format_text()
        assert report.to_dict()["ok"] is False

    def test_select_restricts_passes(self, tmp_path):
        (tmp_path / "a.py").write_text(BAD_SNIPPET)
        report = run_analysis([tmp_path], root=tmp_path, select=["spawn-safety"])
        assert report.ok
        assert report.passes == ("spawn-safety",)

    def test_unknown_pass_options_fail_loudly(self, tmp_path):
        (tmp_path / "a.py").write_text(GOOD_SNIPPET)
        with pytest.raises(ValueError, match="unknown analysis pass"):
            run_analysis(
                [tmp_path], root=tmp_path, pass_options={"nope": {"x": 1}}
            )

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_analysis([tmp_path], root=tmp_path)
        assert [f.pass_id for f in report.findings] == ["parse-error"]

    def test_baseline_grandfathers_known_findings(self, tmp_path):
        (tmp_path / "a.py").write_text(BAD_SNIPPET)
        raw = run_analysis([tmp_path], root=tmp_path)
        baseline = Baseline.from_findings(raw.findings, "legacy shuffle")
        report = run_analysis([tmp_path], root=tmp_path, baseline=baseline)
        assert report.ok
        assert len(report.grandfathered) == 1
        assert "baselined" in report.format_text()

    def test_stale_baseline_entries_surface(self, tmp_path):
        (tmp_path / "a.py").write_text(GOOD_SNIPPET)
        ghost = Finding(
            pass_id="determinism", path="a.py", line=1, message="m", snippet="gone()"
        )
        baseline = Baseline.from_findings([ghost], "was fixed")
        report = run_analysis([tmp_path], root=tmp_path, baseline=baseline)
        assert report.ok  # stale entries warn, they do not fail the run
        assert len(report.stale_baseline) == 1
        assert "stale baseline entry" in report.format_text()

    def test_suppressed_findings_counted(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import random\n"
            "random.shuffle(x)  # repro: allow(determinism) -- test fixture\n"
        )
        report = run_analysis([tmp_path], root=tmp_path)
        assert report.ok
        assert report.suppressed == 1


# ------------------------------------------------------------- lint CLI


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(GOOD_SNIPPET)
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(BAD_SNIPPET)
        assert cli_main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out and "FAIL:" in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(BAD_SNIPPET)
        assert cli_main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["pass"] == "determinism"

    def test_select_unknown_pass_exits_two(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(GOOD_SNIPPET)
        assert cli_main(["lint", "--select", "nope", str(tmp_path)]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_list_passes(self, capsys):
        assert cli_main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out and "perf-gate" in out

    def test_write_then_enforce_baseline(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(BAD_SNIPPET)
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", "--baseline", str(baseline), "--write-baseline",
                 str(tmp_path)]
            )
            == 0
        )
        assert baseline.exists()
        # Grandfathered finding no longer fails the run ...
        assert cli_main(["lint", "--baseline", str(baseline), str(tmp_path)]) == 0
        # ... but a fresh one still does.
        (tmp_path / "b.py").write_text(BAD_SNIPPET.replace("items", "rows"))
        assert cli_main(["lint", "--baseline", str(baseline), str(tmp_path)]) == 1
        capsys.readouterr()

    def test_changed_mode(self, git_repo, capsys):
        code = cli_main(
            ["lint", "--changed", "--base", "main", str(git_repo)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "edited.py" in out and "kept.py" not in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------- check_perf orphan gate


class TestUnpairedBaselines:
    def load_check_perf(self):
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_perf_for_test", root / "tools" / "check_perf.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_orphaned_baseline_reported(self, tmp_path):
        mod = self.load_check_perf()
        (tmp_path / "results").mkdir()
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "results" / "BENCH_ghost.json").write_text("{}")
        (tmp_path / "results" / "BENCH_live.json").write_text("{}")
        (tmp_path / "benchmarks" / "bench_live.py").write_text(
            'OUT = "results/BENCH_live.json"\n'
        )
        unpaired = mod.find_unpaired_baselines(
            tmp_path / "results", tmp_path / "benchmarks"
        )
        assert [p.name for p, _ in unpaired] == ["BENCH_ghost.json"]
        assert "stale baseline" in unpaired[0][1]

    def test_repo_baselines_all_paired(self):
        from pathlib import Path

        mod = self.load_check_perf()
        root = Path(__file__).resolve().parent.parent
        assert (
            mod.find_unpaired_baselines(root / "results", root / "benchmarks")
            == []
        )


# -------------------------------------------------- run_checks umbrella


class TestRunChecks:
    def load_run_checks(self):
        import importlib.util
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "run_checks_for_test", root / "tools" / "run_checks.py"
        )
        module = importlib.util.module_from_spec(spec)
        # Registered so dataclass annotation resolution can find the module.
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        return module

    def test_full_gate_order_is_cheapest_first(self):
        steps = self.load_run_checks().build_steps()
        assert [s.name for s in steps] == ["lint", "tests", "perf"]

    def test_skips_drop_steps(self):
        mod = self.load_run_checks()
        steps = mod.build_steps(skip_perf=True, skip_tests=True)
        assert [s.name for s in steps] == ["lint"]
        assert "--changed" not in steps[0].argv
        changed = mod.build_steps(skip_perf=True, skip_tests=True, lint_changed=True)
        assert "--changed" in changed[0].argv

    def test_bench_smoke_runs_before_the_test_suite(self):
        steps = self.load_run_checks().build_steps(bench_smoke=True)
        assert [s.name for s in steps] == ["lint", "bench-smoke", "tests", "perf"]
        smoke = steps[1]
        assert "benchmarks.bench_sim_backends" in smoke.argv

    def test_serve_smoke_checks_the_shipped_replay_spec(self):
        steps = self.load_run_checks().build_steps(serve_smoke=True)
        assert [s.name for s in steps] == ["lint", "serve-smoke", "tests", "perf"]
        smoke = steps[1]
        assert "serve" in smoke.argv
        assert "--check" in smoke.argv
        assert any("serve_replay.json" in arg for arg in smoke.argv)
