"""Property-based invariants of the cluster allocation optimizer.

These complement the scenario-specific tests in ``test_optimizer.py``:
whatever the job mix, the solved allocation must (a) be feasible, (b)
respect per-job minimums, (c) never improve when capacity shrinks, and
(d) price priorities and drops coherently.  Hypothesis generates the job
mixes; the greedy solver keeps runtimes bounded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    solve_allocation,
)
from repro.core.utility import SLO

SLO_720 = SLO(target=0.72, percentile=99.0)


def job(name, rates, priority=1.0, min_replicas=1):
    return OptimizationJob(
        name=name,
        proc_time=0.18,
        slo=SLO_720,
        rates=tuple(rates),
        priority=priority,
        min_replicas=min_replicas,
    )


rate_lists = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=4),
    min_size=1,
    max_size=5,
)


class TestFeasibilityInvariants:
    @settings(max_examples=40, deadline=None)
    @given(rates=rate_lists, extra=st.integers(min_value=0, max_value=40))
    def test_solution_always_feasible(self, rates, extra):
        jobs = [job(f"j{i}", r) for i, r in enumerate(rates)]
        capacity = ClusterCapacity.of_replicas(len(jobs) + extra)
        problem = AllocationProblem(jobs, capacity, make_objective("sum"))
        allocation = solve_allocation(problem, method="greedy")
        assert problem.is_feasible(allocation.replicas)
        assert problem.cpu_usage(allocation.replicas) <= capacity.cpus + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        rates=rate_lists,
        minimums=st.lists(st.integers(min_value=1, max_value=3), min_size=5, max_size=5),
    )
    def test_min_replicas_respected(self, rates, minimums):
        jobs = [
            job(f"j{i}", r, min_replicas=minimums[i]) for i, r in enumerate(rates)
        ]
        capacity = ClusterCapacity.of_replicas(sum(minimums[: len(jobs)]) + 8)
        problem = AllocationProblem(jobs, capacity, make_objective("sum"))
        allocation = solve_allocation(problem, method="greedy")
        for j, count in zip(jobs, allocation.replicas):
            assert count >= j.min_replicas

    @settings(max_examples=40, deadline=None)
    @given(rates=rate_lists)
    def test_objective_value_matches_evaluate(self, rates):
        jobs = [job(f"j{i}", r) for i, r in enumerate(rates)]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(len(jobs) + 10), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="greedy")
        assert allocation.objective_value == pytest.approx(
            problem.evaluate(allocation.replicas, allocation.drops)
        )


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        rates=rate_lists,
        small=st.integers(min_value=0, max_value=10),
        growth=st.integers(min_value=1, max_value=20),
    )
    def test_more_capacity_never_hurts(self, rates, small, growth):
        jobs = [job(f"j{i}", r) for i, r in enumerate(rates)]
        objective = make_objective("sum")

        def solve_at(total):
            problem = AllocationProblem(
                jobs, ClusterCapacity.of_replicas(total), objective
            )
            return solve_allocation(problem, method="greedy").objective_value

        base = len(jobs) + small
        assert solve_at(base + growth) >= solve_at(base) - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(min_value=5.0, max_value=50.0))
    def test_priority_shifts_allocation(self, rate):
        # Two identical jobs, one with 10x priority, constrained cluster:
        # the high-priority job never receives fewer replicas.
        jobs = [
            job("lo", [rate], priority=1.0),
            job("hi", [rate], priority=10.0),
        ]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(6), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="greedy")
        lo, hi = allocation.replicas
        assert hi >= lo


class TestDropInvariants:
    @settings(max_examples=25, deadline=None)
    @given(rates=rate_lists)
    def test_drops_zero_without_penalty_objective(self, rates):
        jobs = [job(f"j{i}", r) for i, r in enumerate(rates)]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(len(jobs) + 6), make_objective("sum")
        )
        allocation = solve_allocation(problem, method="greedy")
        np.testing.assert_allclose(allocation.drops, 0.0)

    @settings(max_examples=20, deadline=None)
    @given(rates=rate_lists)
    def test_penalty_drops_stay_on_grid(self, rates):
        jobs = [job(f"j{i}", r) for i, r in enumerate(rates)]
        problem = AllocationProblem(
            jobs,
            ClusterCapacity.of_replicas(len(jobs) + 4),
            make_objective("penaltysum"),
        )
        allocation = solve_allocation(problem, method="greedy")
        grid = set(np.round(problem.drop_grid, 9))
        for drop in np.round(allocation.drops, 9):
            assert drop in grid

    def test_hopeless_overload_keeps_drops_at_zero(self):
        # One job far beyond cluster capacity: stabilizing the queue would
        # need ~89% drops, which forfeits the full AWS-style service credit
        # (Table 5), so the penalty objective correctly prefers not to shed
        # -- the paper's own observation that explicit dropping is
        # "overshadowed by queues getting naturally full" (§6.4).
        jobs = [job("hot", [200.0])]
        problem = AllocationProblem(
            jobs, ClusterCapacity.of_replicas(4), make_objective("penaltysum")
        )
        allocation = solve_allocation(problem, method="greedy")
        assert allocation.drops[0] == 0.0
