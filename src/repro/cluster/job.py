"""Inference job specification: one pre-trained model with an SLO."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.models import ModelProfile
from repro.core.utility import SLO

__all__ = ["InferenceJobSpec"]


@dataclass(frozen=True)
class InferenceJobSpec:
    """A job as deployed on the cluster.

    The paper's default SLO is four times the model's processing time at the
    99th percentile (720 ms for ResNet34, 400 ms for ResNet18); use
    :meth:`with_default_slo` to apply that convention.
    """

    name: str
    model: ModelProfile
    slo: SLO
    priority: float = 1.0
    min_replicas: int = 1

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.priority <= 0:
            raise ValueError(f"priority must be positive, got {self.priority}")

    @classmethod
    def with_default_slo(
        cls,
        name: str,
        model: ModelProfile,
        slo_multiple: float = 4.0,
        percentile: float = 99.0,
        priority: float = 1.0,
        min_replicas: int = 1,
    ) -> "InferenceJobSpec":
        """Paper convention: SLO target = ``slo_multiple`` x processing time."""
        if slo_multiple <= 0:
            raise ValueError(f"slo_multiple must be positive, got {slo_multiple}")
        return cls(
            name=name,
            model=model,
            slo=SLO(target=slo_multiple * model.proc_time, percentile=percentile),
            priority=priority,
            min_replicas=min_replicas,
        )
