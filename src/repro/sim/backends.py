"""Simulation-backend registry: the catalog of execution fidelities.

Every simulator the experiment harness can drive -- the request-level
reference, the analytic flow model, the hybrid split, user plugins -- is
registered here under a stable name together with a *typed* options
dataclass, exactly mirroring how :class:`repro.api.PolicyRegistry` treats
autoscaling policies.  The registry replaces the hardwired
``Simulation``/``FlowSimulation`` conditional the run engine used to carry
and the frozen ``("request", "flow")`` tuple in the spec schema: name
resolution, option validation, and construction all go through one lookup,
so a new fidelity is a plugin, not a fork.

Registering a backend::

    from dataclasses import dataclass
    from repro.sim.backends import register_backend
    from repro.sim.harness import SimHarness

    @dataclass(frozen=True)
    class MyOptions:
        granularity: float = 1.0

    @register_backend("my-fidelity", description="Coarse-grained replay.",
                      config_type=MyOptions, fidelity="analytic")
    class MySimulation(SimHarness):
        options_type = MyOptions
        ...

A spec file then selects it with ``"simulator": "my-fidelity"`` and
configures it through ``"backend_options"``; unknown backend names and
unknown option keys both fail loudly at spec-validation time, before any
simulation runs.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.harness import SimHarness

__all__ = [
    "SimBackendInfo",
    "SimBackendRegistry",
    "register_backend",
    "get_backend_registry",
]


@dataclass(frozen=True)
class SimBackendInfo:
    """One registered backend: name, fidelity class, options schema."""

    name: str
    description: str
    cls: type
    config_type: type | None = None
    #: Coarse fidelity class for docs/CLI: "request-level", "analytic", ...
    fidelity: str = ""
    aliases: tuple[str, ...] = ()

    def option_fields(self) -> list[tuple[str, Any]]:
        """(field name, default) pairs of the options schema, for docs/CLI."""
        if self.config_type is None:
            return []
        out = []
        for f in fields(self.config_type):
            if f.default is not MISSING:
                default = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = None
            out.append((f.name, default))
        return out


class SimBackendRegistry:
    """Name -> :class:`SimBackendInfo` catalog with typed option parsing.

    Names are case-insensitive and unique across primary names and
    aliases; iteration order is registration order (built-ins register
    request, flow, hybrid -- in fidelity order).
    """

    def __init__(self) -> None:
        self._entries: dict[str, SimBackendInfo] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------ register

    def register(
        self,
        name: str,
        *,
        description: str = "",
        config_type: type | None = None,
        fidelity: str = "",
        aliases: tuple[str, ...] = (),
    ) -> Callable[[type], type]:
        """Decorator registering a :class:`SimHarness` subclass as ``name``."""

        def decorator(cls: type) -> type:
            self.add(
                SimBackendInfo(
                    name=name,
                    description=description,
                    cls=cls,
                    config_type=config_type,
                    fidelity=fidelity,
                    aliases=tuple(aliases),
                )
            )
            return cls

        return decorator

    def add(self, info: SimBackendInfo) -> None:
        """Register ``info``; rejects duplicate names/aliases."""
        if not info.name or info.name != info.name.strip():
            raise ValueError(f"invalid backend name {info.name!r}")
        if info.config_type is not None and not is_dataclass(info.config_type):
            raise TypeError(
                f"config_type for {info.name!r} must be a dataclass, "
                f"got {info.config_type!r}"
            )
        key = info.name.lower()
        for taken in (key, *[a.lower() for a in info.aliases]):
            if taken in self._entries or taken in self._aliases:
                raise ValueError(f"backend name {taken!r} is already registered")
        self._entries[key] = info
        for alias in info.aliases:
            self._aliases[alias.lower()] = key

    def unregister(self, name: str) -> None:
        """Remove a backend (plugins/tests); unknown names raise ValueError."""
        info = self.get(name)
        del self._entries[info.name.lower()]
        for alias in info.aliases:
            self._aliases.pop(alias.lower(), None)

    # ------------------------------------------------------------- lookup

    def get(self, name: str) -> SimBackendInfo:
        """Resolve ``name`` (or an alias) to its :class:`SimBackendInfo`."""
        key = str(name).lower()
        key = self._aliases.get(key, key)
        info = self._entries.get(key)
        if info is None:
            known = ", ".join(sorted(self._entries))
            raise ValueError(f"unknown simulator {name!r}; registered: {known}")
        return info

    def __contains__(self, name: object) -> bool:
        key = str(name).lower()
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[SimBackendInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> tuple[str, ...]:
        """Registered primary names, in registration order."""
        return tuple(info.name for info in self)

    def infos(self) -> tuple[SimBackendInfo, ...]:
        return tuple(self)

    # -------------------------------------------------------------- build

    def parse_options(self, name: str, options: Mapping[str, Any] | Any = None):
        """Validate ``options`` against the backend's config type.

        Accepts a mapping (JSON-shaped, as stored in an
        :class:`~repro.api.spec.ExperimentSpec`), an already-constructed
        config instance, or ``None``.  Unknown keys raise ``ValueError`` so
        typos in spec files fail loudly, exactly like policy options.
        """
        info = self.get(name)
        if info.config_type is None:
            if options:
                raise ValueError(
                    f"backend {info.name!r} accepts no options, got {dict(options)!r}"
                )
            return None
        if isinstance(options, info.config_type):
            return options
        data = dict(options or {})
        known = {f.name for f in fields(info.config_type)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown option(s) {sorted(unknown)} for backend {info.name!r}; "
                f"accepted: {sorted(known)}"
            )
        return info.config_type(**data)

    def create(
        self,
        name: str,
        *args: Any,
        options: Mapping[str, Any] | Any = None,
        **kwargs: Any,
    ) -> "SimHarness":
        """Construct the backend ``name`` with validated options.

        Positional/keyword arguments are the shared
        :class:`~repro.sim.harness.SimHarness` constructor signature
        (jobs, traces, policy, quota, config=..., ...).
        """
        info = self.get(name)
        parsed = self.parse_options(name, options)
        return info.cls(*args, options=parsed, **kwargs)


#: Process-wide default registry, populated with the built-in fidelities
#: below; plugins add to it via :func:`register_backend`.
_DEFAULT_BACKENDS = SimBackendRegistry()


def get_backend_registry() -> SimBackendRegistry:
    """The process-wide default :class:`SimBackendRegistry`."""
    return _DEFAULT_BACKENDS


def register_backend(
    name: str,
    *,
    description: str = "",
    config_type: type | None = None,
    fidelity: str = "",
    aliases: tuple[str, ...] = (),
) -> Callable[[type], type]:
    """Register a simulation backend on the default registry (decorator)."""
    return _DEFAULT_BACKENDS.register(
        name,
        description=description,
        config_type=config_type,
        fidelity=fidelity,
        aliases=aliases,
    )


# --------------------------------------------------------- built-in backends

def _register_builtins() -> None:
    from repro.sim.analytic import FlowSimulation
    from repro.sim.hybrid import HybridBackendOptions, HybridSimulation
    from repro.sim.simulation import RequestBackendOptions, Simulation

    _DEFAULT_BACKENDS.add(
        SimBackendInfo(
            name="request",
            description=(
                "Request-level reference: Poisson arrivals, virtual-time "
                "routers, per-request queueing/drops, replica cold starts."
            ),
            cls=Simulation,
            config_type=RequestBackendOptions,
            fidelity="request-level",
            aliases=("request-level",),
        )
    )
    _DEFAULT_BACKENDS.add(
        SimBackendInfo(
            name="flow",
            description=(
                "Analytic fluid/flow model: per-tick queue dynamics plus "
                "M/D/c waiting tails; 100-1000x faster than request level."
            ),
            cls=FlowSimulation,
            config_type=None,
            fidelity="analytic",
            aliases=("analytic", "analytic-flow"),
        )
    )
    _DEFAULT_BACKENDS.add(
        SimBackendInfo(
            name="hybrid",
            description=(
                "Flagged jobs at request level, the rest analytic, one "
                "shared quota and policy loop (see HybridBackendOptions)."
            ),
            cls=HybridSimulation,
            config_type=HybridBackendOptions,
            fidelity="hybrid",
            aliases=(),
        )
    )


_register_builtins()
