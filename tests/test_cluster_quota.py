"""Kubernetes-style resource-quota admission tests."""

import pytest

from repro.cluster.kubernetes import ResourceQuota


def admit(quota, current, targets):
    jobs = set(current)
    ones = {j: 1.0 for j in jobs}
    return quota.admit(current, targets, ones, ones)


class TestQuota:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            ResourceQuota(cpus=0, mem=1)

    def test_of_replicas(self):
        quota = ResourceQuota.of_replicas(8, cpu_per_replica=2.0)
        assert quota.cpus == 16.0 and quota.mem == 8.0

    def test_within_quota_granted(self):
        quota = ResourceQuota.of_replicas(10)
        admitted = admit(quota, {"a": 2, "b": 2}, {"a": 4, "b": 4})
        assert admitted == {"a": 4, "b": 4}

    def test_scale_down_always_admitted(self):
        quota = ResourceQuota.of_replicas(4)
        admitted = admit(quota, {"a": 3, "b": 1}, {"a": 1})
        assert admitted["a"] == 1
        assert admitted["b"] == 1

    def test_excess_clipped(self):
        quota = ResourceQuota.of_replicas(6)
        admitted = admit(quota, {"a": 2, "b": 2}, {"a": 10, "b": 2})
        assert admitted["a"] == 4  # 2 free replicas granted
        assert admitted["b"] == 2

    def test_round_robin_sharing(self):
        # Two jobs both want +4 with only 4 free: each gets +2.
        quota = ResourceQuota.of_replicas(8)
        admitted = admit(quota, {"a": 2, "b": 2}, {"a": 6, "b": 6})
        assert admitted == {"a": 4, "b": 4}

    def test_downscale_frees_capacity_for_upscale(self):
        quota = ResourceQuota.of_replicas(6)
        admitted = admit(quota, {"a": 4, "b": 2}, {"a": 1, "b": 5})
        assert admitted == {"a": 1, "b": 5}

    def test_missing_target_keeps_current(self):
        quota = ResourceQuota.of_replicas(10)
        admitted = admit(quota, {"a": 3, "b": 2}, {})
        assert admitted == {"a": 3, "b": 2}

    def test_heterogeneous_cpu_sizes(self):
        quota = ResourceQuota(cpus=10.0, mem=100.0)
        admitted = quota.admit(
            {"big": 1, "small": 1},
            {"big": 4, "small": 8},
            {"big": 2.0, "small": 0.5},
            {"big": 1.0, "small": 1.0},
        )
        used = admitted["big"] * 2.0 + admitted["small"] * 0.5
        assert used <= 10.0
        assert admitted["big"] >= 1 and admitted["small"] >= 1
