"""Trace cursors: incremental access to arrival traces.

Batch experiments hand the harness whole per-job rate arrays up front.
Online serving inverts that: a :class:`TraceCursor` exposes "arrival
rates for minutes ``[0, available_minutes())``" and may *grow* as its
source produces more data.  Replaying a finite trace through a cursor is
the degenerate case -- :class:`ReplayCursor` wraps any in-memory trace
dict (and, via :func:`cursor_from_source`, anything the registered trace
sources can build), which is what makes the serve loop digest-comparable
to batch ``api.run``.  :class:`TailingFileCursor` tails a CSV being
appended by an external producer -- the live-serving case.

Cursors deal in *rates* (requests/minute per trace minute), not arrival
instants: the pinned Poisson RNG contract
(:mod:`repro.sim.workload`) draws arrivals lazily per minute in order, so
revealing minute ``m`` before the simulator consumes it is all a cursor
has to guarantee -- gating/streaming can never perturb the draw sequence.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "TraceCursor",
    "ReplayCursor",
    "ChunkedReplayCursor",
    "TailingFileCursor",
    "cursor_from_source",
]


class TraceCursor:
    """Incremental per-job arrival-rate source.

    ``jobs`` names the jobs the cursor covers.  ``available_minutes()`` is
    how many trace minutes (from 0) every job has data for right now;
    ``poll()`` refreshes from the underlying source and returns the new
    availability; ``read(start, stop)`` returns each job's rates for
    minutes ``[start, stop)``.  ``finished()`` is True once no further
    minutes will ever appear; ``horizon_minutes()`` is the declared total
    length when known in advance (``None`` for open-ended sources).
    """

    jobs: tuple[str, ...] = ()

    def available_minutes(self) -> int:
        raise NotImplementedError

    def poll(self) -> int:
        """Refresh from the source; returns :meth:`available_minutes`."""
        return self.available_minutes()

    def read(self, start: int, stop: int) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def finished(self) -> bool:
        raise NotImplementedError

    def horizon_minutes(self) -> int | None:
        return None


class ReplayCursor(TraceCursor):
    """The degenerate cursor: a finite in-memory trace, fully available.

    Wrapping a scenario's evaluation traces in a ReplayCursor and serving
    them is the configuration the identity claim pins: every minute is
    available from the start, so the serve loop's tick sequence is exactly
    the batch harness's.
    """

    def __init__(self, traces: Mapping[str, np.ndarray]) -> None:
        if not traces:
            raise ValueError("ReplayCursor needs at least one job trace")
        self._traces = {
            name: np.asarray(values, dtype=float) for name, values in traces.items()
        }
        self.jobs = tuple(self._traces)
        self._minutes = min(len(v) for v in self._traces.values())

    @classmethod
    def for_scenario(cls, scenario) -> "ReplayCursor":
        """Cursor over a built scenario's evaluation traces."""
        return cls(scenario.eval_traces)

    def available_minutes(self) -> int:
        return self._minutes

    def read(self, start: int, stop: int) -> dict[str, np.ndarray]:
        stop = min(stop, self._minutes)
        return {name: values[start:stop] for name, values in self._traces.items()}

    def finished(self) -> bool:
        return True

    def horizon_minutes(self) -> int:
        return self._minutes


class ChunkedReplayCursor(ReplayCursor):
    """A finite trace revealed a few minutes per poll -- streaming in vitro.

    ``schedule`` lists how many new minutes each ``poll()`` reveals (the
    last entry repeats until the trace is exhausted).  Deterministic, so
    streaming tests and benches can exercise the gating/extension path
    without files or timers.
    """

    def __init__(
        self,
        traces: Mapping[str, np.ndarray],
        schedule: Sequence[int] = (1,),
        initial_minutes: int = 1,
    ) -> None:
        super().__init__(traces)
        steps = [int(s) for s in schedule]
        if not steps or any(s < 1 for s in steps):
            raise ValueError(f"schedule must be positive ints, got {schedule!r}")
        if initial_minutes < 1:
            raise ValueError(f"initial_minutes must be >= 1, got {initial_minutes}")
        self._total = self._minutes
        self._minutes = min(initial_minutes, self._total)
        self._schedule = steps
        self._polls = 0

    def poll(self) -> int:
        step = self._schedule[min(self._polls, len(self._schedule) - 1)]
        self._polls += 1
        self._minutes = min(self._minutes + step, self._total)
        return self._minutes

    def finished(self) -> bool:
        return self._minutes >= self._total

    def horizon_minutes(self) -> int:
        return self._total


class TailingFileCursor(TraceCursor):
    """Tail a trace CSV that an external producer appends to.

    Two layouts are accepted, both with contiguous minutes from 0:

    - ``minute,requests`` (the :func:`repro.traces.io.save_trace_csv`
      format) -- a single job, whose name is the ``job`` argument;
    - ``minute,<job1>,<job2>,...`` (the ``scenarios build --export``
      format) -- one column per job.

    Each ``poll()`` re-reads complete lines only (a partially-written last
    line is left for the next poll -- the producer's appends need not be
    atomic).  A row whose minute field is the literal ``end`` marks the
    stream complete; a declared ``horizon_minutes`` completes it too.
    Malformed or non-contiguous rows raise rather than silently skewing
    rate statistics, matching :func:`repro.traces.io.load_trace_csv`.
    """

    END_MARKER = "end"

    def __init__(
        self,
        path: str | Path,
        *,
        job: str | None = None,
        horizon_minutes: int | None = None,
    ) -> None:
        self.path = Path(path)
        self._job = job
        self._horizon = horizon_minutes
        if horizon_minutes is not None and horizon_minutes < 1:
            raise ValueError(f"horizon_minutes must be >= 1, got {horizon_minutes}")
        self._rows: list[list[float]] = []
        self._ended = False
        self._consumed_lines = 0
        self.jobs = ()
        self.poll()
        if not self.jobs:
            raise ValueError(f"trace file {self.path} has no header yet")

    def _parse_header(self, header: list[str]) -> None:
        if header == ["minute", "requests"]:
            if self._job is None:
                raise ValueError(
                    f"{self.path} is a single-job trace (minute,requests); "
                    "pass job=<name> to TailingFileCursor"
                )
            self.jobs = (self._job,)
        elif len(header) >= 2 and header[0] == "minute":
            self.jobs = tuple(header[1:])
        else:
            raise ValueError(
                f"unexpected CSV header {header!r} in {self.path}; expected "
                "'minute,requests' or 'minute,<job>,...'"
            )

    def poll(self) -> int:
        if self._ended:
            return len(self._rows)
        text = self.path.read_text()
        # Only complete lines count: the producer may be mid-append.
        complete, newline, _tail = text.rpartition("\n")
        if not newline:
            return len(self._rows)
        lines = complete.split("\n")
        if not self.jobs:
            header = next(csv.reader([lines[0]]))
            self._parse_header(header)
            self._consumed_lines = 1
        for line in lines[self._consumed_lines :]:
            self._consumed_lines += 1
            if not line.strip():
                continue
            row = next(csv.reader([line]))
            if row[0] == self.END_MARKER:
                self._ended = True
                break
            expected = len(self._rows)
            if int(row[0]) != expected:
                raise ValueError(
                    f"non-contiguous minutes in {self.path}: expected "
                    f"{expected}, got {row[0]}"
                )
            if len(row) != 1 + len(self.jobs):
                raise ValueError(f"malformed row {row!r} in {self.path}")
            values = [float(v) for v in row[1:]]
            if any(v < 0 for v in values):
                raise ValueError(f"negative rate at minute {expected} in {self.path}")
            self._rows.append(values)
            if self._horizon is not None and len(self._rows) >= self._horizon:
                self._ended = True
                break
        return len(self._rows)

    def available_minutes(self) -> int:
        return len(self._rows)

    def read(self, start: int, stop: int) -> dict[str, np.ndarray]:
        stop = min(stop, len(self._rows))
        block = np.asarray(self._rows[start:stop], dtype=float).reshape(
            stop - start if stop > start else 0, len(self.jobs)
        )
        return {name: block[:, i].copy() for i, name in enumerate(self.jobs)}

    def finished(self) -> bool:
        return self._ended

    def horizon_minutes(self) -> int | None:
        return self._horizon


def cursor_from_source(
    name: str, params: Mapping | None = None, *, job: str
) -> ReplayCursor:
    """Adapt any registered trace source into a (replay) cursor.

    ``name``/``params`` go through the same
    :class:`~repro.traces.generators.TraceSourceRegistry` spec files use
    (``file``, ``azure``, ``diurnal``, plugins, ...), so every source the
    batch path can replay, the serve path can serve.  Multi-job cursors
    are built by merging: ``ReplayCursor({**a.read(...), ...})`` or simply
    constructing one ReplayCursor from a combined trace dict.
    """
    from repro.traces.generators import get_trace_source_registry

    series = get_trace_source_registry().build(name, params)
    return ReplayCursor({job: series})
