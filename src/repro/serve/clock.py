"""Injectable clocks: the one sanctioned wall-clock boundary of the repo.

Everything in ``repro.serve`` that needs time-of-day, pacing, or latency
measurement goes through a :class:`Clock` instance handed to it -- never
the ``time`` module directly.  That rule is what keeps the serve loop's
byte-identity claim enforceable: with a :class:`VirtualClock` the loop is
a pure function of its inputs (digest-pinned against batch ``api.run``),
and with a :class:`WallClock` the *same code* paces itself against real
time for ``--realtime`` serving.  The ``determinism`` lint pass enforces
the boundary statically: wall-clock reads anywhere else under
``repro.serve`` are findings.

Three implementations:

- :class:`VirtualClock` -- accelerated time for tests, benches, and batch
  replays.  ``perf()`` ticks a deterministic counter (so measured
  "durations" are exactly 0 and can never trip a tick deadline), waits
  are no-ops that only count.
- :class:`WallClock` -- real time, optionally sped up (``speedup=60``
  replays a minute of trace per wall second).
- :class:`FakeClock` -- scripted ``perf()`` values for deadline/degradation
  tests: the test decides how long each solve "took".
"""

from __future__ import annotations

import time
from typing import Sequence

__all__ = ["Clock", "VirtualClock", "WallClock", "FakeClock"]


class Clock:
    """Time source injected into the serve loop.

    ``perf()`` is a monotonic seconds reading used *only* for
    observability and deadline accounting -- it never steers simulation
    dynamics, which advance in virtual time.  ``pace(virtual_seconds)``
    blocks until the run may proceed past that virtual instant;
    ``sleep(seconds)`` waits out a cursor that has no data yet.
    """

    #: True when ``pace`` actually blocks (wall-clock serving).
    realtime = False

    #: True when ``perf()`` intervals carry information.  The serve loop
    #: skips its per-tick latency reads when this is False -- on a clock
    #: whose intervals are defined to be zero, measuring them is pure
    #: hot-loop overhead.
    measures = True

    def perf(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    def pace(self, virtual_seconds: float) -> None:
        raise NotImplementedError


class VirtualClock(Clock):
    """Accelerated time: never blocks, measures nothing.

    ``perf()`` returns a counter that advances by zero-width steps (each
    call returns the previous value), so any ``t1 - t0`` interval measured
    through it is exactly ``0.0`` -- a virtual-clock run can never trip a
    tick deadline, which is what pins the degradation-free digest path.
    ``sleep``/``pace`` return immediately but count invocations, so tests
    can assert the loop *would* have waited.
    """

    measures = False

    def __init__(self) -> None:
        self.sleeps = 0
        self.slept_seconds = 0.0
        self.paced = 0

    def perf(self) -> float:
        return 0.0

    def sleep(self, seconds: float) -> None:
        self.sleeps += 1
        self.slept_seconds += float(seconds)

    def pace(self, virtual_seconds: float) -> None:
        self.paced += 1


class WallClock(Clock):
    """Real time, for ``--realtime`` serving.

    ``speedup`` maps virtual seconds to wall seconds: at the default 1.0
    the loop replays trace time 1:1; at 60.0 each trace minute takes one
    wall second.  ``pace(v)`` blocks until ``v`` virtual seconds have
    elapsed since this clock was constructed (loop start).
    """

    realtime = True

    #: Longest single wait inside ``pace`` -- keeps the loop responsive
    #: to cursor growth and KeyboardInterrupt during long gaps.
    _MAX_NAP = 0.5

    def __init__(self, speedup: float = 1.0) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self.speedup = float(speedup)
        self._start = time.monotonic()

    def perf(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def elapsed_virtual(self) -> float:
        """Virtual seconds elapsed since construction."""
        return (time.monotonic() - self._start) * self.speedup

    def pace(self, virtual_seconds: float) -> None:
        while True:
            behind = virtual_seconds - self.elapsed_virtual()
            if behind <= 0:
                return
            time.sleep(min(behind / self.speedup, self._MAX_NAP))


class FakeClock(Clock):
    """Scripted ``perf()`` readings for deadline/degradation tests.

    ``perf_values`` are returned in order; when exhausted, the last value
    repeats.  Waits are recorded, never taken.
    """

    def __init__(self, perf_values: Sequence[float] = (0.0,)) -> None:
        values = [float(v) for v in perf_values]
        if not values:
            raise ValueError("perf_values must be non-empty")
        self._values = values
        self._index = 0
        self.sleeps = 0
        self.paced = 0

    def perf(self) -> float:
        value = self._values[min(self._index, len(self._values) - 1)]
        self._index += 1
        return value

    def sleep(self, seconds: float) -> None:
        self.sleeps += 1

    def pace(self, virtual_seconds: float) -> None:
        self.paced += 1
