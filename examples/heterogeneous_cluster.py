"""Heterogeneous allocation: mixing CPU and GPU replicas (paper §7).

The paper's Faro targets homogeneous CPU clusters and calls CPU/GPU mixes
an open problem "with Faro representing a first step".  This example takes
that step with :mod:`repro.hetero`: four jobs -- two with ordinary SLOs and
two with SLOs *below* the CPU processing time (only reachable on
accelerators) -- are planned onto a cluster with 24 vCPUs and 4 GPUs, and
the same jobs are planned CPU-only for contrast.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.core.utility import SLO
from repro.hetero import (
    CPU_SMALL,
    GPU_T4,
    GPU_V100,
    HeteroCapacity,
    HeteroJob,
    HeteroProblem,
    solve_hetero_allocation,
)


def build_jobs() -> list[HeteroJob]:
    loose = SLO(target=0.72, percentile=99.0)   # 4x the 180 ms CPU time
    tight = SLO(target=0.12, percentile=99.0)   # below CPU processing time
    return [
        HeteroJob(name="recsys", slo=loose, proc_time=0.18, arrival_rate=25.0),
        HeteroJob(name="moderation", slo=loose, proc_time=0.18, arrival_rate=10.0),
        HeteroJob(name="fraud", slo=tight, proc_time=0.18, arrival_rate=12.0),
        HeteroJob(name="eta", slo=tight, proc_time=0.18, arrival_rate=6.0, priority=2.0),
    ]


def show(label: str, allocation) -> None:
    print(f"{label}: total utility {allocation.total_utility:.3f} "
          f"(cpus={allocation.cpus_used:.0f}, accels={allocation.accels_used:.0f})")
    for name, pools in allocation.counts.items():
        pool = ", ".join(f"{count}x {tname}" for tname, count in sorted(pools.items()))
        print(f"  {name:12s} utility={allocation.utilities[name]:.3f}   [{pool}]")
    print()


def main() -> None:
    jobs = build_jobs()
    capacity = HeteroCapacity(cpus=24, mem=96, accels=4)

    print("Heterogeneous allocation: 4 jobs, 24 vCPU + 4 accelerators")
    print("=" * 60)
    cpu_only = solve_hetero_allocation(HeteroProblem(jobs, [CPU_SMALL], capacity))
    show("CPU-only catalog", cpu_only)

    mixed = solve_hetero_allocation(
        HeteroProblem(jobs, [CPU_SMALL, GPU_T4, GPU_V100], capacity)
    )
    show("CPU+GPU catalog", mixed)

    gained = mixed.total_utility - cpu_only.total_utility
    print(f"Admitting accelerators gains {gained:.3f} utility: the tight-SLO")
    print("jobs (fraud, eta) are physically unreachable on 180 ms CPU replicas,")
    print("so the planner spends GPUs exactly there and leaves the loose-SLO")
    print("jobs on cheap CPU capacity.")


if __name__ == "__main__":
    main()
