"""Writing a custom autoscaling policy and plugging it into the registry.

Any object implementing :class:`repro.policy.AutoscalePolicy` can drive the
simulated cluster -- the same interface Faro and all paper baselines use.
This example implements a simple "queue-proportional" policy, registers it
on the control-plane policy registry with ``@register_policy`` (typed
options included), and races it against Faro through the same declarative
``repro.api.run`` entry point the built-ins use.

Run:  python examples/custom_policy.py
"""

import math
from dataclasses import dataclass

from repro import api
from repro.policy import AutoscalePolicy, JobObservation, ScalingDecision


class QueueProportionalPolicy(AutoscalePolicy):
    """Scale each job to clear its current queue within one SLO window.

    Demonstrates the observation fields available to policies: queue
    length, arrival rate, measured processing time and latency.
    """

    name = "QueueProportional"
    tick_interval = 30.0

    def __init__(self, slos: dict[str, float], min_replicas: int = 1) -> None:
        self.slos = slos
        self.min_replicas = min_replicas

    def tick(
        self, now: float, observations: dict[str, JobObservation]
    ) -> ScalingDecision | None:
        decision = ScalingDecision()
        for name, obs in observations.items():
            slo = self.slos.get(name)
            if slo is None:
                continue
            proc = max(obs.mean_proc_time, 1e-6)
            # Steady-state need plus enough servers to drain the backlog
            # within the SLO budget.
            steady = obs.arrival_rate * proc
            drain = obs.queue_length * proc / max(slo, 1e-6)
            target = max(int(math.ceil(steady + drain)), self.min_replicas)
            if target != obs.target_replicas:
                decision.replicas[name] = target
        return decision if decision.replicas else None


@dataclass(frozen=True)
class QueueProportionalOptions:
    """Typed options: validated against spec-file 'options' keys."""

    min_replicas: int = 1


@api.register_policy(
    "queue-proportional",
    kind="plugin",
    description="Example plugin: scale to drain the queue within one SLO.",
    config_type=QueueProportionalOptions,
)
def build_queue_proportional(scenario, seed, options):
    options = options or QueueProportionalOptions()
    return QueueProportionalPolicy(scenario.slos, min_replicas=options.min_replicas)


def main() -> None:
    spec = api.ExperimentSpec.compare(
        "custom-vs-faro",
        api.ScenarioSpec(
            kind="paper", params={"size": "SO", "num_jobs": 6,
                                  "duration_minutes": 30, "seed": 1}
        ),
        ["queue-proportional", "faro-fairsum"],
        trials=1,
        seed=0,
        predictor_profile="fast",
    )
    report = api.run(spec)
    (scenario_name,) = report.scenario_names()
    print(f"custom policy registered: "
          f"{'queue-proportional' in api.get_registry()}")
    print("-" * 60)
    for label in report.policy_labels():
        stats = report.get(scenario_name, label)
        print(
            f"{label:18s} lost-utility={stats.lost_utility_mean:5.2f} "
            f"violations={stats.violation_rate_mean:6.2%}"
        )
    print()
    print("The custom reactive policy is respectable on steady load but has")
    print("no prediction and no cross-job coordination -- the two things")
    print("Faro's multi-tenant optimizer adds.")


if __name__ == "__main__":
    main()
