"""Built-in analysis passes; importing this package registers all of them.

Seven rules guard the byte-identity invariant and the registry contract:

=================== ======== ====================================================
pass id             scope    what it rejects
=================== ======== ====================================================
determinism         file     global RNG, unseeded generators, wall-clock in sim
ordered-iteration   file     hash-ordered set iteration on merge/output paths
frozen-mutation     file     object.__setattr__ outside construction hooks
registry-contract   file     undocumented/untyped/non-round-trippable entries
spawn-safety        file     unpicklable callables handed to process pools
rng-batching        file     per-iteration scalar RNG draws in sim hot loops
perf-gate           project  emitted BENCH baselines check_perf.py never gates
=================== ======== ====================================================
"""

from repro.analysis.passes import (  # noqa: F401  (imported for registration)
    determinism,
    frozen_spec,
    ordering,
    perf_gate,
    registry_contract,
    rng_batching,
    spawn_safety,
)

__all__ = [
    "determinism",
    "frozen_spec",
    "ordering",
    "perf_gate",
    "registry_contract",
    "rng_batching",
    "spawn_safety",
]
