"""Randomized differential suite for the vectorized dispatch paths.

The vectorized request path (PR 4, extended to jittered service and drop
directives in this round) claims *bit-identity* with the per-request scalar
loop -- every latency float, every replica's state, every totals counter,
and the RNG generator's final position.  These properties fuzz that claim
across the whole randomness cross-product (jitter x drop-rate x pool size x
queue pressure) instead of trusting a handful of handpicked cases, and the
event-time fault path is checked the same way: vectorized and scalar offer
loops must split chunks at the exact same failure instants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.models import ModelProfile
from repro.cluster.router import JobRouter
from repro.sim.faults import FaultConfig
from repro.sim.lifecycle import EventFaultProcess


def make_router(jitter, replicas, drop_rate, threshold, seed):
    router = JobRouter(
        job_name="svc",
        model=ModelProfile(name="m", proc_time=0.18, proc_jitter=jitter),
        initial_replicas=replicas,
        queue_threshold=threshold,
        cold_start_range=(0.0, 0.0),
        seed=seed,
    )
    router.drop_rate = drop_rate
    return router


def chunked_arrivals(rng, chunks, tick, rate):
    out, now = [], 0.0
    for _ in range(chunks):
        n = int(rng.poisson(rate * tick))
        out.append(np.sort(rng.random(n)) * tick + now)
        now += tick
    return out


def router_state(router, now):
    return {
        "replicas": {
            rid: (r.ready_at, r.free_at, r.served, r.active)
            for rid, r in router._replicas.items()
        },
        "queue": router.queue_length(now),
        "totals": (
            router.totals.arrivals,
            router.totals.served,
            router.totals.tail_dropped,
            router.totals.explicit_dropped,
        ),
        "rng": router._rng.bit_generator.state,
    }


class TestOfferManyFuzz:
    """offer_many == the scalar loop, bit for bit, on randomized chunks."""

    @settings(max_examples=40, deadline=None)
    @given(
        jitter=st.sampled_from([0.0, 0.05, 0.2]),
        drop_rate=st.sampled_from([0.0, 0.05, 0.3]),
        replicas=st.integers(min_value=1, max_value=16),
        threshold=st.sampled_from([3, 50]),
        rate=st.floats(min_value=0.2, max_value=30.0),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_bit_identical_including_rng_state(
        self, jitter, drop_rate, replicas, threshold, rate, seed
    ):
        rng = np.random.default_rng(seed)
        chunks = chunked_arrivals(rng, chunks=4, tick=10.0, rate=rate)
        scalar = make_router(jitter, replicas, drop_rate, threshold, seed=7)
        batch = make_router(jitter, replicas, drop_rate, threshold, seed=7)
        now = 0.0
        for chunk in chunks:
            now += 10.0
            expected = np.array([scalar.offer(a) for a in chunk.tolist()])
            got = batch.offer_many(chunk)
            np.testing.assert_array_equal(got, expected)
            assert router_state(batch, now) == router_state(scalar, now)

    @settings(max_examples=20, deadline=None)
    @given(
        jitter=st.sampled_from([0.0, 0.08]),
        drop_rate=st.sampled_from([0.0, 0.1]),
        replicas=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_interleaved_scaling_keeps_identity(
        self, jitter, drop_rate, replicas, seed
    ):
        """Scale events between chunks (the control loop's usage pattern)
        must not open a gap between the paths."""
        rng = np.random.default_rng(seed)
        chunks = chunked_arrivals(rng, chunks=3, tick=10.0, rate=4.0)
        scalar = make_router(jitter, replicas, drop_rate, 50, seed=3)
        batch = make_router(jitter, replicas, drop_rate, 50, seed=3)
        now = 0.0
        targets = [replicas + 2, max(replicas - 1, 1), replicas]
        for chunk, target in zip(chunks, targets):
            now += 10.0
            expected = np.array([scalar.offer(a) for a in chunk.tolist()])
            np.testing.assert_array_equal(batch.offer_many(chunk), expected)
            scalar.scale_to(target, now)
            batch.scale_to(target, now)
            assert router_state(batch, now) == router_state(scalar, now)


class TestEventFaultCuts:
    """Exact failure instants, and identical splits on both offer paths."""

    def test_failure_times_shrink_the_pool(self):
        process = EventFaultProcess(
            FaultConfig(mttf_seconds=30.0, seed=1, process="event")
        )
        times = process.failure_times("j", 8, 0.0, 600.0)
        assert times == sorted(times)
        assert 0 < len(times) <= 8
        assert all(0.0 < t <= 600.0 for t in times)
        assert process.failures_injected["j"] == len(times)

    def test_failure_times_deterministic(self):
        a = EventFaultProcess(FaultConfig(mttf_seconds=50.0, seed=9, process="event"))
        b = EventFaultProcess(FaultConfig(mttf_seconds=50.0, seed=9, process="event"))
        for start in (0.0, 120.0, 240.0):
            assert a.failure_times("j", 5, start, 120.0) == b.failure_times(
                "j", 5, start, 120.0
            )

    def test_zero_pool_and_zero_dt(self):
        process = EventFaultProcess(FaultConfig(mttf_seconds=10.0, seed=0))
        assert process.failure_times("j", 0, 0.0, 100.0) == []
        assert process.failure_times("j", 3, 0.0, 0.0) == []
        with pytest.raises(ValueError):
            process.failure_times("j", -1, 0.0, 1.0)
        with pytest.raises(ValueError):
            process.failure_times("j", 1, 0.0, -1.0)

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_event_cuts_identical_across_offer_paths(self, vectorize):
        """The chunk split at failure instants is the same simulation no
        matter which offer path runs it -- pinned by comparing both paths'
        full per-minute series."""
        results = {}
        for vec in (True, False):
            results[vec] = self._run_event_sim(vec)
        for field in (
            "arrivals", "drops", "violations", "latency_p",
            "utility", "effective_utility", "replicas",
        ):
            np.testing.assert_array_equal(
                getattr(results[True].jobs["a"], field),
                getattr(results[False].jobs["a"], field),
            )
        meta = results[vectorize].metadata
        assert meta["total_failures"] > 0
        assert meta["dispatch"]["fault_chunk_cuts"] > 0

    @staticmethod
    def _run_event_sim(vectorize, faults="event"):
        from repro.cluster.job import InferenceJobSpec
        from repro.cluster.kubernetes import ResourceQuota
        from repro.cluster.models import RESNET34
        from repro.sim import (
            RequestBackendOptions,
            Simulation,
            SimulationConfig,
        )
        from tests.test_simulation import StaticPolicy

        jobs = [InferenceJobSpec.with_default_slo("a", RESNET34)]
        traces = {"a": np.full(10, 300.0)}
        config = SimulationConfig(
            duration_minutes=10, seed=0, cold_start_range=(10.0, 10.0),
            faults=FaultConfig(mttf_seconds=45.0, seed=1, process="event")
            if faults == "event" else None,
        )
        sim = Simulation(
            jobs, traces, StaticPolicy({"a": 4}), ResourceQuota.of_replicas(4),
            config=config, initial_replicas={"a": 4},
            options=RequestBackendOptions(vectorize=vectorize),
        )
        return sim.run()


class TestDispatchCounters:
    """The harness reports which regime served each request (metadata only:
    counters never enter report digests)."""

    def test_vectorized_run_counts_vector_requests(self):
        result = TestEventFaultCuts._run_event_sim(True, faults=None)
        dispatch = result.metadata["dispatch"]
        assert dispatch["vector_requests"] > 0
        assert dispatch["fault_chunk_cuts"] == 0
        total = dispatch["vector_requests"] + dispatch["scalar_requests"]
        assert total == int(result.jobs["a"].arrivals.sum())

    def test_scalar_run_counts_everything_scalar(self):
        result = TestEventFaultCuts._run_event_sim(False, faults=None)
        dispatch = result.metadata["dispatch"]
        assert dispatch["vector_requests"] == 0
        assert dispatch["scalar_requests"] == int(
            result.jobs["a"].arrivals.sum()
        )
