"""Adapters from forecasters to the autoscaler's WorkloadPredictor protocol.

The autoscaler asks for ``sample_paths(history, horizon, num_samples)``
where ``history`` is the recent arrival-rate series collected by the metrics
pipeline.  :class:`ForecastWorkloadPredictor` serves samples from a trained
:class:`~repro.forecast.base.Forecaster`; :class:`OracleWorkloadPredictor`
reads the ground-truth trace (used in ablations and as an upper bound in
tests).
"""

from __future__ import annotations

import numpy as np

from repro.forecast.base import Forecaster

__all__ = ["ForecastWorkloadPredictor", "OracleWorkloadPredictor"]


class ForecastWorkloadPredictor:
    """Wraps a trained forecaster; optionally rescales history units.

    ``history_scale`` converts the controller's rate units into the units
    the forecaster was trained on (e.g. requests/second -> requests/minute)
    and back.
    """

    def __init__(
        self,
        forecaster: Forecaster,
        history_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if history_scale <= 0:
            raise ValueError(f"history_scale must be positive, got {history_scale}")
        self.forecaster = forecaster
        self.history_scale = history_scale
        self._rng = np.random.default_rng(seed)

    def sample_paths(
        self, history: np.ndarray, horizon: int, num_samples: int
    ) -> np.ndarray:
        scaled = np.asarray(history, dtype=float) * self.history_scale
        if num_samples == 1:
            # Autoscaler convention: a single sample means "point forecast".
            paths = self.forecaster.predict(scaled, horizon)[None, :]
        else:
            paths = self.forecaster.sample_paths(
                scaled, horizon, num_samples, rng=self._rng
            )
        return np.maximum(paths / self.history_scale, 0.0)


class OracleWorkloadPredictor:
    """Perfect-information predictor reading from the true future trace.

    ``trace`` is the full arrival-rate series (same units and sampling
    interval as the controller's history) and ``clock`` is a callable
    returning the current trace index.  A ``noise`` fraction can blur the
    oracle to emulate imperfect prediction.
    """

    def __init__(
        self,
        trace: np.ndarray,
        clock,
        noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.trace = np.asarray(trace, dtype=float)
        self.clock = clock
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def sample_paths(
        self, history: np.ndarray, horizon: int, num_samples: int
    ) -> np.ndarray:
        start = int(self.clock())
        future = self.trace[start : start + horizon]
        if future.shape[0] < horizon:
            pad_value = future[-1] if future.shape[0] else 0.0
            future = np.concatenate(
                [future, np.full(horizon - future.shape[0], pad_value)]
            )
        paths = np.tile(future, (num_samples, 1))
        if self.noise > 0:
            jitter = self._rng.normal(1.0, self.noise, size=paths.shape)
            paths = paths * np.maximum(jitter, 0.0)
        return paths
