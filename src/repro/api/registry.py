"""Policy registry: the control plane's catalog of autoscaling policies.

Every policy the experiment harness can run -- Faro variants, baselines,
decentralized controllers, user plugins -- is registered here under a
stable name together with a *typed* options dataclass and a builder.  The
registry replaces the old hardcoded ``ALL_FARO_VARIANTS``/``ALL_BASELINES``
tuples and the ``make_policy`` if/elif ladder: resolution, option
validation, and construction all go through one lookup.

Registering a policy::

    from dataclasses import dataclass
    from repro.api import register_policy

    @dataclass(frozen=True)
    class MyOptions:
        aggressiveness: float = 1.0

    @register_policy("my-policy", kind="plugin", config_type=MyOptions,
                     description="Scales by vibes.")
    def build_my_policy(scenario, seed, options):
        return MyPolicy(slos=scenario.slos, k=options.aggressiveness)

The builder receives ``(scenario, seed, options)`` where ``options`` is an
instance of ``config_type`` (or ``None`` when no config type is declared).
``PolicySpec(name="my-policy", options={"aggressiveness": 2.0})`` then
resolves through the same path as every built-in policy.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenarios import Scenario
    from repro.policy import AutoscalePolicy

__all__ = [
    "PolicyInfo",
    "PolicyRegistry",
    "register_policy",
    "get_registry",
    "PLUGIN_ENTRY_POINT_GROUPS",
    "load_entry_point_plugins",
]

#: Builder signature: ``(scenario, seed, options) -> AutoscalePolicy``.
PolicyBuilder = Callable[["Scenario", int, Any], "AutoscalePolicy"]


@dataclass(frozen=True)
class PolicyInfo:
    """One registered policy: name, provenance, options schema, builder."""

    name: str
    kind: str
    description: str
    builder: PolicyBuilder
    config_type: type | None = None
    aliases: tuple[str, ...] = ()

    def option_fields(self) -> list[tuple[str, Any]]:
        """(field name, default) pairs of the options schema, for docs/CLI."""
        if self.config_type is None:
            return []
        out = []
        for f in fields(self.config_type):
            if f.default is not MISSING:
                default = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = None
            out.append((f.name, default))
        return out


class PolicyRegistry:
    """Name -> :class:`PolicyInfo` catalog with typed option parsing.

    Names are case-insensitive and unique across primary names and
    aliases.  Iteration order is registration order, which the built-in
    registrations use to preserve the paper's policy ordering.
    """

    def __init__(self) -> None:
        self._entries: dict[str, PolicyInfo] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------ register

    def register(
        self,
        name: str,
        *,
        kind: str = "plugin",
        description: str = "",
        config_type: type | None = None,
        aliases: tuple[str, ...] = (),
    ) -> Callable[[PolicyBuilder], PolicyBuilder]:
        """Decorator registering ``builder`` under ``name``."""

        def decorator(builder: PolicyBuilder) -> PolicyBuilder:
            self.add(
                PolicyInfo(
                    name=name,
                    kind=kind,
                    description=description,
                    builder=builder,
                    config_type=config_type,
                    aliases=tuple(aliases),
                )
            )
            return builder

        return decorator

    def add(self, info: PolicyInfo) -> None:
        """Register ``info``; rejects duplicate names/aliases."""
        if not info.name or info.name != info.name.strip():
            raise ValueError(f"invalid policy name {info.name!r}")
        if info.config_type is not None and not is_dataclass(info.config_type):
            raise TypeError(
                f"config_type for {info.name!r} must be a dataclass, "
                f"got {info.config_type!r}"
            )
        key = info.name.lower()
        for taken in (key, *[a.lower() for a in info.aliases]):
            if taken in self._entries or taken in self._aliases:
                raise ValueError(f"policy name {taken!r} is already registered")
        self._entries[key] = info
        for alias in info.aliases:
            self._aliases[alias.lower()] = key

    def unregister(self, name: str) -> None:
        """Remove a policy (plugins/tests); unknown names raise ValueError."""
        info = self.get(name)
        del self._entries[info.name.lower()]
        for alias in info.aliases:
            self._aliases.pop(alias.lower(), None)

    # ------------------------------------------------------------- lookup

    def get(self, name: str) -> PolicyInfo:
        """Resolve ``name`` (or an alias) to its :class:`PolicyInfo`."""
        key = str(name).lower()
        key = self._aliases.get(key, key)
        info = self._entries.get(key)
        if info is None:
            known = ", ".join(sorted(self._entries))
            raise ValueError(f"unknown policy {name!r}; registered: {known}")
        return info

    def __contains__(self, name: object) -> bool:
        key = str(name).lower()
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[PolicyInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self, kind: str | None = None) -> tuple[str, ...]:
        """Registered primary names (registration order), optionally by kind."""
        return tuple(
            info.name for info in self if kind is None or info.kind == kind
        )

    def infos(self, kind: str | None = None) -> tuple[PolicyInfo, ...]:
        return tuple(info for info in self if kind is None or info.kind == kind)

    # -------------------------------------------------------------- build

    def parse_options(self, name: str, options: Mapping[str, Any] | Any = None):
        """Validate ``options`` against the policy's config type.

        Accepts a mapping (JSON-shaped, as stored in a
        :class:`~repro.api.spec.PolicySpec`), an already-constructed config
        instance, or ``None``.  Unknown keys raise ``ValueError`` so typos
        in spec files fail loudly.
        """
        info = self.get(name)
        if info.config_type is None:
            if options:
                raise ValueError(
                    f"policy {info.name!r} accepts no options, got {dict(options)!r}"
                )
            return None
        if isinstance(options, info.config_type):
            return options
        data = dict(options or {})
        known = {f.name for f in fields(info.config_type)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown option(s) {sorted(unknown)} for policy {info.name!r}; "
                f"accepted: {sorted(known)}"
            )
        return info.config_type(**data)

    def build(
        self,
        name: str,
        scenario: "Scenario",
        seed: int = 0,
        options: Mapping[str, Any] | Any = None,
    ) -> "AutoscalePolicy":
        """Construct the policy ``name`` for ``scenario``.

        ``options`` follows :meth:`parse_options`.  The returned object is a
        ready-to-tick :class:`~repro.policy.AutoscalePolicy`.
        """
        info = self.get(name)
        config = self.parse_options(name, options)
        return info.builder(scenario, int(seed), config)


#: Process-wide default registry.  ``repro.api`` populates it with every
#: built-in policy at import time; plugins add to it via
#: :func:`register_policy`.
_DEFAULT_REGISTRY = PolicyRegistry()


def get_registry() -> PolicyRegistry:
    """The process-wide default :class:`PolicyRegistry`."""
    return _DEFAULT_REGISTRY


def register_policy(
    name: str,
    *,
    kind: str = "plugin",
    description: str = "",
    config_type: type | None = None,
    aliases: tuple[str, ...] = (),
) -> Callable[[PolicyBuilder], PolicyBuilder]:
    """Register a policy builder on the default registry (decorator)."""
    return _DEFAULT_REGISTRY.register(
        name,
        kind=kind,
        description=description,
        config_type=config_type,
        aliases=aliases,
    )


# ----------------------------------------------------- entry-point plugins

#: Entry-point groups scanned for third-party registrations: policies,
#: simulation backends, and static-analysis passes.
PLUGIN_ENTRY_POINT_GROUPS = (
    "repro_faro.policies",
    "repro_faro.sim_backends",
    "repro_faro.analysis_passes",
)


def load_entry_point_plugins(
    groups: tuple[str, ...] = PLUGIN_ENTRY_POINT_GROUPS,
) -> tuple[str, ...]:
    """Load third-party registry plugins advertised via package metadata.

    An installed package opts in by declaring entry points, e.g.::

        [project.entry-points."repro_faro.policies"]
        my-policy = my_package.faro_plugin:register

    Each entry point resolves to either a callable (invoked with no
    arguments) or a module whose import performs the registration -- both
    are expected to call :func:`register_policy` /
    :func:`repro.sim.backends.register_backend`.  Returns
    ``"group:name"`` labels of the plugins that loaded.

    ``repro.api`` calls this once at import time, which also covers
    ``spawn`` sweep workers (:mod:`repro.api.parallel`): a fresh worker
    interpreter imports ``repro.api`` before resolving any policy or
    backend named in a spec, so third-party names resolve there too.  A
    plugin that fails to load is reported as a ``RuntimeWarning`` and
    skipped -- one broken package must not take down every experiment.
    """
    import warnings
    from importlib import metadata

    loaded: list[str] = []
    for group in groups:
        try:
            entries = metadata.entry_points(group=group)
        except TypeError:  # pragma: no cover - Python < 3.10 select API
            entries = metadata.entry_points().get(group, ())  # type: ignore[attr-defined]
        for entry in entries:
            try:
                plugin = entry.load()
                if callable(plugin):
                    plugin()
            except Exception as exc:
                warnings.warn(
                    f"failed to load plugin {entry.name!r} from entry-point "
                    f"group {group!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            loaded.append(f"{group}:{entry.name}")
    return tuple(loaded)
