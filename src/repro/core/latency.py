"""Latency estimators used by Faro's optimizer (paper §3.3-§3.4).

Three estimators are provided behind a single :class:`LatencyModel` interface:

- :class:`UpperBoundLatency` -- the pessimistic estimator: if ``kappa``
  requests arrive (nearly) simultaneously and ``N`` replicas each take ``p``
  seconds per request, the batch completes after ``p * kappa / N``.
- :class:`MDCLatency` -- the M/D/c queueing estimator: the k-th percentile
  latency under Poisson arrivals and deterministic service, ``inf`` when the
  queue is unstable (``rho >= 1``).
- :class:`RelaxedMDCLatency` -- the plateau-free relaxation (§3.4, Fig. 6):
  for ``rho > rho_max`` the latency of the *stable* queue at ``rho_max`` is
  scaled by ``lam / lam_rho_max``, so the objective keeps differentiating
  "how unstable" a queue is instead of returning a flat ``inf``.

The paper's worked example (§3.3) -- ``p`` = 150 ms, ``lam`` = 40 req/s,
SLO 600 ms -- needs 10 replicas under the upper bound but only 8 under
M/D/c at p99.99; tests pin this behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.queueing.ggc import ggc_latency_percentile
from repro.queueing.mdc import mdc_latency_percentile
from repro.queueing.mmc import mmc_wait_percentile

__all__ = [
    "LatencyModel",
    "UpperBoundLatency",
    "MDCLatency",
    "RelaxedMDCLatency",
    "MMCLatency",
    "GGCLatency",
    "RelaxedLatency",
    "UPPER_BOUND",
    "MDC",
    "RELAXED_MDC",
    "MMC",
    "replicas_for_slo",
]


class LatencyModel:
    """Interface: estimate the ``quantile`` latency of a job.

    Subclasses implement :meth:`estimate`; all estimators accept a
    (possibly fractional) replica count so they can be used inside
    continuous optimizers, clamping at a minimum of one replica.
    """

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        """Latency (seconds) at ``quantile`` for arrival rate ``lam`` (req/s)."""
        raise NotImplementedError

    @staticmethod
    def _validate(quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        if lam < 0:
            raise ValueError(f"arrival rate must be non-negative, got {lam}")
        if proc_time <= 0:
            raise ValueError(f"processing time must be positive, got {proc_time}")
        return max(float(replicas), 1.0)


@dataclass(frozen=True)
class UpperBoundLatency(LatencyModel):
    """Pessimistic batch estimator: ``max(p, p * lam * window / N)``.

    ``window`` is the burst horizon (seconds) over which arrivals are assumed
    simultaneous; the paper's example uses one second.
    """

    window: float = 1.0

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        replicas = self._validate(quantile, lam, proc_time, replicas)
        batch = lam * self.window
        return max(proc_time, proc_time * batch / replicas)


@dataclass(frozen=True)
class MDCLatency(LatencyModel):
    """M/D/c percentile latency; ``inf`` when ``rho = p * lam / N >= 1``.

    Fractional replica counts are linearly interpolated between the two
    neighbouring integer server counts so that continuous optimizers see a
    continuous function.
    """

    refined: bool = False

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        replicas = self._validate(quantile, lam, proc_time, replicas)
        if lam == 0.0:
            return proc_time
        lower = max(int(math.floor(replicas)), 1)
        upper = lower + 1
        frac = replicas - lower
        lat_lower = mdc_latency_percentile(quantile, lam, proc_time, lower, refined=self.refined)
        if frac == 0.0:
            return lat_lower
        lat_upper = mdc_latency_percentile(quantile, lam, proc_time, upper, refined=self.refined)
        if math.isinf(lat_lower):
            # The lower integer point is unstable: report inf until the
            # fractional count itself guarantees stability.
            return math.inf if proc_time * lam / replicas >= 1.0 else lat_upper
        return (1.0 - frac) * lat_lower + frac * lat_upper


@dataclass(frozen=True)
class RelaxedMDCLatency(LatencyModel):
    """Plateau-free M/D/c relaxation (paper §3.4).

    For ``rho <= rho_max`` this equals :class:`MDCLatency`; beyond that the
    latency grows linearly with ``lam`` (proportional to queue growth rate):

        ``(lam / lam_max) * latency(quantile, p, lam_max, N)``

    where ``lam_max = rho_max * N / p``.  The default ``rho_max = 0.95``
    follows the paper ("removes the plateau but still stays close").
    """

    rho_max: float = 0.95
    refined: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.rho_max < 1.0:
            raise ValueError(f"rho_max must be in (0, 1), got {self.rho_max}")

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        replicas = self._validate(quantile, lam, proc_time, replicas)
        if lam == 0.0:
            return proc_time
        base = MDCLatency(refined=self.refined)
        rho = proc_time * lam / replicas
        if rho <= self.rho_max:
            return base.estimate(quantile, lam, proc_time, replicas)
        lam_max = self.rho_max * replicas / proc_time
        stable_latency = base.estimate(quantile, lam_max, proc_time, replicas)
        return (lam / lam_max) * stable_latency


def _interp_integer_servers(estimate_at, lam: float, proc_time: float, replicas: float) -> float:
    """Linearly interpolate an integer-server estimator at fractional replicas.

    ``estimate_at(servers: int) -> float`` evaluates the underlying queueing
    formula; the same stability handling as :class:`MDCLatency` applies when
    the lower integer point is unstable.
    """
    lower = max(int(math.floor(replicas)), 1)
    upper = lower + 1
    frac = replicas - lower
    lat_lower = estimate_at(lower)
    if frac == 0.0:
        return lat_lower
    lat_upper = estimate_at(upper)
    if math.isinf(lat_lower):
        return math.inf if proc_time * lam / replicas >= 1.0 else lat_upper
    return (1.0 - frac) * lat_lower + frac * lat_upper


@dataclass(frozen=True)
class MMCLatency(LatencyModel):
    """M/M/c percentile latency (exponential service times).

    The §7 adaptation for domains without deterministic service, e.g.
    microservices: same Poisson-arrival assumption as M/D/c but with
    exponential service.  The service-time contribution to total latency
    uses the same-quantile exponential, which upper-bounds the true total
    latency quantile (wait and service quantiles do not co-occur).
    """

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        replicas = self._validate(quantile, lam, proc_time, replicas)
        if lam == 0.0:
            return proc_time
        mu = 1.0 / proc_time
        service_q = -proc_time * math.log(1.0 - quantile)

        def at(servers: int) -> float:
            wait = mmc_wait_percentile(quantile, lam, mu, servers)
            return math.inf if math.isinf(wait) else wait + service_q

        return _interp_integer_servers(at, lam, proc_time, replicas)


@dataclass(frozen=True)
class GGCLatency(LatencyModel):
    """G/G/c percentile latency via the Allen-Cunneen approximation.

    ``ca2``/``cs2`` are the squared coefficients of variation of interarrival
    and service times.  With the defaults (``ca2 = 1``, ``cs2 = 0``) this is
    exactly the M/D/c half-wait estimator, so :class:`MDCLatency` is the
    special case Faro uses for ML inference.
    """

    ca2: float = 1.0
    cs2: float = 0.0

    def __post_init__(self) -> None:
        if self.ca2 < 0 or self.cs2 < 0:
            raise ValueError("squared coefficients of variation must be non-negative")

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        replicas = self._validate(quantile, lam, proc_time, replicas)
        if lam == 0.0:
            return proc_time

        def at(servers: int) -> float:
            return ggc_latency_percentile(quantile, lam, proc_time, servers, self.ca2, self.cs2)

        return _interp_integer_servers(at, lam, proc_time, replicas)


@dataclass(frozen=True)
class RelaxedLatency(LatencyModel):
    """Plateau-free relaxation of any base latency model (paper §3.4).

    Generalizes :class:`RelaxedMDCLatency`: for ``rho <= rho_max`` the base
    model's estimate is returned unchanged; beyond that the stable-queue
    latency at ``rho_max`` is scaled by ``lam / lam_max`` so the optimizer
    keeps differentiating "how unstable" an overloaded queue is.  Use this
    to sloppify the M/M/c or G/G/c estimators for non-inference domains.
    """

    base: LatencyModel
    rho_max: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.rho_max < 1.0:
            raise ValueError(f"rho_max must be in (0, 1), got {self.rho_max}")

    def estimate(self, quantile: float, lam: float, proc_time: float, replicas: float) -> float:
        replicas = self._validate(quantile, lam, proc_time, replicas)
        if lam == 0.0:
            return proc_time
        rho = proc_time * lam / replicas
        if rho <= self.rho_max:
            return self.base.estimate(quantile, lam, proc_time, replicas)
        lam_max = self.rho_max * replicas / proc_time
        stable_latency = self.base.estimate(quantile, lam_max, proc_time, replicas)
        return (lam / lam_max) * stable_latency


#: Shared default instances (all estimators are stateless/frozen).
UPPER_BOUND = UpperBoundLatency()
MDC = MDCLatency()
RELAXED_MDC = RelaxedMDCLatency()
MMC = MMCLatency()


def replicas_for_slo(
    model: LatencyModel,
    quantile: float,
    lam: float,
    proc_time: float,
    slo: float,
    max_replicas: int = 4096,
) -> int:
    """Smallest integer replica count whose estimated latency meets ``slo``.

    Returns ``max_replicas`` if even that many replicas cannot meet the SLO
    (callers treat this as "infeasible at any reasonable size").
    """
    if slo <= 0:
        raise ValueError(f"SLO target must be positive, got {slo}")
    lo, hi = 1, max_replicas
    if model.estimate(quantile, lam, proc_time, hi) > slo:
        return max_replicas
    while lo < hi:
        mid = (lo + hi) // 2
        if model.estimate(quantile, lam, proc_time, mid) <= slo:
            hi = mid
        else:
            lo = mid + 1
    return lo
