"""Static analysis for the byte-identity invariant: ``repro.analysis``.

Every PR preserves one contract -- simulations are bit-exact and
seed-stable under refactor -- but digest pins and differential suites
only catch a violation *after* an expensive run.  This package rejects
the whole bug class statically: a pluggable AST-analysis framework
(mirroring the policy/backend/source/transform registry idiom) whose
built-in passes flag unseeded RNG, wall-clock reads in sim paths,
hash-ordered iteration on merge/output paths, frozen-spec mutation,
registry-contract gaps, spawn-unsafe callables, and perf-gate drift
before a single simulation ticks.

Entry points:

- CLI: ``repro-faro lint [paths] [--changed] [--format json]``;
- API: :func:`run_analysis` over files, or per-snippet via
  :meth:`ModuleContext.from_source` (how the fixture tests work);
- extension: :func:`register_pass` adds a rule to the same catalog the
  CLI runs, with typed options and a suppression token
  (``# repro: allow(<pass-id>) -- reason``).
"""

from repro.analysis.findings import (
    Finding,
    ModuleContext,
    ProjectContext,
    Suppression,
    parse_suppressions,
)
from repro.analysis.registry import (
    AnalysisPassInfo,
    AnalysisPassRegistry,
    get_pass_registry,
    register_pass,
)
from repro.analysis.runner import (
    AnalysisReport,
    Baseline,
    changed_files,
    collect_files,
    find_project_root,
    run_analysis,
)

# Importing the passes package registers every built-in rule, exactly the
# way repro.api registers the built-in policies at import time.
from repro.analysis import passes as _passes  # noqa: F401

__all__ = [
    "AnalysisPassInfo",
    "AnalysisPassRegistry",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Suppression",
    "changed_files",
    "collect_files",
    "find_project_root",
    "get_pass_registry",
    "parse_suppressions",
    "register_pass",
    "run_analysis",
]
