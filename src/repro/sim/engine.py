"""A small discrete-event simulation engine.

The trace simulations in this repo use a specialized chunked loop for speed,
but a general heap-based engine is useful for tests, extensions, and
modelling one-off event processes (e.g. failure injection).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["EventLoop"]


class EventLoop:
    """Heap-ordered event loop with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def run_until(self, end_time: float) -> None:
        """Process events with time <= end_time; advance the clock to it."""
        while self._heap and self._heap[0][0] <= end_time:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            self._processed += 1
            callback()
        self.now = max(self.now, end_time)

    def run(self) -> None:
        """Process all pending events (callbacks may schedule more)."""
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            self._processed += 1
            callback()
