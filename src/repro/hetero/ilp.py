"""ILP placement baseline for heterogeneous replica assignment.

Solves the device-class placement problem as an integer linear program in
the classic assignment style: integer variables ``x[j][c]`` count replicas
of device class ``c`` given to job ``j``, continuous variables ``s[j]``
carry the served request rate, and the objective maximizes the
priority-weighted normalized goodput ``sum_j w_j * s_j / lambda_j`` --
the linear counterpart of the ``throughput`` objective in
:mod:`repro.hetero.allocation`.  Constraints:

- *assignment*: every job keeps at least one replica (Faro's ``x_i >= 1``);
- *per-class inventory*: ``sum_j x[j][c] <= count_c`` when the problem
  carries device-class counts;
- *per-resource capacity*: vCPU / memory / accelerator totals stay within
  :class:`~repro.hetero.types.HeteroCapacity`;
- *SLO infeasibility*: ``x[j][c]`` is pinned to zero when the class's
  service time alone (``proc_time / speedup``) already exceeds the job's
  latency target, unless *every* class is infeasible for the job (then the
  ``x_i >= 1`` seed must still land somewhere).

When OR-Tools is installed its CBC MIP solver answers exactly; this
container does not ship it, so the default path is a pure scipy
``linprog`` LP relaxation (HiGHS) followed by floor-rounding and the same
greedy marginal-utility repair the native solver uses.  The differential
test pins the rounded result within tolerance of greedy-with-repair on
small instances.
"""

from __future__ import annotations

import math

from repro.hetero.allocation import (
    HeteroAllocation,
    HeteroJob,
    HeteroProblem,
    _greedy_fill,
    build_allocation,
)
from repro.hetero.types import ReplicaType

__all__ = ["have_ortools", "solve_ilp_allocation"]


def have_ortools() -> bool:
    """True when the optional OR-Tools MIP solver is importable."""
    try:
        from ortools.linear_solver import pywraplp  # noqa: F401
    except ImportError:
        return False
    return True


def _allowed_types(problem: HeteroProblem, job: HeteroJob) -> list[ReplicaType]:
    """Classes not ruled out by the SLO-infeasibility constraint for ``job``."""
    allowed = []
    for rtype in problem.feasible_types:
        speedup = problem.job_speedup(job, rtype)
        if job.proc_time / speedup <= job.slo.target + 1e-12:
            allowed.append(rtype)
    # If no class can meet the SLO even unloaded, the x_i >= 1 constraint
    # still needs somewhere to land -- relax the infeasibility cut entirely.
    return allowed or list(problem.feasible_types)


def _type_upper_bound(problem: HeteroProblem, rtype: ReplicaType) -> float:
    """Largest replica count of ``rtype`` any single job could ever hold."""
    bound = math.inf
    if problem.type_counts is not None:
        limit = problem.type_counts.get(rtype.name)
        if limit is not None:
            bound = float(limit)
    for need, have in (
        (rtype.cpus, problem.capacity.cpus),
        (rtype.mem, problem.capacity.mem),
        (rtype.accels, problem.capacity.accels),
    ):
        if need > 0:
            bound = min(bound, math.floor(have / need + 1e-9))
    return max(bound, 0.0)


def _solve_ortools(problem: HeteroProblem) -> dict[str, dict[ReplicaType, int]] | None:
    """Exact CBC solve; returns None when OR-Tools is unavailable."""
    try:
        from ortools.linear_solver import pywraplp
    except ImportError:
        return None
    solver = pywraplp.Solver.CreateSolver("CBC")
    if solver is None:
        return None
    jobs, types = problem.jobs, problem.feasible_types
    allowed = {job.name: {t.name for t in _allowed_types(problem, job)} for job in jobs}
    x = {}
    served = {}
    for job in jobs:
        for rtype in types:
            ub = _type_upper_bound(problem, rtype)
            if rtype.name not in allowed[job.name]:
                ub = 0.0
            x[job.name, rtype.name] = solver.IntVar(0.0, ub, f"x_{job.name}_{rtype.name}")
        served[job.name] = solver.NumVar(0.0, max(job.arrival_rate, 0.0), f"s_{job.name}")
    for job in jobs:
        solver.Add(sum(x[job.name, t.name] for t in types) >= 1)
        solver.Add(
            served[job.name]
            <= sum(
                x[job.name, t.name] * (problem.job_speedup(job, t) / job.proc_time)
                for t in types
            )
        )
    if problem.type_counts is not None:
        for rtype in types:
            limit = problem.type_counts.get(rtype.name)
            if limit is not None:
                solver.Add(sum(x[j.name, rtype.name] for j in jobs) <= limit)
    for attr, total in (
        ("cpus", problem.capacity.cpus),
        ("mem", problem.capacity.mem),
        ("accels", problem.capacity.accels),
    ):
        solver.Add(
            sum(
                x[j.name, t.name] * getattr(t, attr) for j in jobs for t in types
            )
            <= total
        )
    solver.Maximize(
        sum(
            (job.priority / job.arrival_rate) * served[job.name]
            for job in jobs
            if job.arrival_rate > 0
        )
    )
    status = solver.Solve()
    if status not in (pywraplp.Solver.OPTIMAL, pywraplp.Solver.FEASIBLE):
        raise ValueError("ILP placement is infeasible for this instance")
    counts: dict[str, dict[ReplicaType, int]] = {}
    for job in jobs:
        counts[job.name] = {}
        for rtype in types:
            value = int(round(x[job.name, rtype.name].solution_value()))
            if value > 0:
                counts[job.name][rtype] = value
    return counts


def _solve_lp_relaxation(problem: HeteroProblem) -> dict[str, dict[ReplicaType, int]]:
    """scipy HiGHS LP relaxation, floor-rounded (repair happens later)."""
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy ships with the repo
        raise RuntimeError(
            "the ILP placement baseline needs either OR-Tools or scipy"
        ) from exc

    jobs, types = problem.jobs, problem.feasible_types
    n_jobs, n_types = len(jobs), len(types)
    n_x = n_jobs * n_types

    def xi(j: int, k: int) -> int:
        return j * n_types + k

    allowed = {job.name: {t.name for t in _allowed_types(problem, job)} for job in jobs}
    objective = [0.0] * (n_x + n_jobs)
    bounds: list[tuple[float, float]] = []
    for j, job in enumerate(jobs):
        for rtype in types:
            if rtype.name not in allowed[job.name]:
                bounds.append((0.0, 0.0))
            else:
                bounds.append((0.0, _type_upper_bound(problem, rtype)))
    for j, job in enumerate(jobs):
        if job.arrival_rate > 0:
            objective[n_x + j] = -job.priority / job.arrival_rate
            bounds.append((0.0, job.arrival_rate))
        else:
            bounds.append((0.0, 0.0))

    rows: list[list[float]] = []
    rhs: list[float] = []
    if problem.type_counts is not None:
        for k, rtype in enumerate(types):
            limit = problem.type_counts.get(rtype.name)
            if limit is None:
                continue
            row = [0.0] * (n_x + n_jobs)
            for j in range(n_jobs):
                row[xi(j, k)] = 1.0
            rows.append(row)
            rhs.append(float(limit))
    for attr, total in (
        ("cpus", problem.capacity.cpus),
        ("mem", problem.capacity.mem),
        ("accels", problem.capacity.accels),
    ):
        row = [0.0] * (n_x + n_jobs)
        for j in range(n_jobs):
            for k, rtype in enumerate(types):
                row[xi(j, k)] = getattr(rtype, attr)
        rows.append(row)
        rhs.append(float(total))
    for j, job in enumerate(jobs):
        # served_j <= sum_c x[j][c] * speedup / proc_time
        row = [0.0] * (n_x + n_jobs)
        row[n_x + j] = 1.0
        for k, rtype in enumerate(types):
            row[xi(j, k)] = -problem.job_speedup(job, rtype) / job.proc_time
        rows.append(row)
        rhs.append(0.0)
        # x_i >= 1
        row = [0.0] * (n_x + n_jobs)
        for k in range(n_types):
            row[xi(j, k)] = -1.0
        rows.append(row)
        rhs.append(-1.0)

    result = linprog(objective, A_ub=rows, b_ub=rhs, bounds=bounds, method="highs")
    if not result.success:
        raise ValueError(
            f"ILP placement LP relaxation is infeasible: {result.message}"
        )
    counts: dict[str, dict[ReplicaType, int]] = {}
    for j, job in enumerate(jobs):
        counts[job.name] = {}
        for k, rtype in enumerate(types):
            value = int(math.floor(result.x[xi(j, k)] + 1e-9))
            if value > 0:
                counts[job.name][rtype] = value
    return counts


def _repair_empty_jobs(
    problem: HeteroProblem, counts: dict[str, dict[ReplicaType, int]]
) -> None:
    """Restore ``x_i >= 1`` after floor-rounding, stealing if nothing fits."""
    for job in problem.jobs:
        if sum(counts[job.name].values()) > 0:
            continue
        usage = problem.usage(counts)
        type_usage = problem.type_usage(counts)
        placed = False
        for rtype in sorted(_allowed_types(problem, job), key=problem._scarcity_cost):
            if problem._fits_with(usage, rtype) and problem._type_available(
                type_usage, rtype
            ):
                counts[job.name][rtype] = 1
                placed = True
                break
        if placed:
            continue
        # Nothing fits: move one replica from the most-provisioned job.
        donors = [
            other
            for other in problem.jobs
            if sum(counts[other.name].values()) >= 2
        ]
        if not donors:
            raise ValueError(
                f"cannot give job {job.name!r} a replica: cluster capacity "
                "exhausted and no job has replicas to spare"
            )
        donor = max(donors, key=lambda other: sum(counts[other.name].values()))
        pools = counts[donor.name]
        rtype = max(pools, key=pools.get)
        pools[rtype] -= 1
        if pools[rtype] == 0:
            del pools[rtype]
        counts[job.name][rtype] = 1


def solve_ilp_allocation(
    problem: HeteroProblem, tol: float = 1e-9
) -> HeteroAllocation:
    """ILP (or LP+rounding fallback) solve of the placement problem.

    The returned :class:`HeteroAllocation` reports utilities under
    ``problem.objective`` like the greedy solver does, so the two are
    directly comparable; with ``objective='throughput'`` both optimize the
    same normalized-goodput metric the ILP encodes linearly.
    """
    counts = _solve_ortools(problem)
    if counts is None:
        counts = _solve_lp_relaxation(problem)
    _repair_empty_jobs(problem, counts)
    # Spend capacity the rounding left on the table, greedily by marginal
    # utility per scarcity cost -- the same repair the greedy solver uses.
    _greedy_fill(problem, counts, tol)
    return build_allocation(problem, counts)
