"""M/D/c approximation tests, including the paper's worked example."""

import math

import pytest

from repro.queueing.mdc import (
    cosmetatos_correction,
    mdc_latency_percentile,
    mdc_mean_wait,
    mdc_wait_percentile,
)
from repro.queueing.mmc import mmc_mean_wait


class TestHalfWaitRule:
    def test_mean_is_half_of_mmc(self):
        lam, p, c = 3.0, 0.2, 1
        assert mdc_mean_wait(lam, p, c) == pytest.approx(
            0.5 * mmc_mean_wait(lam, 1 / p, c)
        )

    def test_md1_exact(self):
        # M/D/1 Wq is exactly half of M/M/1 Wq (Pollaczek-Khinchine).
        lam, p = 4.0, 0.2
        rho = lam * p
        exact = rho * p / (2 * (1 - rho))
        assert mdc_mean_wait(lam, p, 1) == pytest.approx(exact)

    def test_unstable_inf(self):
        assert math.isinf(mdc_mean_wait(10.0, 0.2, 1))

    def test_refined_close_to_plain_at_high_rho(self):
        lam, p, c = 18.0, 0.5, 10  # rho = 0.9
        plain = mdc_mean_wait(lam, p, c)
        refined = mdc_mean_wait(lam, p, c, refined=True)
        assert refined == pytest.approx(plain, rel=0.05)


class TestCosmetatos:
    def test_single_server_is_one(self):
        assert cosmetatos_correction(0.5, 1) == 1.0

    def test_approaches_one_at_high_utilization(self):
        assert cosmetatos_correction(0.999, 8) == pytest.approx(1.0, abs=0.01)

    def test_greater_than_one_for_multi_server(self):
        assert cosmetatos_correction(0.5, 4) > 1.0

    @pytest.mark.parametrize("rho", [0.0, 1.0, -0.5])
    def test_invalid_rho(self, rho):
        with pytest.raises(ValueError):
            cosmetatos_correction(rho, 4)


class TestPaperWorkedExample:
    """§3.3: p=150 ms, lam=40 req/s, SLO 600 ms -> M/D/c needs 8 replicas."""

    def test_eight_replicas_meet_slo(self):
        latency = mdc_latency_percentile(0.9999, 40.0, 0.150, 8)
        assert latency <= 0.600

    def test_seven_replicas_miss_slo(self):
        latency = mdc_latency_percentile(0.9999, 40.0, 0.150, 7)
        assert latency > 0.600


class TestLatencyPercentile:
    def test_includes_service_time(self):
        # At negligible load latency equals the deterministic service time.
        assert mdc_latency_percentile(0.99, 0.01, 0.2, 4) == pytest.approx(0.2, abs=1e-3)

    def test_unstable_inf(self):
        assert math.isinf(mdc_latency_percentile(0.99, 100.0, 0.2, 4))

    def test_monotone_decreasing_in_servers(self):
        values = [mdc_latency_percentile(0.99, 10.0, 0.2, c) for c in range(3, 10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_increasing_in_rate(self):
        values = [mdc_wait_percentile(0.99, lam, 0.2, 4) for lam in (2.0, 8.0, 14.0, 19.0)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_invalid_proc_time(self):
        with pytest.raises(ValueError):
            mdc_latency_percentile(0.99, 1.0, 0.0, 2)
