"""Chained ML pipelines with SLO splitting (paper §7 "Heterogeneity").

The paper notes Faro applies to ML pipelines that make chained calls to
multiple models if the application SLO can be split into per-stage
sub-SLOs -- e.g. proportionally to processing time ("for a chain with two
model calls, if one model takes 2x the other, the SLO is split 66%-33%").

This module implements that extension: a :class:`PipelineSpec` declares an
ordered chain of models with one end-to-end SLO; :func:`split_pipeline`
produces one :class:`~repro.cluster.job.InferenceJobSpec` per stage whose
sub-SLO shares the end-to-end budget proportionally (optionally with
explicit weights), so each stage can be autoscaled by Faro like any other
job.  :func:`pipeline_latency` recombines per-stage latency estimates into
an end-to-end estimate for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import InferenceJobSpec
from repro.cluster.models import ModelProfile
from repro.core.latency import LatencyModel
from repro.core.utility import SLO

__all__ = ["PipelineSpec", "split_pipeline", "pipeline_latency"]


@dataclass(frozen=True)
class PipelineSpec:
    """An inference pipeline: an ordered chain of models, one overall SLO.

    ``weights`` optionally overrides the proportional split (must match the
    number of stages; normalized internally).  Every request flows through
    every stage, so all stages see the pipeline's arrival rate.
    """

    name: str
    stages: tuple[ModelProfile, ...]
    slo: SLO
    weights: tuple[float, ...] | None = None
    priority: float = 1.0

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")
        if self.weights is not None:
            if len(self.weights) != len(self.stages):
                raise ValueError(
                    f"got {len(self.weights)} weights for {len(self.stages)} stages"
                )
            if any(w <= 0 for w in self.weights):
                raise ValueError("stage weights must be positive")

    def stage_shares(self) -> list[float]:
        """Fraction of the end-to-end SLO budget assigned to each stage."""
        raw = (
            list(self.weights)
            if self.weights is not None
            else [stage.proc_time for stage in self.stages]
        )
        total = sum(raw)
        return [value / total for value in raw]


def split_pipeline(pipeline: PipelineSpec, min_replicas: int = 1) -> list[InferenceJobSpec]:
    """One autoscalable job per pipeline stage with a proportional sub-SLO.

    Stage names are ``<pipeline>/stage<k>-<model>``; a two-model chain where
    one model takes twice as long gets a 2/3-1/3 split of the SLO budget
    (the paper's worked example).
    """
    shares = pipeline.stage_shares()
    jobs = []
    for index, (stage, share) in enumerate(zip(pipeline.stages, shares)):
        sub_target = pipeline.slo.target * share
        if sub_target <= stage.proc_time:
            raise ValueError(
                f"stage {index} of {pipeline.name!r} gets a {sub_target:.3f}s "
                f"sub-SLO below its {stage.proc_time:.3f}s processing time; "
                "the end-to-end SLO is infeasible for this chain"
            )
        jobs.append(
            InferenceJobSpec(
                name=f"{pipeline.name}/stage{index}-{stage.name}",
                model=stage,
                slo=SLO(target=sub_target, percentile=pipeline.slo.percentile),
                priority=pipeline.priority,
                min_replicas=min_replicas,
            )
        )
    return jobs


def pipeline_latency(
    pipeline: PipelineSpec,
    model: LatencyModel,
    lam: float,
    replicas: list[int],
) -> float:
    """End-to-end latency estimate: sum of per-stage percentile estimates.

    Summing per-stage percentiles is conservative (the true percentile of a
    sum is below the sum of percentiles), consistent with Faro's pessimistic
    estimation philosophy.
    """
    if len(replicas) != len(pipeline.stages):
        raise ValueError(
            f"got {len(replicas)} replica counts for {len(pipeline.stages)} stages"
        )
    quantile = pipeline.slo.quantile
    return sum(
        model.estimate(quantile, lam, stage.proc_time, count)
        for stage, count in zip(pipeline.stages, replicas)
    )
