#!/usr/bin/env python
"""Pre-PR umbrella gate: tier-1 tests, perf gates, and the static linter.

One command runs everything a PR must keep green, in the order that fails
fastest:

1. ``repro-faro lint src tools benchmarks examples`` -- static passes
   (determinism, ordered iteration, frozen-spec mutation, registry
   contract, spawn safety, rng batching, perf-gate drift), seconds;
2. optionally (``--bench-smoke``) the tiny sim-backend smoke bench --
   structural perf drift (diverged batch series, a vector kernel that
   stopped engaging) in seconds rather than at the full perf gate;
3. optionally (``--serve-smoke``) the serve-loop identity smoke --
   ``repro-faro serve --check`` replays ``specs/serve_replay.json`` and
   diffs the merged report against batch ``api.run`` byte-for-byte;
4. ``PYTHONPATH=src python -m pytest -x -q`` -- the tier-1 suite;
5. ``PYTHONPATH=src python tools/check_perf.py`` -- the perf gates
   (skippable with ``--skip-perf`` on machines whose wall-clock the
   checked-in baselines do not describe).

Every step runs even after an earlier one fails (so one invocation shows
the full damage); the exit code is 0 only when all of them passed.

    PYTHONPATH=src python tools/run_checks.py            # the full gate
    PYTHONPATH=src python tools/run_checks.py --skip-perf
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = ["CheckStep", "build_steps", "main"]


@dataclass(frozen=True)
class CheckStep:
    """One gate: a name and the argv to run from the repo root."""

    name: str
    argv: tuple[str, ...]


def build_steps(
    *,
    skip_perf: bool = False,
    skip_tests: bool = False,
    lint_changed: bool = False,
    bench_smoke: bool = False,
    serve_smoke: bool = False,
) -> list[CheckStep]:
    """The gate sequence, cheapest first.  Pure -- easy to test."""
    python = sys.executable or "python"
    lint_argv = [python, "-m", "repro.cli", "lint"]
    if lint_changed:
        lint_argv.append("--changed")
    lint_argv += ["src", "tools", "benchmarks", "examples"]
    steps = [CheckStep(name="lint", argv=tuple(lint_argv))]
    if bench_smoke:
        # Before the (slow) tier-1 suite: the smoke bench trips in seconds
        # on structural perf drift (a kernel that stopped engaging, a
        # diverged batch series) that the full perf gate would only catch
        # minutes later.
        steps.append(
            CheckStep(
                name="bench-smoke",
                argv=(python, "-m", "benchmarks.bench_sim_backends"),
            )
        )
    if serve_smoke:
        # End-to-end serve identity on the shipped replay spec: the CLI's
        # --check mode replays it through the serve loop and diffs the
        # merged report against batch api.run byte-for-byte.
        steps.append(
            CheckStep(
                name="serve-smoke",
                argv=(
                    python,
                    "-m",
                    "repro.cli",
                    "serve",
                    "--spec",
                    str(Path("specs") / "serve_replay.json"),
                    "--check",
                    "--quiet",
                ),
            )
        )
    if not skip_tests:
        steps.append(
            CheckStep(name="tests", argv=(python, "-m", "pytest", "-x", "-q"))
        )
    if not skip_perf:
        steps.append(
            CheckStep(name="perf", argv=(python, str(Path("tools") / "check_perf.py")))
        )
    return steps


def run_steps(steps: list[CheckStep], *, cwd: Path = REPO_ROOT) -> int:
    env = dict(os.environ)
    src = str(cwd / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    failures: list[str] = []
    for step in steps:
        print(f"==> {step.name}: {' '.join(step.argv)}")
        start = time.perf_counter()
        code = subprocess.run(list(step.argv), cwd=cwd, env=env).returncode
        elapsed = time.perf_counter() - start
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"<== {step.name}: {status} in {elapsed:.1f}s\n")
        if code != 0:
            failures.append(step.name)
    if failures:
        print(f"FAIL: {', '.join(failures)} -- fix before opening the PR")
        return 1
    print(f"OK: all {len(steps)} check(s) passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-perf",
        action="store_true",
        help="skip tools/check_perf.py (wall-clock baselines are machine-bound)",
    )
    parser.add_argument(
        "--skip-tests", action="store_true", help="skip the tier-1 pytest suite"
    )
    parser.add_argument(
        "--lint-changed",
        action="store_true",
        help="lint only files changed since the merge-base with main",
    )
    parser.add_argument(
        "--bench-smoke",
        action="store_true",
        help="run the tiny sim-backend bench (seconds) before the test suite",
    )
    parser.add_argument(
        "--serve-smoke",
        action="store_true",
        help="replay specs/serve_replay.json through the serve loop and "
        "check byte-identity against batch api.run",
    )
    args = parser.parse_args(argv)
    steps = build_steps(
        skip_perf=args.skip_perf,
        skip_tests=args.skip_tests,
        lint_changed=args.lint_changed,
        bench_smoke=args.bench_smoke,
        serve_smoke=args.serve_smoke,
    )
    return run_steps(steps)


if __name__ == "__main__":
    sys.exit(main())
