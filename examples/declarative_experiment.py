"""Declarative experiments: a comparison as a reviewable spec file.

The control-plane API makes a whole experiment -- scenarios, policies with
typed options, trials, seeds, simulator -- a serializable value.  This
example builds an :class:`repro.api.ExperimentSpec`, round-trips it through
a JSON file (the artifact you would commit next to your results), runs it
through the single ``repro.api.run`` entry point with a progress callback,
and prints the report.

The same file runs from the command line:

    repro-faro run --spec <file.json>

Run:  python examples/declarative_experiment.py
"""

import tempfile
from pathlib import Path

from repro import api


def main() -> None:
    spec = api.ExperimentSpec(
        name="declarative-demo",
        description="Two baselines vs Faro on a small oversubscribed cluster.",
        scenarios=(
            api.ScenarioSpec(
                kind="paper",
                params={
                    "size": 9,
                    "num_jobs": 3,
                    "duration_minutes": 16,
                    "days": 2,
                    "rate_hi": 400.0,
                },
                name="small-oversubscribed",
            ),
        ),
        policies=(
            api.PolicySpec(name="fairshare"),
            api.PolicySpec(name="aiad"),
            api.PolicySpec(
                name="faro-fairsum",
                options={"use_trained_predictor": False},
                label="faro (persistence)",
            ),
        ),
        trials=1,
        seed=0,
        simulator="flow",
    )

    print("Declarative experiment spec -> file -> run")
    print("-" * 60)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "demo.json"
        spec.to_file(path)
        print(f"spec written to {path.name} ({path.stat().st_size} bytes)")
        loaded = api.ExperimentSpec.from_file(path)
        print(f"lossless round-trip: {loaded == spec}")

        def progress(event: api.RunEvent) -> None:
            if event.stage == "policy-end":
                print(f"  ran {event.policy}: {event.detail}")

        report = api.run(loaded, progress=progress)

    print()
    print(report.describe())
    (scenario_name,) = report.scenario_names()
    print(f"\nbest policy: {report.best_policy(scenario_name)}")


if __name__ == "__main__":
    main()
