"""Assembled job mixes used by the experiments.

:func:`standard_job_mix` reproduces the paper's 10-job workload: nine
Azure-like traces with distinct temporal shapes (standing in for the top-9
Azure functions by invocation count) plus one Twitter-like trace, each
rescaled into the 1-1600 requests/minute band.  Larger mixes duplicate the
base ten with fresh seeds, exactly like the paper's 20- and 100-job
experiments ("workloads duplicated").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.azure import AzureTraceConfig, generate_azure_trace
from repro.traces.scaling import rescale_trace, train_eval_split
from repro.traces.twitter import TwitterTraceConfig, generate_twitter_trace

__all__ = ["JobTrace", "standard_job_mix", "standard_mix_source"]

# Shape presets giving the nine Azure-like jobs distinct temporal patterns:
# (diurnal_amplitude, second_harmonic, phase_minutes, noise_sigma,
#  burst_rate_per_day).
_AZURE_SHAPES: tuple[tuple[float, float, float, float, float], ...] = (
    (0.60, 0.25, 0.0, 0.15, 3.0),
    (0.45, 0.10, 180.0, 0.20, 2.0),
    (0.70, 0.30, 360.0, 0.10, 4.0),
    (0.30, 0.05, 540.0, 0.25, 1.5),
    (0.55, 0.20, 720.0, 0.15, 3.5),
    (0.65, 0.15, 900.0, 0.12, 2.5),
    (0.40, 0.35, 1080.0, 0.18, 3.0),
    (0.50, 0.08, 1260.0, 0.22, 2.0),
    (0.75, 0.28, 90.0, 0.08, 5.0),
)


@dataclass
class JobTrace:
    """One job's workload: per-minute arrival counts over all days.

    ``train`` and ``eval`` views follow the paper's split (days 1-10 train
    the predictor; day 11 drives the experiment).
    """

    name: str
    rates_per_min: np.ndarray
    source: str = "azure"
    train_days: int = 10

    def __post_init__(self) -> None:
        self.rates_per_min = np.asarray(self.rates_per_min, dtype=float)
        if np.any(self.rates_per_min < 0):
            raise ValueError("trace rates must be non-negative")

    @property
    def train(self) -> np.ndarray:
        train, _ = train_eval_split(self.rates_per_min, self.train_days)
        return train

    @property
    def eval(self) -> np.ndarray:
        _, evaluation = train_eval_split(self.rates_per_min, self.train_days)
        return evaluation

    @property
    def minutes(self) -> int:
        return int(self.rates_per_min.shape[0])


def standard_mix_source(index: int, days: int, seed: int) -> tuple[str, dict]:
    """The generator (source name, parameters) of job ``index`` in the mix.

    This is the single source of truth for the paper mix's per-job seed
    and shape formulas: :func:`standard_job_mix` generates from it, and the
    scenario-lowering layer (:mod:`repro.api.composition`) re-expresses it
    as a declarative trace pipeline -- both must stay bit-identical, so
    the formulas live exactly once.
    """
    slot = index % 10
    replica_round = index // 10
    if slot < 9:
        amp, second, phase, noise, bursts = _AZURE_SHAPES[slot]
        return "azure", {
            "days": days,
            "diurnal_amplitude": amp,
            "second_harmonic": second,
            "phase_minutes": phase,
            "noise_sigma": noise,
            "burst_rate_per_day": bursts,
            "seed": seed + 101 * index + 7 * replica_round,
        }
    return "twitter", {"days": days, "seed": seed + 101 * index + 13}


def standard_job_mix(
    num_jobs: int = 10,
    days: int = 11,
    rate_lo: float = 1.0,
    rate_hi: float = 1600.0,
    seed: int = 0,
) -> list[JobTrace]:
    """The paper's job mix: 9 Azure-like + 1 Twitter-like, duplicated beyond 10.

    Each job's trace is independently rescaled into [rate_lo, rate_hi]
    requests per minute.  ``seed`` offsets all generator seeds so repeated
    trials can use fresh workload randomness while staying reproducible.
    """
    if num_jobs < 1:
        raise ValueError(f"num_jobs must be >= 1, got {num_jobs}")
    if days < 2:
        raise ValueError(f"need >= 2 days for a train/eval split, got {days}")
    jobs: list[JobTrace] = []
    for index in range(num_jobs):
        source, params = standard_mix_source(index, days, seed)
        if source == "azure":
            trace = generate_azure_trace(AzureTraceConfig(**params))
        else:
            trace = generate_twitter_trace(TwitterTraceConfig(**params))
        rescaled = rescale_trace(trace, rate_lo, rate_hi)
        jobs.append(
            JobTrace(
                name=f"job{index:02d}-{source}",
                rates_per_min=rescaled,
                source=source,
                train_days=days - 1,
            )
        )
    return jobs
