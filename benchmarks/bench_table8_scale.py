"""Table 8: large-scale workloads.

Paper: 20 jobs / 70 replicas (cluster) and 100 jobs / 320 replicas
(simulation); Faro-FairSum lowers violations 3x-18.5x and lost utility
2.07x-13.76x vs baselines at both scales.

Beyond the paper's scales, ``test_table8_planner_scale`` pushes the
*planner* (the piece whose latency gates the control loop) to 200- and
500-job clusters, cold vs warm utility-table cache, and
``test_table8_planner_scale_pgd`` pushes the flat batched first-order
solver to 1000-5000 jobs -- past the wall where a converged COBYLA solve
takes minutes.
"""

import time

import numpy as np

from benchmarks.conftest import BENCH_PROFILE, write_result
from repro.core.hierarchical import solve_hierarchical
from repro.core.objectives import make_objective
from repro.core.optimizer import (
    AllocationProblem,
    ClusterCapacity,
    OptimizationJob,
    UtilityTableCache,
    solve_allocation,
)
from repro.core.utility import SLO
from repro.experiments.report import format_table, ratio
from repro.experiments.runner import run_trials
from repro.experiments.scenarios import large_scale_scenario

PAPER_20 = {
    "fairshare": (3.48, 0.14),
    "oneshot": (8.67, 0.37),
    "aiad": (2.37, 0.07),
    "mark": (1.77, 0.08),
    "faro-fairsum": (0.63, 0.02),
}
PAPER_100 = {
    "fairshare": (20.82, 0.16),
    "oneshot": (53.37, 0.48),
    "aiad": (16.72, 0.09),
    "mark": (16.24, 0.13),
    "faro-fairsum": (7.83, 0.03),
}


def test_table8_large_scale(benchmark):
    scenario_20 = large_scale_scenario(
        num_jobs=20, total_replicas=70, duration_minutes=45, seed=0
    )
    scenario_100 = large_scale_scenario(
        num_jobs=100, total_replicas=320, duration_minutes=45, seed=0
    )

    def run():
        stats_20 = {
            name: run_trials(
                scenario_20, name, trials=1, seed=0, predictor_profile=BENCH_PROFILE
            )
            for name in PAPER_20
        }
        stats_100 = {
            name: run_trials(
                scenario_100,
                name,
                trials=1,
                simulator="flow",
                seed=0,
                predictor_profile=BENCH_PROFILE,
            )
            for name in PAPER_100
        }
        return stats_20, stats_100

    stats_20, stats_100 = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, paper, stats in (
        ("20 jobs/70 repl", PAPER_20, stats_20),
        ("100 jobs/320 repl", PAPER_100, stats_100),
    ):
        for name, st in stats.items():
            rows.append(
                (
                    f"{label}/{name}",
                    f"lost={paper[name][0]:.2f} viol={paper[name][1]:.2f}",
                    f"lost={st.lost_utility_mean:.2f} viol={st.violation_rate_mean:.2f}",
                )
            )
    faro20 = stats_20["faro-fairsum"]
    worst20 = max(stats_20.values(), key=lambda s: s.lost_utility_mean)
    rows.append(
        (
            "20-job worst-baseline/Faro lost ratio",
            "up to 13.76x",
            f"{ratio(worst20.lost_utility_mean, faro20.lost_utility_mean):.1f}x",
        )
    )
    text = format_table(
        ["scale/policy", "paper", "measured"],
        rows,
        title="== Table 8: large-scale workloads ==",
    )
    write_result("table8_scale", text)

    for stats in (stats_20, stats_100):
        lost = {n: s.lost_utility_mean for n, s in stats.items()}
        assert lost["faro-fairsum"] == min(lost.values())


def _planner_jobs(num_jobs: int, scenarios: int = 35, seed: int = 0):
    """Synthetic planner inputs shaped like autoscaler cycle formulations."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(num_jobs):
        base = rng.uniform(5.0, 40.0)
        rates = tuple(np.maximum(rng.normal(base, base * 0.2, size=scenarios), 0.0))
        jobs.append(
            OptimizationJob(name=f"j{i}", proc_time=0.18, slo=SLO(0.72), rates=rates)
        )
    return jobs


def test_table8_planner_scale(benchmark):
    """Planner latency at 200 and 500 jobs (hierarchical G=10 solve).

    The paper stops at 100 jobs; the ROADMAP north star targets
    hundreds-of-jobs clusters, which only works if the planner itself stays
    fast.  Each point solves the same problem cold (fresh table cache) and
    warm (primed cache); results must be identical and the allocation
    feasible.
    """

    def run():
        points = []
        for num_jobs in (200, 500):
            jobs = _planner_jobs(num_jobs)
            capacity = ClusterCapacity.of_replicas(int(3.2 * num_jobs))
            objective = make_objective("fairsum")

            def solve(cache):
                return solve_hierarchical(
                    jobs, capacity, objective, groups=10, maxiter=100, seed=7,
                    table_cache=cache,
                )

            started = time.perf_counter()
            cold = solve(UtilityTableCache(maxsize=0))
            cold_s = time.perf_counter() - started
            shared = UtilityTableCache()
            solve(shared)  # prime
            started = time.perf_counter()
            warm = solve(shared)
            warm_s = time.perf_counter() - started
            points.append((num_jobs, capacity, cold, warm, cold_s, warm_s))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for num_jobs, capacity, cold, warm, cold_s, warm_s in points:
        rows.append(
            (
                f"{num_jobs} jobs/{int(capacity.cpus)} repl planner",
                "paper: ~64x grouped speedup at 200 jobs",
                f"cold={cold_s:.2f}s warm={warm_s:.2f}s ({cold_s / max(warm_s, 1e-9):.1f}x)",
            )
        )
    text = format_table(
        ["scale", "paper", "measured"],
        rows,
        title="== Table 8 extension: planner scale (200 / 500 jobs) ==",
    )
    write_result("table8_scale_planner", text)

    for num_jobs, capacity, cold, warm, cold_s, warm_s in points:
        replicas = cold.allocation.replicas
        assert replicas.shape[0] == num_jobs
        assert np.all(replicas >= 1)
        total_cpu = float(np.sum(replicas))
        assert total_cpu <= capacity.cpus + 1e-9
        # Cache warmth cannot change the allocation.
        np.testing.assert_array_equal(replicas, warm.allocation.replicas)
        # Warm planning at 500 jobs stays interactive (well under the
        # 300 s cycle; generous bound for slow CI).
        assert warm_s < 30.0


def test_table8_planner_scale_pgd(benchmark):
    """Flat-pgd planner latency at 1000-5000 jobs.

    Beyond COBYLA's wall (a converged 1000-job COBYLA solve takes minutes)
    the batched first-order solver keeps *flat* -- ungrouped -- planning
    viable: every job still competes for the same capacity, which the
    hierarchical decomposition above gives up.  ``max_replicas_per_job``
    keeps utility tables O(cap) instead of O(cluster) at these scales.
    """

    def run():
        points = []
        for num_jobs in (1000, 2000, 5000):
            jobs = _planner_jobs(num_jobs)
            capacity = ClusterCapacity.of_replicas(3 * num_jobs)
            objective = make_objective("fairsum")
            shared = UtilityTableCache()

            def build():
                return AllocationProblem(
                    jobs,
                    capacity,
                    objective,
                    table_cache=shared,
                    max_replicas_per_job=64,
                )

            started = time.perf_counter()
            problem = build()
            build_s = time.perf_counter() - started
            started = time.perf_counter()
            allocation = solve_allocation(problem, method="pgd")
            solve_s = time.perf_counter() - started
            started = time.perf_counter()
            rewarmed = solve_allocation(build(), method="pgd", x0=allocation)
            warmstart_s = time.perf_counter() - started
            points.append(
                (num_jobs, capacity, allocation, rewarmed, build_s, solve_s, warmstart_s)
            )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for num_jobs, capacity, allocation, rewarmed, build_s, solve_s, warmstart_s in points:
        rows.append(
            (
                f"{num_jobs} jobs/{int(capacity.cpus)} repl flat pgd",
                "cobyla wall: ~327s converged at 1000 jobs",
                f"tables={build_s:.1f}s solve={solve_s:.1f}s "
                f"warm+x0={warmstart_s:.1f}s "
                f"rows={allocation.nfev + allocation.post_nfev}",
            )
        )
    text = format_table(
        ["scale", "reference", "measured"],
        rows,
        title="== Table 8 extension: flat pgd planner (1000-5000 jobs) ==",
    )
    write_result("table8_scale_pgd", text)

    for num_jobs, capacity, allocation, rewarmed, build_s, solve_s, warmstart_s in points:
        replicas = allocation.replicas
        assert replicas.shape[0] == num_jobs
        assert np.all(replicas >= 1)
        assert np.all(replicas <= 64)
        assert float(np.sum(replicas)) <= capacity.cpus + 1e-9
        # Re-solving the unchanged problem from the previous allocation must
        # not lose quality (the integral warm start is a snap fallback).
        assert rewarmed.objective_value >= allocation.objective_value - 1e-9
        # Even the 5000-job flat solve stays inside a planning cycle
        # (generous bound for slow CI; ~23s measured on the baseline box).
        assert solve_s < 120.0
